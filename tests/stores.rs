//! Integration tests for the pluggable `SynopsisStore` layer: shard
//! equivalence, determinism, and cross-process warm starts.

use selfheal::faults::{FaultKind, FaultTarget, InjectionPlanBuilder};
use selfheal::fleet::{ExecutionMode, FleetConfig, FleetOutcome};
use selfheal::healing::harness::{LearnerChoice, PolicyChoice};
use selfheal::healing::snapshot::SynopsisSnapshot;
use selfheal::healing::synopsis::SynopsisKind;
use selfheal::sim::ServiceConfig;
use selfheal::workload::{ArrivalProcess, WorkloadMix};

/// A fleet whose replicas meet staggered faults, run tick-interleaved so
/// shared-learning interactions are deterministic.
fn fleet(learner: LearnerChoice) -> FleetConfig {
    FleetConfig::builder()
        .service(ServiceConfig::tiny())
        .synthetic_workload(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
        )
        .replicas(4)
        .ticks(420)
        .base_seed(77)
        .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
        .learner(learner)
        .mode(ExecutionMode::Sequential)
        .injections_per_replica(|replica| {
            InjectionPlanBuilder::new(4, 3, 1)
                .inject(
                    40 + 60 * replica as u64,
                    FaultKind::BufferContention,
                    FaultTarget::DatabaseTier,
                    0.9,
                )
                .build()
        })
}

/// Mean fix attempts for the injected episode over all replicas that saw
/// one.
fn mean_attempts(outcome: &FleetOutcome) -> f64 {
    let attempts: Vec<f64> = outcome
        .replicas()
        .iter()
        .filter_map(|replica| {
            replica
                .outcome
                .recovery
                .episodes()
                .iter()
                .find(|e| e.primary_fault() == Some(FaultKind::BufferContention))
                .map(|e| e.fixes_attempted.len() as f64)
        })
        .collect();
    assert!(!attempts.is_empty(), "no labelled episodes");
    attempts.iter().sum::<f64>() / attempts.len() as f64
}

/// A `ShardedStore` with one shard must be indistinguishable from a
/// `LockedStore`: same batching, same routing (there is nowhere else to
/// route), same models — so the whole fleet run is fingerprint-identical.
#[test]
fn one_shard_fleet_is_fingerprint_identical_to_a_locked_fleet() {
    let locked = fleet(LearnerChoice::locked()).run();
    let sharded = fleet(LearnerChoice::Sharded {
        shards: 1,
        batch: 4,
    })
    .run();
    assert_eq!(
        locked.fingerprints(),
        sharded.fingerprints(),
        "a 1-shard sharded store must degenerate to exactly the locked store"
    );
}

/// Sharded learning with k >= 4 is deterministic under sequential execution:
/// the same seed reproduces every replica bit-for-bit, and a different seed
/// does not (so the fingerprints actually discriminate).
#[test]
fn sharded_fleet_runs_are_deterministic() {
    let a = fleet(LearnerChoice::sharded(4)).run();
    let b = fleet(LearnerChoice::sharded(4)).run();
    assert_eq!(a.fingerprints(), b.fingerprints());

    let c = fleet(LearnerChoice::sharded(4)).base_seed(78).run();
    assert_ne!(a.fingerprints(), c.fingerprints());

    // The store really is sharded and really learned.
    let store = a.store().expect("sharded fleet exposes its store");
    assert!(store.correct_fixes_learned() >= 1);
    assert_eq!(store.pending_updates(), 0, "flushed after the run");
}

/// The acceptance criterion end to end, entirely through the public API: a
/// fleet warm-started from a previous fleet's saved (JSON-lines
/// round-tripped) synopsis recovers in measurably fewer mean fix attempts
/// than the identical cold fleet, for both locked and k>=4 sharded stores.
#[test]
fn warm_started_fleets_recover_in_fewer_attempts_than_cold_ones() {
    for learner in [LearnerChoice::locked(), LearnerChoice::sharded(4)] {
        // Healed-outcome comparison: let the horizon, not a hand-tuned tick
        // count, decide when every episode has had time to close.
        let cold = fleet(learner).run_to_quiescence();
        let snapshot = cold.store().expect("learning fleet").snapshot();
        assert!(snapshot.positives() >= 1, "cold fleet learned successes");

        // Round-trip through the codec, exactly as --save/--load-synopsis do.
        let restored =
            SynopsisSnapshot::from_jsonl(&snapshot.to_jsonl()).expect("codec round trip");
        assert_eq!(restored, snapshot);

        let warm = fleet(learner).warm_start(restored).run_to_quiescence();
        let (cold_attempts, warm_attempts) = (mean_attempts(&cold), mean_attempts(&warm));
        assert!(
            warm_attempts < cold_attempts,
            "{}: warm {warm_attempts} vs cold {cold_attempts} mean fix attempts",
            learner.label()
        );
    }
}

/// Regression test: a snapshot taken while updates are still queued (fewer
/// than `batch`, so no drain has triggered) must flush them first — a saved
/// synopsis may never silently drop experience.
#[test]
fn snapshots_flush_queued_updates_instead_of_dropping_them() {
    use selfheal::faults::FixKind;
    use selfheal::healing::store::{LockedStore, ShardedStore, SynopsisStore};
    use selfheal::healing::synopsis::Learner;

    let stores: [Box<dyn SynopsisStore>; 2] = [
        // Batch thresholds far above the update count: everything stays
        // queued until something flushes.
        Box::new(LockedStore::with_batch(SynopsisKind::NearestNeighbor, 64)),
        Box::new(ShardedStore::with_batch(
            SynopsisKind::NearestNeighbor,
            4,
            64,
        )),
    ];
    for mut store in stores {
        store.record(&[8.0, 1.0, 1.0], FixKind::RepartitionMemory, true);
        store.record(&[1.0, 9.0, 1.0], FixKind::MicrorebootEjb, true);
        store.record(&[1.0, 1.0, 7.0], FixKind::UpdateStatistics, false);
        assert_eq!(store.pending_updates(), 3, "updates queued, not drained");

        let snapshot = store.snapshot();
        assert_eq!(store.pending_updates(), 0, "snapshot flushed the queue");
        assert_eq!(snapshot.positives(), 2, "queued successes captured");
        assert_eq!(snapshot.negatives(), 1, "queued failures captured");

        // The queued experience survives a restore elsewhere.
        let mut restored = LockedStore::new(SynopsisKind::NearestNeighbor);
        restored.restore(&snapshot);
        assert_eq!(
            restored.suggest(&[8.0, 1.0, 1.0]).map(|(fix, _)| fix),
            Some(FixKind::RepartitionMemory)
        );
    }
}

/// Warm starts cross store layouts: experience saved by a locked fleet
/// restores into a sharded fleet (and into per-replica private stores) and
/// still pays off.
#[test]
fn snapshots_transfer_between_store_layouts() {
    let cold = fleet(LearnerChoice::locked()).run();
    let cold_attempts = mean_attempts(&cold);
    let snapshot = cold.store().expect("learning fleet").snapshot();

    let warm_sharded = fleet(LearnerChoice::sharded(4))
        .warm_start(snapshot.clone())
        .run();
    assert!(
        mean_attempts(&warm_sharded) < cold_attempts,
        "locked -> sharded transfer"
    );

    let warm_private = fleet(LearnerChoice::Private).warm_start(snapshot).run();
    assert!(
        mean_attempts(&warm_private) < cold_attempts,
        "locked -> private transfer"
    );
}
