//! Integration tests for the resident fleet daemon: supervisor
//! restart-with-backoff, crash-restart durability through the incremental
//! snapshot log, and a scripted end-to-end daemon session over the
//! control-plane socket.

use selfheal::daemon::protocol::send_command;
use selfheal::daemon::{Daemon, DaemonConfig, DaemonOptions, ReplicaSpec, Supervisor};
use selfheal::faults::{FixAction, InjectionPlan};
use selfheal::healing::snapshot::SynopsisSnapshot;
use selfheal::sim::scenario::{Healer, NoHealing, ScenarioRunner};
use selfheal::sim::service::TickOutcome;
use selfheal::sim::{MultiTierService, ServiceConfig};
use selfheal::telemetry::ReplicaState;
use selfheal::workload::{ArrivalProcess, TraceGenerator, WorkloadMix};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// A scratch directory unique to one test, cleaned up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("selfheal-daemon-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A healer that panics once its incarnation reaches a given tick —
/// the synthetic replica failure the supervisor must absorb.
#[derive(Debug)]
struct PanicAt {
    tick: u64,
    seen: u64,
}

impl Healer for PanicAt {
    fn name(&self) -> &str {
        "panic_at"
    }

    fn observe(&mut self, _outcome: &TickOutcome) -> Vec<FixAction> {
        if self.seen == self.tick {
            panic!("deliberate panic at tick {}", self.tick);
        }
        self.seen += 1;
        Vec::new()
    }
}

fn bare_runner(spec: &ReplicaSpec, healer: Box<dyn Healer>) -> ScenarioRunner<Box<dyn Healer>> {
    let service = MultiTierService::new(ServiceConfig::tiny());
    let workload = TraceGenerator::new(
        WorkloadMix::bidding(),
        ArrivalProcess::Constant { rate: 20.0 },
        spec.id as u64 + 7,
    );
    ScenarioRunner::new(service, workload, InjectionPlan::empty(), healer)
}

/// Config for the supervisor tests: tight slices, short backoff, and a
/// runner factory whose incarnation counter decides who panics.
fn panicky_config(
    max_restarts: u32,
    factory: impl Fn(&ReplicaSpec, usize) -> Box<dyn Healer> + Send + Sync + 'static,
) -> (DaemonConfig, Arc<AtomicUsize>) {
    let incarnations = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&incarnations);
    let config = DaemonConfig {
        slice: 16,
        max_restarts,
        backoff_epochs: 2,
        runner_factory: Some(Arc::new(move |spec, _store| {
            let incarnation = counter.fetch_add(1, Ordering::SeqCst);
            bare_runner(spec, factory(spec, incarnation))
        })),
        ..DaemonConfig::default()
    };
    (config, incarnations)
}

#[test]
fn supervisor_restarts_a_panicking_replica_after_backoff() {
    // Incarnation 0 panics mid-epoch; every rebuild runs clean.
    let (config, incarnations) = panicky_config(5, |_, incarnation| {
        if incarnation == 0 {
            Box::new(PanicAt { tick: 5, seen: 0 })
        } else {
            Box::new(NoHealing)
        }
    });
    let mut supervisor = Supervisor::new(config).unwrap();
    supervisor.add_replica("none").unwrap();

    // Epoch 1: the panic lands; the replica enters backoff.
    assert_eq!(supervisor.advance_epoch(), 0);
    let health = &supervisor.replica_health()[0];
    assert_eq!(health.state, ReplicaState::Restarting);
    assert_eq!(health.restarts, 1);
    assert!(
        health
            .last_error
            .as_deref()
            .unwrap_or("")
            .contains("deliberate panic"),
        "panic payload surfaced: {:?}",
        health.last_error
    );

    // Epoch 2 is still inside the 2-epoch backoff: nothing advances.
    assert_eq!(supervisor.advance_epoch(), 0);
    assert_eq!(
        supervisor.replica_health()[0].state,
        ReplicaState::Restarting
    );

    // Epoch 3: backoff expired, the rebuilt runner advances a full slice.
    assert_eq!(supervisor.advance_epoch(), 1);
    let health = &supervisor.replica_health()[0];
    assert_eq!(health.state, ReplicaState::Running);
    assert_eq!(health.ticks, 16, "one clean slice after the restart");
    assert_eq!(supervisor.advance_epoch(), 1);
    assert_eq!(supervisor.replica_health()[0].ticks, 32);
    assert_eq!(incarnations.load(Ordering::SeqCst), 2, "one rebuild");
    supervisor.shutdown();
}

#[test]
fn restart_cap_retires_a_permanently_broken_replica() {
    // Every incarnation panics: the replica must be retired as failed
    // after max_restarts rebuilds, with exponentially growing backoff
    // (resume epochs 3 and 7 for backoff_epochs=2).
    let (config, incarnations) = panicky_config(2, |_, _| Box::new(PanicAt { tick: 5, seen: 0 }));
    let mut supervisor = Supervisor::new(config).unwrap();
    supervisor.add_replica("none").unwrap();

    for epoch in 1..=7u64 {
        supervisor.advance_epoch();
        let state = supervisor.replica_health()[0].state;
        match epoch {
            1..=6 => assert_eq!(state, ReplicaState::Restarting, "epoch {epoch}"),
            _ => assert_eq!(state, ReplicaState::Failed, "epoch {epoch}"),
        }
    }
    let health = &supervisor.replica_health()[0];
    assert_eq!(health.restarts, 2, "both rebuilds consumed");
    assert!(health.last_error.is_some());
    assert_eq!(
        incarnations.load(Ordering::SeqCst),
        3,
        "birth + two rebuilds (epochs 3 and 7)"
    );
    // A retired replica never advances again.
    assert_eq!(supervisor.advance_epoch(), 0);
    let roll_up = supervisor.health();
    assert_eq!(roll_up.failed, 1);
    assert_eq!(roll_up.restarts, 2);
    supervisor.shutdown();
}

/// Drives a supervisor until its store has drained at least one example to
/// the snapshot log, then returns how many epochs that took.
fn run_until_learned(supervisor: &mut Supervisor, cap: u64) -> u64 {
    for epoch in 1..=cap {
        supervisor.advance_epoch();
        if supervisor.store().correct_fixes_learned() >= 1
            && !supervisor.store().snapshot().is_empty()
        {
            return epoch;
        }
    }
    panic!(
        "no fix learned within {cap} epochs (episodes={})",
        supervisor.health().open_episodes
    );
}

#[test]
fn crash_restart_replays_the_snapshot_log() {
    let scratch = Scratch::new("crash-restart");
    let store_path = scratch.path("synopsis.jsonl");
    let config = DaemonConfig {
        store_path: Some(store_path.clone()),
        ..DaemonConfig::default()
    };

    // First life: learn under the default fault mix, then die unflushed.
    let mut supervisor = Supervisor::new(config.clone()).unwrap();
    assert_eq!(supervisor.restored_examples(), 0, "fresh log");
    supervisor.add_replica("default").unwrap();
    supervisor.add_replica("default").unwrap();
    run_until_learned(&mut supervisor, 400);
    let fixes_before = supervisor.store().correct_fixes_learned();
    supervisor.abort(); // kill -9: no final flush.

    // Only what was already drained to the log survives the crash...
    let on_disk = SynopsisSnapshot::load(&store_path).expect("log is replayable");
    assert!(
        !on_disk.is_empty(),
        "incremental persistence streamed drained observations before the crash"
    );

    // ...and the second life starts from exactly that.
    let supervisor = Supervisor::new(config).unwrap();
    assert_eq!(
        supervisor.restored_examples(),
        on_disk.len(),
        "startup replays the whole log"
    );
    assert!(
        supervisor.store().correct_fixes_learned() >= 1,
        "restored store knows fixes before any replica ticks"
    );
    assert!(fixes_before >= 1);
    supervisor.shutdown();
}

#[test]
fn adversary_reconfigure_strikes_the_weakest_replica() {
    let mut supervisor = Supervisor::new(DaemonConfig {
        slice: 64,
        ..DaemonConfig::default()
    })
    .unwrap();
    let first = supervisor.add_replica("none").unwrap();
    let second = supervisor.add_replica("none").unwrap();

    // Off by default: barriers pass without a strike.
    supervisor.advance_epoch();
    assert!(!supervisor.adversary_enabled());
    assert_eq!(supervisor.adversary_target(), None);
    assert!(!supervisor
        .health()
        .to_json_line()
        .contains("adversary_target"));

    // Bad values are rejected; the engine stays off.
    assert!(supervisor.reconfigure(first, "adversary", "maybe").is_err());
    assert!(!supervisor.adversary_enabled());

    assert_eq!(
        supervisor.reconfigure(first, "adversary", "on").unwrap(),
        "adversary=on"
    );
    supervisor.advance_epoch();
    // Both replicas are healthy at the barrier, so the low-id tie-break
    // aims the first strike at the first replica.
    assert_eq!(supervisor.adversary_target(), Some(first));
    let line = supervisor.health().to_json_line();
    assert!(
        line.contains(&format!("\"adversary_target\":{first}")),
        "health line carries the target: {line}"
    );

    // The strike lands during the next epoch: the victim opens (and, once
    // the fix is learned, quickly closes) episodes while the bystander
    // stays clean.  An episode can open and heal inside one 64-tick epoch,
    // so the closed-episode count is the reliable witness.
    let mut victim_struck = false;
    for _ in 0..6 {
        supervisor.advance_epoch();
        let health = supervisor.replica_health();
        if health[first].episodes > 0 || health[first].open_episodes > 0 {
            victim_struck = true;
        }
        assert_eq!(health[second].open_episodes, 0, "only the target suffers");
    }
    assert!(victim_struck, "the strikes opened episodes on the target");

    assert_eq!(
        supervisor.reconfigure(second, "adversary", "off").unwrap(),
        "adversary=off"
    );
    supervisor.advance_epoch();
    assert_eq!(supervisor.adversary_target(), None);
    supervisor.shutdown();
}

/// Extracts `key=<u64>` from a space-separated reply.
fn field(reply: &str, key: &str) -> Option<u64> {
    reply
        .split_whitespace()
        .find_map(|token| token.strip_prefix(key))
        .and_then(|value| value.parse().ok())
}

/// Polls `command` against the socket until `predicate` accepts the reply.
fn wait_for(socket: &Path, command: &str, what: &str, predicate: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(reply) = send_command(socket, command, Duration::from_secs(10)) {
            if predicate(&reply) {
                return reply;
            }
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(50));
    }
}

fn ctl(socket: &Path, command: &str) -> String {
    send_command(socket, command, Duration::from_secs(10))
        .unwrap_or_else(|err| panic!("{command}: {err}"))
}

/// The scripted end-to-end session from the issue: start → faults via the
/// mix source → `QUERY FIXES` returns learned fixes → `ADD` a replica that
/// warm-starts from the shared store → `kill -9` → restart → `STATUS`
/// shows restored synopsis counts → clean `SHUTDOWN`.
#[test]
fn end_to_end_daemon_session_survives_kill_dash_nine() {
    let scratch = Scratch::new("e2e");
    let socket = scratch.path("control.sock");
    let store_path = scratch.path("synopsis.jsonl");
    let snapshot_path = scratch.path("fixes.jsonl");

    let config = DaemonConfig {
        store_path: Some(store_path.clone()),
        ..DaemonConfig::default()
    };

    let mut options = DaemonOptions::new(&socket);
    options.replicas = 2;

    // First life.
    let daemon = Daemon::launch(config.clone(), options.clone()).unwrap();
    let kill = daemon.kill_switch();
    let life_one = thread::spawn(move || daemon.run());

    // The mix faults replicas; the shared store learns fixes.
    let status = wait_for(&socket, "STATUS", "the fleet to learn a fix", |reply| {
        field(reply, "fixes_known=").unwrap_or(0) >= 1
    });
    assert!(status.contains("replicas=2"), "status: {status}");

    // Live query: per-fix experience from the shared store.
    let fixes = ctl(&socket, "QUERY FIXES");
    assert!(fixes.contains("fix="), "learned fixes listed: {fixes}");
    assert!(fixes.contains("success_rate="), "stats included: {fixes}");

    // ADD: the new replica warm-starts against the shared store.
    let added = ctl(&socket, "ADD online:0.05");
    assert!(added.contains("replica 2 added"), "add reply: {added}");
    let replicas = ctl(&socket, "REPLICAS");
    assert_eq!(
        replicas
            .lines()
            .filter(|l| l.starts_with("replica "))
            .count(),
        3,
        "three replicas listed: {replicas}"
    );

    // SNAPSHOT: the store's full experience, written on demand.
    let snap = ctl(&socket, &format!("SNAPSHOT {}", snapshot_path.display()));
    let examples = field(&snap, "examples=").unwrap_or(0);
    assert!(examples >= 1, "snapshot non-empty: {snap}");
    let snapshot_text = std::fs::read_to_string(&snapshot_path).unwrap();
    assert!(snapshot_text.contains("\"fix\""), "snapshot holds examples");

    // kill -9: abort without the final flush.
    kill.store(true, Ordering::SeqCst);
    life_one.join().unwrap().unwrap();

    // Second life, same store path: the log replay restores the synopsis.
    let daemon = Daemon::launch(config, options).unwrap();
    let restored = daemon.supervisor().restored_examples();
    assert!(restored >= 1, "snapshot log replayed after the crash");
    let life_two = thread::spawn(move || daemon.run());

    let status = wait_for(
        &socket,
        "STATUS",
        "the restarted daemon's status",
        |reply| field(reply, "restored_examples=").is_some(),
    );
    assert_eq!(
        field(&status, "restored_examples="),
        Some(restored as u64),
        "status reports the restored synopsis count: {status}"
    );
    assert!(
        field(&status, "fixes_known=").unwrap_or(0) >= 1,
        "restored store knows fixes immediately: {status}"
    );

    // Clean shutdown flushes and exits the loop.
    let bye = ctl(&socket, "SHUTDOWN");
    assert!(bye.ends_with("OK\n"), "shutdown accepted: {bye}");
    life_two.join().unwrap().unwrap();
}
