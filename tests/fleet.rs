//! Fleet-level integration tests: determinism of replica streams and the
//! value of fleet-shared learning.

use selfheal::faults::{FaultKind, FaultTarget, InjectionPlan, InjectionPlanBuilder};
use selfheal::fleet::{ExecutionMode, FleetConfig, LearningTopology};
use selfheal::healing::harness::{PolicyChoice, SelfHealingService, WorkloadChoice};
use selfheal::healing::synopsis::SynopsisKind;
use selfheal::sim::seeds::{split_seed, SeedStream};
use selfheal::sim::ServiceConfig;
use selfheal::workload::{
    ArrivalProcess, RecordedTrace, ReplayMode, ReplaySource, TraceGenerator, WorkloadMix,
};

fn fleet(replicas: usize, ticks: u64) -> FleetConfig {
    FleetConfig::builder()
        .service(ServiceConfig::tiny())
        .synthetic_workload(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
        )
        .replicas(replicas)
        .ticks(ticks)
        .base_seed(77)
        .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
        .injections_per_replica(|replica| {
            InjectionPlanBuilder::new(4, 3, 1)
                .inject(
                    30 + 10 * replica as u64,
                    FaultKind::BufferContention,
                    FaultTarget::DatabaseTier,
                    0.9,
                )
                .build()
        })
}

/// The same seed must reproduce a scenario bit-for-bit: every metric value,
/// every episode, every counter.
#[test]
fn same_seed_gives_byte_identical_scenario_outcomes() {
    let run = || {
        SelfHealingService::builder()
            .config(ServiceConfig::tiny())
            .injections(
                InjectionPlanBuilder::new(4, 3, 1)
                    .inject(
                        40,
                        FaultKind::BufferContention,
                        FaultTarget::DatabaseTier,
                        0.9,
                    )
                    .build(),
            )
            .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
            .seed(23)
            .run(300)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.fingerprint(), b.fingerprint());
    // A different seed must actually change the run, or the fingerprint
    // would be vacuous.
    let c = SelfHealingService::builder()
        .config(ServiceConfig::tiny())
        .injections(
            InjectionPlanBuilder::new(4, 3, 1)
                .inject(
                    40,
                    FaultKind::BufferContention,
                    FaultTarget::DatabaseTier,
                    0.9,
                )
                .build(),
        )
        .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
        .seed(24)
        .run(300);
    assert_ne!(a.fingerprint(), c.fingerprint());
}

/// Two isolated fleet runs with the same base seed agree replica-by-replica.
#[test]
fn same_seed_gives_byte_identical_fleet_outcomes() {
    let a = fleet(3, 250).run();
    let b = fleet(3, 250).run();
    assert_eq!(a.fingerprints(), b.fingerprints());
}

/// With isolated learning, replica `i`'s outcome is a pure function of
/// `(base_seed, i)` — growing the fleet or changing the thread count must
/// not change what an existing replica experiences.
#[test]
fn replica_outcomes_are_independent_of_fleet_size_and_interleaving() {
    let small = fleet(2, 250)
        .mode(ExecutionMode::Parallel { threads: Some(2) })
        .run();
    let large = fleet(5, 250)
        .mode(ExecutionMode::Parallel { threads: Some(3) })
        .run();
    let interleaved = fleet(5, 250).mode(ExecutionMode::Sequential).run();

    let small_prints = small.fingerprints();
    let large_prints = large.fingerprints();
    let interleaved_prints = interleaved.fingerprints();
    assert_eq!(
        small_prints[..2],
        large_prints[..2],
        "fleet size must not leak into replicas"
    );
    assert_eq!(
        large_prints, interleaved_prints,
        "thread interleaving must not leak either"
    );
}

/// The paper's fleet-scaling argument, end to end: after replica 0 has
/// healed a fault kind, a replica meeting the same kind later recovers with
/// fewer trial-and-error attempts when the synopsis is shared than when
/// every replica learns alone.
#[test]
fn shared_synopsis_warm_starts_later_replicas() {
    let staggered = |replica: usize| {
        InjectionPlanBuilder::new(4, 3, 1)
            .inject(
                100 + 500 * replica as u64,
                FaultKind::BufferContention,
                FaultTarget::DatabaseTier,
                0.9,
            )
            .build()
    };
    let build = |topology| {
        FleetConfig::builder()
            .service(ServiceConfig::tiny())
            .synthetic_workload(
                WorkloadMix::bidding(),
                ArrivalProcess::Constant { rate: 40.0 },
            )
            .replicas(6)
            .base_seed(77)
            .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
            .topology(topology)
            // Tick-interleaved so "later replica" is true by construction.
            .mode(ExecutionMode::Sequential)
            .injections_per_replica(staggered)
            // The last stagger lands at tick 2600; auto-quiesce runs one
            // healing tail past it instead of hand-tuning the length.
            .run_to_quiescence()
    };

    let shared = build(LearningTopology::shared());
    let isolated = build(LearningTopology::Isolated);

    // Attempts needed for the injected episode on the warm replicas (1..6).
    // A replica is skipped if an unrelated SLO flap was already open when
    // its fault landed (the flap episode absorbs it without ground-truth
    // labels); enough replicas remain for a meaningful mean.
    let warm_attempts = |outcome: &selfheal::fleet::FleetOutcome| -> f64 {
        let attempts: Vec<f64> = outcome.replicas()[1..]
            .iter()
            .filter_map(|replica| {
                replica
                    .outcome
                    .recovery
                    .episodes()
                    .iter()
                    .find(|e| e.primary_fault() == Some(FaultKind::BufferContention))
                    .map(|e| e.fixes_attempted.len() as f64)
            })
            .collect();
        assert!(
            attempts.len() >= 3,
            "too few labelled warm episodes: {}",
            attempts.len()
        );
        attempts.iter().sum::<f64>() / attempts.len() as f64
    };

    let shared_attempts = warm_attempts(&shared);
    let isolated_attempts = warm_attempts(&isolated);
    assert!(
        shared_attempts < isolated_attempts,
        "shared learning must cut warm-replica trial-and-error: shared {shared_attempts} vs \
         isolated {isolated_attempts}"
    );

    // The shared model saw every replica's episodes.
    let store = shared
        .store()
        .expect("shared topology exposes the fleet store");
    assert!(
        store.correct_fixes_learned() >= 6,
        "one success per replica at minimum, got {}",
        store.correct_fixes_learned()
    );
}

/// The record/replay contract of the workload redesign: a scenario driven by
/// a synthetic `TraceGenerator`, captured to a JSON-lines trace, parsed
/// back, and replayed through a `ReplaySource` produces a byte-identical
/// `ScenarioOutcome::fingerprint()`.
#[test]
fn recorded_trace_replays_byte_identically() {
    let mix = WorkloadMix::bidding();
    let arrivals = ArrivalProcess::Poisson { rate: 40.0 };
    let plan = InjectionPlanBuilder::new(4, 3, 1)
        .inject(
            40,
            FaultKind::BufferContention,
            FaultTarget::DatabaseTier,
            0.9,
        )
        .build();
    let scenario = |workload: WorkloadChoice| {
        SelfHealingService::builder()
            .config(ServiceConfig::tiny())
            .workload_choice(workload)
            .injections(plan.clone())
            .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
            .seed(23)
            .run(300)
    };

    let synthetic = scenario(WorkloadChoice::synthetic(mix.clone(), arrivals.clone()));

    // Record the exact same generator, round-trip it through the JSON-lines
    // codec, and replay it.
    let mut generator = TraceGenerator::new(mix, arrivals, 23);
    let trace = RecordedTrace::capture(&mut generator, 300);
    let parsed = RecordedTrace::from_jsonl(&trace.to_jsonl()).expect("codec round trip");
    assert_eq!(parsed, trace, "parse ∘ serialize must be the identity");

    let replayed = scenario(WorkloadChoice::replay(parsed, ReplayMode::Truncate, 0));
    assert_eq!(
        synthetic.fingerprint(),
        replayed.fingerprint(),
        "replaying a recorded trace must be byte-identical to the synthetic run"
    );
}

/// Phase-shifted replay keeps fleet determinism: with isolated learning,
/// replica `i` of a replay fleet is byte-identical to a standalone run built
/// from the same `(seed, phase)` pair — fleet size and scheduling leak
/// nothing, and the phase shifts actually differentiate the replicas.
#[test]
fn phase_shifted_replay_replicas_match_their_standalone_equivalents() {
    let base_seed = 77u64;
    let replicas = 3usize;
    let ticks = 250u64;
    let phase_step = 40u64;
    let plan = |replica: usize| {
        InjectionPlanBuilder::new(4, 3, 1)
            .inject(
                30 + 10 * replica as u64,
                FaultKind::BufferContention,
                FaultTarget::DatabaseTier,
                0.9,
            )
            .build()
    };

    let mut generator = TraceGenerator::new(
        WorkloadMix::bidding(),
        ArrivalProcess::Poisson { rate: 40.0 },
        split_seed(base_seed, 0, SeedStream::Workload),
    );
    let trace = RecordedTrace::capture(&mut generator, 400);
    let choice = WorkloadChoice::replay(trace.clone(), ReplayMode::Loop, phase_step);

    let fleet = FleetConfig::builder()
        .service(ServiceConfig::tiny())
        .workload(choice)
        .replicas(replicas)
        .ticks(ticks)
        .base_seed(base_seed)
        .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
        .injections_per_replica(plan)
        .run();
    let fleet_prints = fleet.fingerprints();

    let standalone_prints: Vec<u64> = (0..replicas)
        .map(|replica| {
            let mut config = ServiceConfig::tiny();
            config.seed = split_seed(base_seed, replica as u64, SeedStream::Service);
            SelfHealingService::builder()
                .config(config)
                .workload(
                    ReplaySource::new(trace.clone(), ReplayMode::Loop)
                        .with_phase(replica as u64 * phase_step),
                )
                .injections(plan(replica))
                .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
                .run(ticks)
                .fingerprint()
        })
        .collect();

    assert_eq!(
        fleet_prints, standalone_prints,
        "each phase-shifted replica must equal its (seed, phase) standalone run"
    );
    // The phase shift must actually differentiate replicas: they share one
    // trace, so identical fingerprints would mean the shift is ignored.
    assert_ne!(fleet_prints[0], fleet_prints[1]);
    assert_ne!(fleet_prints[1], fleet_prints[2]);

    // Sanity: with phase_step 0 and identical plans the replicas only
    // differ through their service seeds, not the workload.
    let aligned = FleetConfig::builder()
        .service(ServiceConfig::tiny())
        .workload(WorkloadChoice::replay(trace, ReplayMode::Loop, 0))
        .replicas(2)
        .ticks(ticks)
        .base_seed(base_seed)
        .injections(InjectionPlan::empty())
        .run();
    assert_eq!(aligned.replicas().len(), 2);
    let (a, b) = (
        &aligned.replicas()[0].outcome,
        &aligned.replicas()[1].outcome,
    );
    assert_eq!(a.arrived, b.arrived, "aligned replicas see the same trace");
}

/// Regression test for the AdaBoost class-score iteration-order leak: the
/// ensemble synopsis ranks per-class vote scores when re-suggesting fixes,
/// and those scores used to ride on `HashMap` iteration order (randomized
/// per map instance), so two identically configured fleets could diverge.
/// With `BTreeMap`-backed scores, repeated shared-learning AdaBoost runs
/// must be fingerprint-identical.
#[test]
fn adaboost_fleets_are_fingerprint_deterministic_across_runs() {
    let run = || {
        fleet(3, 320)
            .policy(PolicyChoice::FixSym(SynopsisKind::AdaBoost(20)))
            .topology(LearningTopology::Shared { batch: 4 })
            .mode(ExecutionMode::Sequential)
            .run()
            .fingerprints()
    };
    let first = run();
    assert_eq!(first, run(), "same config must reproduce bit-for-bit");
}
