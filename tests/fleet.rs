//! Fleet-level integration tests: determinism of replica streams and the
//! value of fleet-shared learning.

use selfheal::faults::{FaultKind, FaultTarget, InjectionPlanBuilder};
use selfheal::fleet::{ExecutionMode, FleetConfig, LearningTopology};
use selfheal::healing::harness::{PolicyChoice, SelfHealingService};
use selfheal::healing::synopsis::SynopsisKind;
use selfheal::sim::ServiceConfig;
use selfheal::workload::{ArrivalProcess, WorkloadMix};

fn fleet(replicas: usize, ticks: u64) -> FleetConfig {
    FleetConfig::builder()
        .service(ServiceConfig::tiny())
        .workload(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
        )
        .replicas(replicas)
        .ticks(ticks)
        .base_seed(77)
        .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
        .injections_per_replica(|replica| {
            InjectionPlanBuilder::new(4, 3, 1)
                .inject(
                    30 + 10 * replica as u64,
                    FaultKind::BufferContention,
                    FaultTarget::DatabaseTier,
                    0.9,
                )
                .build()
        })
}

/// The same seed must reproduce a scenario bit-for-bit: every metric value,
/// every episode, every counter.
#[test]
fn same_seed_gives_byte_identical_scenario_outcomes() {
    let run = || {
        SelfHealingService::builder()
            .config(ServiceConfig::tiny())
            .injections(
                InjectionPlanBuilder::new(4, 3, 1)
                    .inject(
                        40,
                        FaultKind::BufferContention,
                        FaultTarget::DatabaseTier,
                        0.9,
                    )
                    .build(),
            )
            .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
            .seed(23)
            .run(300)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.fingerprint(), b.fingerprint());
    // A different seed must actually change the run, or the fingerprint
    // would be vacuous.
    let c = SelfHealingService::builder()
        .config(ServiceConfig::tiny())
        .injections(
            InjectionPlanBuilder::new(4, 3, 1)
                .inject(
                    40,
                    FaultKind::BufferContention,
                    FaultTarget::DatabaseTier,
                    0.9,
                )
                .build(),
        )
        .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
        .seed(24)
        .run(300);
    assert_ne!(a.fingerprint(), c.fingerprint());
}

/// Two isolated fleet runs with the same base seed agree replica-by-replica.
#[test]
fn same_seed_gives_byte_identical_fleet_outcomes() {
    let a = fleet(3, 250).run();
    let b = fleet(3, 250).run();
    assert_eq!(a.fingerprints(), b.fingerprints());
}

/// With isolated learning, replica `i`'s outcome is a pure function of
/// `(base_seed, i)` — growing the fleet or changing the thread count must
/// not change what an existing replica experiences.
#[test]
fn replica_outcomes_are_independent_of_fleet_size_and_interleaving() {
    let small = fleet(2, 250)
        .mode(ExecutionMode::Parallel { threads: Some(2) })
        .run();
    let large = fleet(5, 250)
        .mode(ExecutionMode::Parallel { threads: Some(3) })
        .run();
    let interleaved = fleet(5, 250).mode(ExecutionMode::Sequential).run();

    let small_prints = small.fingerprints();
    let large_prints = large.fingerprints();
    let interleaved_prints = interleaved.fingerprints();
    assert_eq!(
        small_prints[..2],
        large_prints[..2],
        "fleet size must not leak into replicas"
    );
    assert_eq!(
        large_prints, interleaved_prints,
        "thread interleaving must not leak either"
    );
}

/// The paper's fleet-scaling argument, end to end: after replica 0 has
/// healed a fault kind, a replica meeting the same kind later recovers with
/// fewer trial-and-error attempts when the synopsis is shared than when
/// every replica learns alone.
#[test]
fn shared_synopsis_warm_starts_later_replicas() {
    let staggered = |replica: usize| {
        InjectionPlanBuilder::new(4, 3, 1)
            .inject(
                100 + 500 * replica as u64,
                FaultKind::BufferContention,
                FaultTarget::DatabaseTier,
                0.9,
            )
            .build()
    };
    let build = |topology| {
        FleetConfig::builder()
            .service(ServiceConfig::tiny())
            .workload(
                WorkloadMix::bidding(),
                ArrivalProcess::Constant { rate: 40.0 },
            )
            .replicas(6)
            .ticks(100 + 500 * 6 + 400)
            .base_seed(77)
            .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
            .topology(topology)
            // Tick-interleaved so "later replica" is true by construction.
            .mode(ExecutionMode::Sequential)
            .injections_per_replica(staggered)
            .run()
    };

    let shared = build(LearningTopology::shared());
    let isolated = build(LearningTopology::Isolated);

    // Attempts needed for the injected episode on the warm replicas (1..6).
    // A replica is skipped if an unrelated SLO flap was already open when
    // its fault landed (the flap episode absorbs it without ground-truth
    // labels); enough replicas remain for a meaningful mean.
    let warm_attempts = |outcome: &selfheal::fleet::FleetOutcome| -> f64 {
        let attempts: Vec<f64> = outcome.replicas()[1..]
            .iter()
            .filter_map(|replica| {
                replica
                    .outcome
                    .recovery
                    .episodes()
                    .iter()
                    .find(|e| e.primary_fault() == Some(FaultKind::BufferContention))
                    .map(|e| e.fixes_attempted.len() as f64)
            })
            .collect();
        assert!(
            attempts.len() >= 3,
            "too few labelled warm episodes: {}",
            attempts.len()
        );
        attempts.iter().sum::<f64>() / attempts.len() as f64
    };

    let shared_attempts = warm_attempts(&shared);
    let isolated_attempts = warm_attempts(&isolated);
    assert!(
        shared_attempts < isolated_attempts,
        "shared learning must cut warm-replica trial-and-error: shared {shared_attempts} vs \
         isolated {isolated_attempts}"
    );

    // The shared model saw every replica's episodes.
    let synopsis = shared
        .shared_synopsis()
        .expect("shared topology exposes the synopsis");
    assert!(
        synopsis.correct_fixes_learned() >= 6,
        "one success per replica at minimum, got {}",
        synopsis.correct_fixes_learned()
    );
}
