//! Fingerprint-equivalence suite for the tick-sliced fleet scheduler:
//! parallel execution must reproduce the sequential round-robin interleave
//! for shared stores, fault storms must be deterministic at any worker
//! count, and slice width must be invisible to private learners.

use selfheal::faults::{FaultKind, FaultTarget, InjectionPlanBuilder, StormSpec};
use selfheal::fleet::{ExecutionMode, FleetConfig};
use selfheal::healing::harness::{EventChoice, LearnerChoice, PolicyChoice};
use selfheal::healing::synopsis::SynopsisKind;
use selfheal::sim::ServiceConfig;
use selfheal::workload::{ArrivalProcess, WorkloadMix};

/// A learning fleet with staggered per-replica injections *and* a mid-run
/// fault storm — the busiest deterministic scenario the scheduler faces.
fn stormy_fleet(replicas: usize, ticks: u64, learner: LearnerChoice) -> FleetConfig {
    FleetConfig::builder()
        .service(ServiceConfig::tiny())
        .synthetic_workload(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
        )
        .replicas(replicas)
        .ticks(ticks)
        .base_seed(77)
        .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
        .learner(learner)
        .injections_per_replica(|replica| {
            InjectionPlanBuilder::new(4, 3, 1)
                .inject(
                    40 + 30 * replica as u64,
                    FaultKind::BufferContention,
                    FaultTarget::DatabaseTier,
                    0.9,
                )
                .build()
        })
        .event(EventChoice::storm(
            ticks / 2,
            FaultKind::DeadlockedThreads,
            0.5,
        ))
}

/// The tentpole acceptance criterion: with one fleet-shared store, the
/// tick-sliced parallel scheduler produces fingerprints identical to
/// `run_sequential`'s round-robin interleave — at every worker count.
#[test]
fn tick_sliced_parallel_matches_sequential_with_a_shared_store() {
    let sequential = stormy_fleet(4, 320, LearnerChoice::locked())
        .mode(ExecutionMode::Sequential)
        .run();
    assert!(sequential.is_complete());
    let reference = sequential.fingerprints();
    assert!(
        sequential.total_fixes_initiated() >= 4,
        "the scenario must actually exercise shared learning"
    );

    for workers in [1, 2, 3, 4] {
        let parallel = stormy_fleet(4, 320, LearnerChoice::locked())
            .mode(ExecutionMode::Parallel {
                threads: Some(workers),
            })
            .run();
        assert_eq!(
            parallel.fingerprints(),
            reference,
            "{workers} workers must reproduce the sequential interleave"
        );
    }
}

/// The same equivalence holds at wider slices, as long as both modes use
/// the same width (the store then observes the slice-interleaved sweep).
#[test]
fn parallel_and_sequential_agree_at_any_matching_slice_width() {
    for slice in [4, 64] {
        let sequential = stormy_fleet(3, 300, LearnerChoice::locked())
            .slice(slice)
            .mode(ExecutionMode::Sequential)
            .run();
        let parallel = stormy_fleet(3, 300, LearnerChoice::locked())
            .slice(slice)
            .mode(ExecutionMode::Parallel { threads: Some(3) })
            .run();
        assert_eq!(
            parallel.fingerprints(),
            sequential.fingerprints(),
            "slice {slice}"
        );
    }
}

/// Fault storms strike a deterministic, evenly spread fraction of the
/// fleet, identically at every worker count.
#[test]
fn fault_storms_are_deterministic_across_worker_counts() {
    let run = |workers: Option<usize>| {
        FleetConfig::builder()
            .service(ServiceConfig::tiny())
            .synthetic_workload(
                WorkloadMix::bidding(),
                ArrivalProcess::Constant { rate: 40.0 },
            )
            .replicas(6)
            .ticks(260)
            .base_seed(11)
            .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
            .learner(LearnerChoice::locked())
            .event(EventChoice::storm(80, FaultKind::BufferContention, 0.5))
            .mode(match workers {
                Some(w) => ExecutionMode::Parallel { threads: Some(w) },
                None => ExecutionMode::Sequential,
            })
            .run()
    };

    let reference = run(None);
    let victims = StormSpec::new(FaultKind::BufferContention, 0.9, 0.5).victims(6);
    assert_eq!(victims.len(), 3, "50% of 6 replicas");
    for replica in reference.replicas() {
        let hit = replica
            .outcome
            .recovery
            .episodes()
            .iter()
            .any(|e| e.primary_fault() == Some(FaultKind::BufferContention));
        assert_eq!(
            hit,
            victims.contains(&replica.replica),
            "replica {} vs victim set {victims:?}",
            replica.replica
        );
    }

    let reference_prints = reference.fingerprints();
    for workers in [1, 2, 4] {
        assert_eq!(
            run(Some(workers)).fingerprints(),
            reference_prints,
            "storm outcome must not depend on {workers}-worker scheduling"
        );
    }
}

/// With private learners, replicas are independent, so the slice width (and
/// with it the epoch structure) must be invisible: exact-tick event
/// application keeps storms and surges identical at any width.
#[test]
fn slice_width_is_invariant_for_private_learners() {
    let run = |slice: u64| {
        stormy_fleet(3, 280, LearnerChoice::Private)
            .event(EventChoice::surge(120, 40, 2.5))
            .slice(slice)
            .mode(ExecutionMode::Parallel { threads: Some(2) })
            .run()
            .fingerprints()
    };
    let reference = run(1);
    for slice in [7, 64, 280, 100_000] {
        assert_eq!(run(slice), reference, "slice {slice}");
    }
}

/// A fleet-wide surge amplifies every replica's traffic inside the window —
/// and nothing outside it.
#[test]
fn workload_surges_amplify_traffic_fleet_wide() {
    let fleet = |factor: f64| {
        let mut config = FleetConfig::builder()
            .service(ServiceConfig::tiny())
            .synthetic_workload(
                WorkloadMix::bidding(),
                ArrivalProcess::Constant { rate: 40.0 },
            )
            .replicas(3)
            .ticks(200)
            .base_seed(5);
        if factor > 1.0 {
            config = config.event(EventChoice::surge(100, 50, factor));
        }
        config.run()
    };
    let calm = fleet(1.0);
    let surged = fleet(3.0);
    for (calm_replica, surged_replica) in calm.replicas().iter().zip(surged.replicas()) {
        // 50 surged ticks at 3x on a constant 40/tick load: 4000 extra.
        let extra = surged_replica.outcome.arrived - calm_replica.outcome.arrived;
        assert_eq!(
            extra, 4000,
            "replica {} surge overlay",
            calm_replica.replica
        );
    }
}

/// Storm + warm start, end to end: a fleet that already knows the storm's
/// signature (from a previous fleet's snapshot) heals a 50% storm with
/// fewer fix attempts than a cold fleet — the paper's sharing argument
/// under correlated failures.
#[test]
fn warm_started_fleets_shrug_off_a_storm() {
    let storm_kind = FaultKind::BufferContention;
    let fleet = || {
        FleetConfig::builder()
            .service(ServiceConfig::tiny())
            .synthetic_workload(
                WorkloadMix::bidding(),
                ArrivalProcess::Constant { rate: 40.0 },
            )
            .replicas(4)
            .ticks(420)
            .base_seed(9)
            .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
            .learner(LearnerChoice::locked())
            .event(EventChoice::storm(120, storm_kind, 0.5))
    };
    // Healed-outcome comparison: auto-quiesce past the storm instead of
    // hand-tuning the run length.
    let cold = fleet().run_to_quiescence();
    assert!(cold.is_complete());
    let snapshot = cold.store().expect("learning fleet").snapshot();
    assert!(snapshot.positives() >= 1, "the cold fleet healed the storm");

    let warm = fleet().warm_start(snapshot).run_to_quiescence();
    let victim_attempts = |outcome: &selfheal::fleet::FleetOutcome| -> f64 {
        let attempts: Vec<f64> = outcome
            .replicas()
            .iter()
            .filter_map(|replica| {
                replica
                    .outcome
                    .recovery
                    .episodes()
                    .iter()
                    .find(|e| e.primary_fault() == Some(storm_kind))
                    .map(|e| e.fixes_attempted.len() as f64)
            })
            .collect();
        assert!(!attempts.is_empty(), "storm victims must have episodes");
        attempts.iter().sum::<f64>() / attempts.len() as f64
    };
    assert!(
        victim_attempts(&warm) <= victim_attempts(&cold),
        "warm {} vs cold {} attempts",
        victim_attempts(&warm),
        victim_attempts(&cold)
    );
}
