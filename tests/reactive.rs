//! Reactive chaos engine integration tests: worker-count invariance of
//! state-observing engines, and the horizon-aware auto-quiesce bound.
//!
//! The engines under test observe live fleet state (open episodes) at epoch
//! barriers and mutate the run in response — the adversary strikes the
//! weakest replica, the cascade propagates along the dependency ring.  The
//! contract is that those observations happen *only* at the deterministic
//! barriers, so the fingerprints cannot depend on how many worker threads
//! the scheduler uses.

use selfheal::fleet::{ExecutionMode, FleetConfig, HEALING_TAIL};
use selfheal::healing::harness::LearnerChoice;
use selfheal_bench::fleet::{
    adversarial_fleet, cascade_fleet, reactive_strike_stats, seasons_fleet, ADVERSARY_UNTIL,
};

const SEED: u64 = 7;

/// Runs one reactive fleet recipe sequentially and with 2 and 4 worker
/// threads, asserting all three interleavings produce identical per-replica
/// fingerprints.
fn assert_worker_invariant(label: &str, slice: u64, build: impl Fn() -> FleetConfig) {
    let sequential = build().mode(ExecutionMode::Sequential).slice(slice).run();
    for workers in [2usize, 4] {
        let parallel = build()
            .mode(ExecutionMode::Parallel {
                threads: Some(workers),
            })
            .slice(slice)
            .run();
        assert_eq!(
            parallel.fingerprints(),
            sequential.fingerprints(),
            "{label}: slice {slice}, {workers} workers must match sequential"
        );
    }
}

#[test]
fn adversary_runs_are_worker_count_invariant() {
    for slice in [1u64, 64] {
        assert_worker_invariant("adversary", slice, || {
            adversarial_fleet(5, SEED, LearnerChoice::Locked { batch: 1 }, 1).ticks(640)
        });
    }
}

#[test]
fn seasons_runs_are_worker_count_invariant() {
    for slice in [1u64, 64] {
        assert_worker_invariant("seasons", slice, || seasons_fleet(3, 512, SEED, 1));
    }
}

#[test]
fn cascade_runs_are_worker_count_invariant() {
    for slice in [1u64, 64] {
        assert_worker_invariant("cascade", slice, || {
            cascade_fleet(4, SEED, LearnerChoice::locked(), 3, 1).ticks(640)
        });
    }
}

#[test]
fn run_to_quiescence_stops_one_healing_tail_past_the_horizon() {
    let replicas = 5usize;
    let config = adversarial_fleet(replicas, SEED, LearnerChoice::Locked { batch: 1 }, 64);
    assert_eq!(
        config.stimulus_horizon(),
        Some(ADVERSARY_UNTIL - 1),
        "the adversary's last possible strike bounds the stimulus horizon"
    );
    let outcome = config.run_to_quiescence();
    assert_eq!(
        outcome.total_ticks(),
        replicas as u64 * (ADVERSARY_UNTIL + HEALING_TAIL),
        "every replica runs exactly one healing tail past the horizon"
    );
    let (strikes, matched, open, _, _) = reactive_strike_stats(&outcome);
    assert!(strikes > 0, "the adversary struck inside its window");
    assert!(matched > 0, "strikes opened attributable episodes");
    assert_eq!(open, 0, "the healing tail closed every attributed episode");
    let last_strike = outcome
        .reactive_log()
        .iter()
        .map(|record| record.tick)
        .max()
        .unwrap();
    assert!(
        last_strike < ADVERSARY_UNTIL,
        "no strike past the stand-down tick"
    );
}
