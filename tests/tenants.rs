//! Integration tests for daemon multi-tenancy: fingerprint isolation
//! against a standalone fleet, cross-tenant fix transfer through the
//! opt-in shared pool, and manifest-driven crash-restart of the whole
//! tenant set over the line protocol.

use selfheal::daemon::protocol::send_command;
use selfheal::daemon::{Daemon, DaemonConfig, DaemonOptions, Supervisor, TenantRegistry};
use selfheal::faults::FixKind;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::thread;
use std::time::{Duration, Instant};

/// A scratch directory unique to one test, cleaned up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("selfheal-tenants-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The isolation pin from the issue: a single-replica tenant is fully
/// serialized (one actor, one epoch barrier), so its outcome fingerprints
/// are byte-identical to the same config run as a standalone supervisor.
/// Tenancy must add *no* new nondeterminism for unpooled tenants.
#[test]
fn single_replica_tenant_fingerprints_match_standalone() {
    const EPOCHS: usize = 40;
    let config = DaemonConfig::default();

    let mut standalone = Supervisor::new(config.clone()).unwrap();
    standalone.add_replica("default").unwrap();
    for _ in 0..EPOCHS {
        standalone.advance_epoch();
    }
    let expected = standalone.fingerprints();

    let mut registry = TenantRegistry::new(config).unwrap();
    registry.create("iso", false).unwrap();
    registry
        .supervisor_mut("iso")
        .unwrap()
        .add_replica("default")
        .unwrap();
    for _ in 0..EPOCHS {
        // The default tenant is empty, so only `iso` advances — tenants
        // tick independently.
        registry.advance_all();
    }
    let tenant = registry.supervisor("iso").unwrap();
    assert_eq!(tenant.epoch(), EPOCHS as u64);
    let actual = tenant.fingerprints();

    assert_eq!(expected.len(), 1);
    assert_eq!(
        actual, expected,
        "an unpooled single-replica tenant must reproduce the standalone fleet bit-for-bit"
    );
    assert_ne!(expected[0].1, 0, "the fingerprint witnessed real work");

    standalone.shutdown();
    registry.shutdown();
}

/// The pool contract at registry level: experience recorded by a pooled
/// tenant becomes suggestible to *other pooled tenants* (without entering
/// their namespaces), while unpooled tenants see none of it.
#[test]
fn shared_pool_transfers_fixes_between_consenting_tenants() {
    let mut registry = TenantRegistry::new(DaemonConfig::default()).unwrap();
    registry.create("scout", true).unwrap();
    registry.create("victim", true).unwrap();
    registry.create("loner", false).unwrap();
    assert!(!registry.tenant("loner").unwrap().shared_pool());
    assert!(registry.tenant("victim").unwrap().shared_pool());

    let signature = vec![4.0, 1.0, 0.0, 2.5];
    let mut scout_store = registry.supervisor("scout").unwrap().store_handle();
    scout_store.record(&signature, FixKind::MicrorebootEjb, true);
    scout_store.flush();

    // The victim's own namespace is empty, but its store falls back to the
    // pool: the scout's fix transfers.
    let victim = registry.supervisor("victim").unwrap();
    assert_eq!(victim.store().correct_fixes_learned(), 0);
    let suggested = victim.store_handle().suggest(&signature);
    assert_eq!(
        suggested.map(|(fix, _)| fix),
        Some(FixKind::MicrorebootEjb),
        "a pooled tenant benefits from the scout's experience"
    );

    // The loner opted out: no pool fallback, no suggestion.
    let loner = registry.supervisor("loner").unwrap();
    assert!(!loner.pooled());
    assert_eq!(loner.store_handle().suggest(&signature), None);

    // The default tenant never joins the pool.
    assert!(!registry.default_supervisor().pooled());
    registry.shutdown();
}

/// Extracts `key=<u64>` from a space-separated reply.
fn field(reply: &str, key: &str) -> Option<u64> {
    reply
        .split_whitespace()
        .find_map(|token| token.strip_prefix(key))
        .and_then(|value| value.parse().ok())
}

/// Polls `command` against the socket until `predicate` accepts the reply.
fn wait_for(socket: &Path, command: &str, what: &str, predicate: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Ok(reply) = send_command(socket, command, Duration::from_secs(10)) {
            if predicate(&reply) {
                return reply;
            }
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(50));
    }
}

fn ctl(socket: &Path, command: &str) -> String {
    send_command(socket, command, Duration::from_secs(10))
        .unwrap_or_else(|err| panic!("{command}: {err}"))
}

/// The tenant lifecycle over the line protocol, including per-tenant
/// crash-restart: `TENANT CREATE`/`LIST`, `@<tenant>` scoping, `METRICS`
/// tenant tags, `kill -9`, and a relaunch that replays the manifest plus
/// every tenant's own snapshot log.
#[test]
fn tenant_set_survives_kill_dash_nine_over_the_line_protocol() {
    let scratch = Scratch::new("e2e");
    let socket = scratch.path("control.sock");
    let config = DaemonConfig {
        store_path: Some(scratch.path("synopsis.jsonl")),
        ..DaemonConfig::default()
    };
    let mut options = DaemonOptions::new(&socket);
    options.replicas = 1;

    // First life.
    let daemon = Daemon::launch(config.clone(), options.clone()).unwrap();
    let kill = daemon.kill_switch();
    let life_one = thread::spawn(move || daemon.run());
    wait_for(&socket, "STATUS", "the daemon socket", |reply| {
        reply.ends_with("OK\n")
    });

    // Tenant lifecycle and validation over the wire.
    assert!(ctl(&socket, "TENANT CREATE scout pool").ends_with("OK\n"));
    assert!(
        ctl(&socket, "TENANT CREATE scout pool").starts_with("ERR"),
        "duplicate"
    );
    assert!(ctl(&socket, "TENANT CREATE Bad Name").starts_with("ERR"));
    assert!(ctl(&socket, "TENANT DROP default").starts_with("ERR"));
    assert!(
        ctl(&socket, "@ghost STATUS").starts_with("ERR"),
        "unknown tenant"
    );
    let list = ctl(&socket, "TENANT LIST");
    assert!(
        list.contains("tenant=default shared_pool=off"),
        "list: {list}"
    );
    assert!(list.contains("tenant=scout shared_pool=on"), "list: {list}");

    // Scoped commands drive the scout's own fleet; its metrics line is
    // tenant-tagged while the default tenant's is not.
    assert!(ctl(&socket, "@scout ADD default").ends_with("OK\n"));
    assert!(ctl(&socket, "@scout ADD default").ends_with("OK\n"));
    let metrics = ctl(&socket, "@scout METRICS");
    assert!(
        metrics.contains("\"tenant\":\"scout\""),
        "metrics: {metrics}"
    );
    let default_metrics = ctl(&socket, "METRICS");
    assert!(
        default_metrics.contains("\"tenant\":\"default\""),
        "unscoped METRICS addresses the default tenant: {default_metrics}"
    );

    // Both tenants learn and drain to their *own* snapshot logs.
    wait_for(
        &socket,
        "@scout STATUS",
        "the scout to learn a fix",
        |reply| field(reply, "fixes_known=").unwrap_or(0) >= 1,
    );
    wait_for(
        &socket,
        "STATUS",
        "the default tenant to learn a fix",
        |reply| field(reply, "fixes_known=").unwrap_or(0) >= 1,
    );
    let scout_status = ctl(&socket, "@scout STATUS");
    assert!(
        scout_status.contains("tenant=scout shared_pool=on"),
        "status names its tenant: {scout_status}"
    );
    assert!(
        scratch.path("synopsis.scout.jsonl").exists(),
        "the scout drains to its namespaced log"
    );
    assert!(
        scratch.path("synopsis.tenants.jsonl").exists(),
        "the manifest records the tenant set"
    );

    // kill -9: no flushes, no manifest rewrite.
    kill.store(true, Ordering::SeqCst);
    life_one.join().unwrap().unwrap();

    // Second life: the manifest recreates the scout, and each tenant's log
    // replay restores its own synopsis.
    let daemon = Daemon::launch(config, options).unwrap();
    let registry = daemon.registry();
    assert!(registry.contains("scout"), "manifest replayed");
    assert!(
        registry.tenant("scout").unwrap().shared_pool(),
        "pool flag survived"
    );
    assert!(
        registry.supervisor("scout").unwrap().restored_examples() >= 1,
        "the scout's own log replayed"
    );
    assert!(
        registry.default_supervisor().restored_examples() >= 1,
        "the default tenant's log replayed"
    );
    let life_two = thread::spawn(move || daemon.run());

    let list = wait_for(
        &socket,
        "TENANT LIST",
        "the relaunched tenant list",
        |reply| reply.ends_with("OK\n"),
    );
    assert!(list.contains("tenant=scout shared_pool=on"), "list: {list}");

    // DROP deletes the tenant and its log: a recreated scout starts cold.
    assert!(ctl(&socket, "TENANT DROP scout").ends_with("OK\n"));
    assert!(
        !scratch.path("synopsis.scout.jsonl").exists(),
        "dropping a tenant deletes its log"
    );
    assert!(ctl(&socket, "TENANT CREATE scout").ends_with("OK\n"));
    let list = ctl(&socket, "TENANT LIST");
    assert!(
        list.contains("tenant=scout shared_pool=off replicas=0 epoch=0 fixes_known=0"),
        "the reborn scout starts cold: {list}"
    );

    let bye = ctl(&socket, "SHUTDOWN");
    assert!(bye.ends_with("OK\n"), "shutdown accepted: {bye}");
    life_two.join().unwrap().unwrap();
}
