//! End-to-end tests for the HTTP gateway: an in-process daemon behind an
//! in-process [`Gateway`], driven through the real TCP client — auth
//! denials, tenant lifecycle, the streaming metrics feed, the audit log,
//! and daemon-unreachable handling.

use selfheal::daemon::{Daemon, DaemonConfig, DaemonOptions};
use selfheal::gateway::auth::{AuthConfig, Scope, Token};
use selfheal::gateway::client::{request, stream_lines, HttpReply};
use selfheal::gateway::server::{Gateway, GatewayOptions};
use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

/// A scratch directory unique to one test, cleaned up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("selfheal-gateway-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The three-persona token set the issue's smoke test also uses: a
/// wildcard admin, an operator bound to `scout`, a reader bound to
/// `victim`.
fn tokens() -> AuthConfig {
    AuthConfig::new(vec![
        Token::new("ops", "swordfish", "*", Scope::Admin),
        Token::new("scout-op", "hunter2", "scout", Scope::Operate),
        Token::new("victim-ro", "letmein", "victim", Scope::Read),
    ])
}

fn get(addr: &str, target: &str, token: Option<&str>) -> HttpReply {
    request(addr, "GET", target, token, None).expect("GET")
}

fn post(addr: &str, target: &str, token: Option<&str>, body: Option<&str>) -> HttpReply {
    request(addr, "POST", target, token, body).expect("POST")
}

#[test]
fn gateway_serves_tenants_auth_and_streams_end_to_end() {
    let scratch = Scratch::new("e2e");
    let socket = scratch.path("control.sock");
    let audit_path = scratch.path("audit.log");

    // The daemon runs in-process, exactly as `selfheal-daemon` would.
    let mut options = DaemonOptions::new(&socket);
    options.replicas = 1;
    let daemon = Daemon::launch(DaemonConfig::default(), options).unwrap();
    let daemon_thread = thread::spawn(move || daemon.run());

    let mut gateway_options = GatewayOptions::new("127.0.0.1:0", &socket, tokens());
    gateway_options.audit = Some(audit_path.clone());
    gateway_options.stream_interval = Duration::from_millis(20);
    let gateway = Gateway::launch(gateway_options).unwrap();
    let addr = gateway.addr().to_string();

    // Routing comes before auth: unknown paths are 404 for everyone.
    assert_eq!(get(&addr, "/nope", None).status, 404);
    // Known routes demand a token...
    assert_eq!(get(&addr, "/v1/tenants", None).status, 401);
    assert_eq!(get(&addr, "/v1/tenants", Some("wrong")).status, 401);
    // ...with the right binding: daemon-wide routes need a `*` token, and
    // scope ranks are enforced per route.
    assert_eq!(get(&addr, "/v1/tenants", Some("hunter2")).status, 403);
    let denied = post(
        &addr,
        "/v1/tenants",
        Some("letmein"),
        Some("{\"name\":\"x\"}"),
    );
    assert_eq!(denied.status, 403);
    assert!(
        denied.body.contains("error"),
        "structured body: {}",
        denied.body
    );

    // Tenant lifecycle through the admin token.
    let created = post(
        &addr,
        "/v1/tenants",
        Some("swordfish"),
        Some("{\"name\":\"scout\",\"shared_pool\":true}"),
    );
    assert_eq!(created.status, 200, "create scout: {}", created.body);
    assert!(
        created.body.contains("\"ok\":true"),
        "body: {}",
        created.body
    );
    let duplicate = post(
        &addr,
        "/v1/tenants",
        Some("swordfish"),
        Some("{\"name\":\"scout\"}"),
    );
    assert_eq!(
        duplicate.status, 400,
        "daemon ERR maps to 400: {}",
        duplicate.body
    );
    assert!(duplicate.body.contains("error"), "body: {}", duplicate.body);
    let listed = get(&addr, "/v1/tenants", Some("swordfish"));
    assert_eq!(listed.status, 200);
    assert!(
        listed.body.contains("tenant=scout shared_pool=on"),
        "list: {}",
        listed.body
    );

    // The scout operator drives its own fleet but nobody else's.
    let added = post(
        &addr,
        "/v1/tenants/scout/replicas",
        Some("hunter2"),
        Some("{\"profile\":\"default\"}"),
    );
    assert_eq!(added.status, 200, "add replica: {}", added.body);
    assert_eq!(
        get(&addr, "/v1/tenants/scout/status", Some("hunter2")).status,
        200
    );
    assert_eq!(
        get(&addr, "/v1/tenants/default/status", Some("hunter2")).status,
        403,
        "tenant-bound tokens cannot reach other tenants"
    );

    // The metrics stream is chunked JSON-lines, tenant-tagged.
    let lines = stream_lines(
        &addr,
        "/v1/tenants/scout/metrics/stream",
        Some("hunter2"),
        2,
        Duration::from_secs(30),
    )
    .expect("stream");
    assert_eq!(lines.len(), 2);
    for line in &lines {
        assert!(
            line.contains("\"tenant\":\"scout\"") && line.contains("\"epoch\""),
            "stream line: {line}"
        );
    }

    // Mutating requests — granted and denied — landed in the audit log.
    let audit = std::fs::read_to_string(&audit_path).expect("audit log");
    assert!(
        audit.contains("token=ops") && audit.contains("path=/v1/tenants status=200"),
        "audit: {audit}"
    );
    assert!(
        audit.contains("token=victim-ro") && audit.contains("status=403"),
        "denied mutations are audited too: {audit}"
    );
    assert!(
        !audit.contains("swordfish"),
        "secrets never reach the audit log"
    );

    // Shutdown is an admin route; the daemon thread exits cleanly.
    assert_eq!(
        post(&addr, "/v1/shutdown", Some("hunter2"), None).status,
        403
    );
    assert_eq!(
        post(&addr, "/v1/shutdown", Some("swordfish"), None).status,
        200
    );
    daemon_thread.join().unwrap().unwrap();

    // With the daemon gone the gateway stays up and reports 502.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let reply = get(&addr, "/v1/tenants", Some("swordfish"));
        if reply.status == 502 {
            assert!(
                reply.body.contains("daemon unreachable"),
                "body: {}",
                reply.body
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "expected 502 once the daemon exited"
        );
        thread::sleep(Duration::from_millis(50));
    }

    gateway.stop();
}
