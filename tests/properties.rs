//! Property-based tests over cross-crate invariants.

use proptest::prelude::*;
use selfheal::faults::injection::default_target;
use selfheal::faults::{
    FaultId, FaultKind, FaultSource, FaultSpec, FixAction, FixCatalog, FixKind, MixSource,
    ServiceProfile,
};
use selfheal::healing::snapshot::SynopsisSnapshot;
use selfheal::healing::synopsis::SynopsisKind;
use selfheal::learn::{Classifier, Dataset, Example, NearestNeighbor};
use selfheal::sim::{MultiTierService, ServiceConfig};
use selfheal::telemetry::{Sample, SeriesStore};
use selfheal::workload::{
    ArrivalProcess, RecordedTrace, Request, RequestKind, TraceGenerator, TraceRecord, WorkloadMix,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The simulator never produces NaN/infinite metrics and never loses or
    /// invents requests, whatever (kind, severity) is injected.
    #[test]
    fn simulator_samples_are_finite_and_requests_are_conserved(
        kind_idx in 0usize..FaultKind::ALL.len(),
        severity in 0.05f64..1.0,
        rate in 5.0f64..60.0,
        seed in 0u64..1_000,
    ) {
        let kind = FaultKind::ALL[kind_idx];
        let config = ServiceConfig::tiny();
        let mut service = MultiTierService::new(config.clone());
        let mut workload = TraceGenerator::new(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate },
            seed,
        );
        for _ in 0..10 {
            let requests = workload.tick(service.current_tick());
            service.tick(&requests);
        }
        service.inject(FaultSpec::new(FaultId(1), kind, default_target(kind, 1), severity));
        for _ in 0..30 {
            let requests = workload.tick(service.current_tick());
            let outcome = service.tick(&requests);
            prop_assert!(outcome.sample.is_finite(), "sample must stay finite");
            prop_assert_eq!(outcome.arrived, outcome.completed + outcome.errors);
        }
        let (arrived, completed, errors) = service.totals();
        prop_assert_eq!(arrived, completed + errors);
    }

    /// The ground-truth catalog is consistent: the preferred fix for every
    /// fault kind, applied to its natural target, repairs a fault of that
    /// kind — and the universal restart never repairs a hardware failure.
    #[test]
    fn catalog_preferred_fixes_repair_their_faults(
        kind_idx in 0usize..FaultKind::ALL.len(),
        severity in 0.1f64..1.0,
        component in 0usize..4,
    ) {
        let kind = FaultKind::ALL[kind_idx];
        let catalog = FixCatalog::standard();
        let fault = FaultSpec::new(FaultId(0), kind, default_target(kind, component), severity);
        let preferred = catalog.preferred_fix(kind);
        let action = if preferred.needs_target() {
            FixAction::targeted(preferred, default_target(kind, component))
        } else {
            FixAction::untargeted(preferred)
        };
        prop_assert!(catalog.repairs(&fault, &action), "{kind}: preferred fix must repair it");
        let restart = FixAction::untargeted(FixKind::FullServiceRestart);
        if kind == FaultKind::HardwareFailure {
            prop_assert!(!catalog.repairs(&fault, &restart));
        }
    }

    /// A 1-NN classifier always reproduces the label of every training point
    /// it has stored (a basic sanity invariant the FixSym synopsis relies
    /// on: a previously seen failure signature gets the fix that worked).
    #[test]
    fn nearest_neighbor_memorizes_training_points(
        points in prop::collection::vec((prop::collection::vec(-50.0f64..50.0, 4), 0usize..8), 1..40)
    ) {
        // Deduplicate identical feature vectors (they may carry conflicting
        // labels, which 1-NN cannot be expected to reproduce).
        let mut seen: Vec<Vec<f64>> = Vec::new();
        let mut examples = Vec::new();
        for (features, label) in points {
            if seen.iter().any(|f| f == &features) {
                continue;
            }
            seen.push(features.clone());
            examples.push(Example::new(features, label));
        }
        let data = Dataset::from_examples(examples);
        let mut nn = NearestNeighbor::new();
        nn.fit(&data);
        for (features, label) in data.iter() {
            prop_assert_eq!(nn.predict(features), label);
        }
    }

    /// The JSON-lines trace codec is lossless: `parse ∘ serialize = id` for
    /// arbitrary batches, compared structurally (`Request: PartialEq`), not
    /// via debug strings.
    #[test]
    fn trace_codec_round_trips(
        batches in prop::collection::vec(
            prop::collection::vec(
                (0usize..RequestKind::ALL.len(), 0u64..1_000_000, 0u64..1_000_000),
                0..8,
            ),
            0..24,
        ),
        tick_stride in 1u64..5,
    ) {
        let records: Vec<TraceRecord> = batches
            .into_iter()
            .enumerate()
            .map(|(i, batch)| {
                let tick = i as u64 * tick_stride;
                let requests = batch
                    .into_iter()
                    .map(|(kind_idx, id, arrival)| {
                        Request::new(id, RequestKind::ALL[kind_idx], arrival)
                    })
                    .collect();
                TraceRecord::new(tick, requests)
            })
            .collect();
        let trace = RecordedTrace::new(records);
        let parsed = RecordedTrace::from_jsonl(&trace.to_jsonl())
            .expect("serialized traces must parse");
        prop_assert_eq!(parsed, trace);
    }

    /// The JSON-lines synopsis codec is lossless: `parse ∘ serialize = id`
    /// for arbitrary finite symptom vectors (compared bit-for-bit through
    /// `SynopsisExample: PartialEq`), every fix kind, both outcomes, and
    /// every synopsis kind.
    #[test]
    fn synopsis_codec_round_trips(
        examples in prop::collection::vec(
            (
                prop::collection::vec(-1.0e9f64..1.0e9, 1..8),
                0usize..FixKind::ALL.len(),
                0usize..2,
            ),
            0..32,
        ),
        kind_idx in 0usize..4,
    ) {
        let kinds = [
            SynopsisKind::NearestNeighbor,
            SynopsisKind::KMeans,
            SynopsisKind::AdaBoost(60),
            SynopsisKind::AdaBoost(7),
        ];
        let mut snapshot = SynopsisSnapshot::new(kinds[kind_idx]);
        for (symptoms, fix_idx, success) in examples {
            snapshot.push(symptoms, FixKind::ALL[fix_idx], success == 1);
        }
        let parsed = SynopsisSnapshot::from_jsonl(&snapshot.to_jsonl())
            .expect("serialized snapshots must parse");
        prop_assert_eq!(parsed, snapshot);
    }

    /// `MixSource` generation converges on its configured demographics:
    /// over a long window at rate 1.0, the frequency of every recorded
    /// failure cause approaches the `CauseMix` weight of the profile it
    /// was drawn from — the Figure 1 distribution realized as a generator.
    #[test]
    fn mix_source_cause_frequencies_converge_to_the_cause_mix(
        profile_idx in 0usize..ServiceProfile::ALL.len(),
        seed in 0u64..1_000,
    ) {
        let profile = ServiceProfile::ALL[profile_idx];
        let mut source = MixSource::new(profile, 1.0, seed);
        let n = 4_000u64;
        let mut counts = std::collections::HashMap::new();
        for tick in 0..n {
            for fault in source.due_at(tick) {
                *counts.entry(fault.cause).or_insert(0usize) += 1;
            }
        }
        let total: usize = counts.values().sum();
        prop_assert_eq!(total as u64, n, "rate 1.0 fires every tick");
        let mix = profile.cause_mix();
        for &(cause, weight) in mix.probabilities() {
            let freq = counts.get(&cause).copied().unwrap_or(0) as f64 / total as f64;
            // 4000 samples: 0.04 is > 5 sigma for every weight in the mixes.
            prop_assert!(
                (freq - weight).abs() < 0.04,
                "{}: {} frequency {freq:.3} vs configured {weight:.3}",
                profile.name(),
                cause
            );
        }
    }

    /// The telemetry store respects its capacity and keeps samples in tick
    /// order under any push pattern.
    #[test]
    fn series_store_is_bounded_and_ordered(
        capacity in 1usize..64,
        pushes in 0usize..200,
    ) {
        let schema = selfheal::telemetry::SchemaBuilder::new()
            .metric("x", selfheal::telemetry::Tier::Service, selfheal::telemetry::MetricKind::Gauge)
            .build();
        let mut store = SeriesStore::new(schema.clone(), capacity);
        for t in 0..pushes {
            store.push(Sample::zeroed(&schema, t as u64));
        }
        prop_assert!(store.len() <= capacity);
        prop_assert_eq!(store.len(), pushes.min(capacity));
        let ticks: Vec<u64> = store.iter().map(|s| s.tick()).collect();
        let mut sorted = ticks.clone();
        sorted.sort_unstable();
        prop_assert_eq!(ticks, sorted);
    }
}
