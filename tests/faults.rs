//! Acceptance suite for the pluggable `FaultSource` API: scripted sources
//! must be byte-identical to the pre-redesign `InjectionPlan` path, mix
//! sources must be worker-count- and slice-invariant under the tick-sliced
//! scheduler, and catalog sweeps/storms must cover what they claim.

use selfheal::faults::{
    CatalogSweep, FaultKind, FaultSource, FaultTarget, InjectionPlanBuilder, MixSource,
    ScriptedSource, ServiceProfile,
};
use selfheal::fleet::{ExecutionMode, FleetConfig};
use selfheal::healing::harness::{
    EventChoice, FaultChoice, LearnerChoice, PolicyChoice, SelfHealingService,
};
use selfheal::healing::synopsis::SynopsisKind;
use selfheal::sim::scenario::ScenarioRunner;
use selfheal::sim::{MultiTierService, ServiceConfig};
use selfheal::workload::{ArrivalProcess, TraceGenerator, WorkloadMix};

fn plan() -> selfheal::faults::InjectionPlan {
    InjectionPlanBuilder::new(4, 3, 1)
        .inject(
            60,
            FaultKind::BufferContention,
            FaultTarget::DatabaseTier,
            0.9,
        )
        .inject(
            220,
            FaultKind::UnhandledException,
            FaultTarget::Ejb { index: 1 },
            0.8,
        )
        .build()
}

/// The tentpole acceptance criterion: wrapping an `InjectionPlan` in a
/// `ScriptedSource` changes nothing observable — the plan-accepting
/// constructor shim and the explicit `with_faults` path produce
/// byte-identical runs (same `ScenarioOutcome::fingerprint()`).
#[test]
fn scripted_source_is_fingerprint_identical_to_the_injection_plan_path() {
    let run = |explicit: bool| {
        let service = MultiTierService::new(ServiceConfig::tiny());
        let workload = TraceGenerator::new(
            WorkloadMix::bidding(),
            ArrivalProcess::Poisson { rate: 40.0 },
            17,
        );
        let healer = PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor)
            .build_healer(service.schema(), ServiceConfig::tiny().slo_targets());
        let runner = if explicit {
            ScenarioRunner::with_faults(
                service,
                Box::new(workload),
                Box::new(ScriptedSource::new(plan())),
                healer,
            )
        } else {
            ScenarioRunner::new(service, workload, plan(), healer)
        };
        let (outcome, _) = runner.run(500);
        outcome
    };
    let shim = run(false);
    let explicit = run(true);
    assert!(
        shim.fixes_initiated >= 1,
        "the scenario must exercise fixes"
    );
    assert_eq!(
        shim.fingerprint(),
        explicit.fingerprint(),
        "ScriptedSource must reproduce the InjectionPlan run bit for bit"
    );
}

/// The harness builder shims agree too: `.injections(plan)` and
/// `.faults(FaultChoice::Scripted(plan))` are the same run.
#[test]
fn builder_injections_shim_equals_scripted_fault_choice() {
    let build = |scripted: bool| {
        let builder = SelfHealingService::builder()
            .config(ServiceConfig::tiny())
            .policy(PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor))
            .seed(9);
        let builder = if scripted {
            builder.faults(FaultChoice::Scripted(plan()))
        } else {
            builder.injections(plan())
        };
        builder.run(500)
    };
    assert_eq!(build(false).fingerprint(), build(true).fingerprint());
}

fn mix_fleet(workers: Option<usize>, slice: u64) -> FleetConfig {
    let config = ServiceConfig::tiny();
    FleetConfig::builder()
        .service(config.clone())
        .synthetic_workload(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
        )
        .replicas(4)
        .ticks(320)
        .base_seed(23)
        .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
        .faults(FaultChoice::mix_for(ServiceProfile::Online, 0.03, &config).active_for(160))
        .slice(slice)
        .mode(match workers {
            Some(w) => ExecutionMode::Parallel { threads: Some(w) },
            None => ExecutionMode::Sequential,
        })
}

/// The second acceptance criterion: a `MixSource` fleet run is
/// fingerprint-identical across workers 1–4 and slices {1, 64} — each
/// replica's demographic fault stream is a pure function of
/// `(base_seed, replica)`, never of scheduling.
#[test]
fn mix_fleets_are_invariant_across_worker_counts_and_slices() {
    let reference = mix_fleet(None, 1).run();
    assert!(reference.is_complete());
    assert!(
        reference.total_episodes() >= 1,
        "a 0.03-rate mix over 160 active ticks must fault somewhere"
    );
    let prints = reference.fingerprints();
    for workers in 1..=4 {
        for slice in [1, 64] {
            assert_eq!(
                mix_fleet(Some(workers), slice).run().fingerprints(),
                prints,
                "{workers} workers, slice {slice}"
            );
        }
    }
}

/// Sibling replicas draw decorrelated fault streams from the same base
/// seed (per-replica seed splitting via `SeedStream::Faults`).
#[test]
fn mix_fleet_replicas_decorrelate() {
    let outcome = mix_fleet(None, 1).run();
    let prints = outcome.fingerprints();
    let mut unique = prints.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(
        unique.len(),
        prints.len(),
        "replicas must differ: {prints:?}"
    );
}

/// A catalog sweep drives the healer through every failure class the
/// catalog describes — the FixSym training-coverage run.
#[test]
fn catalog_sweep_exposes_the_healer_to_every_class() {
    let outcome = SelfHealingService::builder()
        .config(ServiceConfig::tiny())
        .policy(PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor))
        .faults(FaultChoice::sweep(50, 400))
        .seed(5)
        .run(50 + 400 * 12 + 600);
    // Every class was injected; most manifest as episodes (some mild or
    // overlapping classes can fold into a neighbour's episode).
    assert!(
        outcome.recovery.len() >= 8,
        "a full sweep must open distinct episodes, got {}",
        outcome.recovery.len()
    );
    assert!(outcome.fixes_initiated >= 8);
}

/// Composed sources merge scripted scenarios with background demographic
/// noise, and the composition stays deterministic.
#[test]
fn composed_choices_merge_and_stay_deterministic() {
    let config = ServiceConfig::tiny();
    let choice = FaultChoice::composed([
        FaultChoice::Scripted(plan()),
        FaultChoice::mix_for(ServiceProfile::Content, 0.02, &config).active_for(150),
    ]);
    let run = || {
        SelfHealingService::builder()
            .config(ServiceConfig::tiny())
            .policy(PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor))
            .faults(choice.clone())
            .seed(31)
            .run(600)
    };
    let a = run();
    assert_eq!(a.fingerprint(), run().fingerprint());
    // The composed run faults (overlapping scripted + mix injections can
    // merge into fewer, longer episodes, so only a floor is asserted).
    assert!(!a.recovery.is_empty(), "episodes: {}", a.recovery.len());
    assert!(a.fixes_initiated >= 1);
}

/// Catalog storms (`EventChoice::catalog_storm`) hit the usual Bresenham
/// victim set but manifest mixed failure classes — deterministically at
/// every worker count.
#[test]
fn catalog_storms_are_worker_count_invariant() {
    let fleet = |workers: Option<usize>| {
        FleetConfig::builder()
            .service(ServiceConfig::tiny())
            .synthetic_workload(
                WorkloadMix::bidding(),
                ArrivalProcess::Constant { rate: 40.0 },
            )
            .replicas(6)
            .ticks(260)
            .base_seed(11)
            .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
            .learner(LearnerChoice::locked())
            .event(EventChoice::catalog_storm(80, ServiceProfile::Online, 1.0))
            .mode(match workers {
                Some(w) => ExecutionMode::Parallel { threads: Some(w) },
                None => ExecutionMode::Sequential,
            })
            .run()
    };
    let reference = fleet(None);
    let kinds: std::collections::HashSet<FaultKind> = reference
        .replicas()
        .iter()
        .flat_map(|r| r.outcome.recovery.episodes())
        .filter_map(|e| e.primary_fault())
        .collect();
    assert!(
        kinds.len() >= 2,
        "a full-fleet catalog storm manifests mixed classes: {kinds:?}"
    );
    for workers in [1, 2, 4] {
        assert_eq!(
            fleet(Some(workers)).fingerprints(),
            reference.fingerprints(),
            "{workers} workers"
        );
    }
}

/// `horizon()` composes sensibly across the shipped sources, so quiesce
/// logic can bound any run.
#[test]
fn source_horizons_bound_the_schedules() {
    assert_eq!(ScriptedSource::new(plan()).horizon(), 220);
    assert_eq!(
        MixSource::new(ServiceProfile::Online, 0.5, 1)
            .active_for(100)
            .horizon(),
        99
    );
    assert_eq!(
        MixSource::new(ServiceProfile::Online, 0.5, 1).horizon(),
        u64::MAX,
        "unbounded mixes say so"
    );
    let sweep = CatalogSweep::new(10, 5);
    assert_eq!(
        sweep.horizon(),
        10 + 5 * (CatalogSweep::kinds().len() as u64 - 1)
    );
}
