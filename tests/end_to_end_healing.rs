//! Integration tests spanning the whole stack: workload → simulator →
//! telemetry → diagnosis/FixSym → fix actuation → recovery.

use selfheal::faults::{FaultKind, FaultTarget, FixKind, InjectionPlanBuilder};
use selfheal::healing::harness::{PolicyChoice, SelfHealingService};
use selfheal::healing::synopsis::SynopsisKind;
use selfheal::sim::ServiceConfig;

fn scenario(policy: PolicyChoice, ticks: u64) -> selfheal::sim::ScenarioOutcome {
    let config = ServiceConfig::tiny();
    let injections = InjectionPlanBuilder::new(config.ejb_count, config.table_count, 1)
        .inject(
            60,
            FaultKind::BufferContention,
            FaultTarget::DatabaseTier,
            0.9,
        )
        .inject(
            500,
            FaultKind::UnhandledException,
            FaultTarget::Ejb { index: 1 },
            0.9,
        )
        .inject(
            940,
            FaultKind::SuboptimalQueryPlan,
            FaultTarget::Table { index: 0 },
            0.9,
        )
        .build();
    SelfHealingService::builder()
        .config(config)
        .injections(injections)
        .policy(policy)
        .seed(23)
        .run(ticks)
}

#[test]
fn unhealed_service_stays_broken_and_healed_service_recovers() {
    let unhealed = scenario(PolicyChoice::None, 1400);
    let healed = scenario(PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor), 1400);

    // Without healing the first fault never goes away, so most of the run is
    // spent in violation; with the hybrid policy the violations are short.
    assert!(
        unhealed.violation_fraction > 0.5,
        "unhealed {}",
        unhealed.violation_fraction
    );
    assert!(
        healed.violation_fraction < unhealed.violation_fraction / 2.0,
        "healed {} vs unhealed {}",
        healed.violation_fraction,
        unhealed.violation_fraction
    );
    assert!(
        healed.fixes_initiated >= 3,
        "one fix per injected failure at least"
    );
    // Healing costs goodput while disruptive fixes are applied (restarts and
    // reboots shed in-flight requests), so goodput is only sanity-checked;
    // the figure of merit for self-healing is the SLO-violation time above.
    assert!(
        healed.goodput_fraction() > 0.5,
        "healed goodput {}",
        healed.goodput_fraction()
    );

    // The detected episodes recover under the hybrid policy (the very last
    // one may still be mid-recovery when the run ends, e.g. while a slow
    // escalation completes).
    let recovered = healed
        .recovery
        .episodes()
        .iter()
        .filter(|e| e.recovery_ticks().is_some())
        .count();
    assert!(
        recovered + 1 >= healed.recovery.len(),
        "at most the final episode may be unrecovered: {recovered} of {}",
        healed.recovery.len()
    );
    assert!(healed.recovery.len() >= 3);
}

#[test]
fn fixsym_policy_handles_recurring_failures_with_fewer_attempts_over_time() {
    let config = ServiceConfig::tiny();
    // The same failure recurs four times.
    let injections = InjectionPlanBuilder::new(config.ejb_count, config.table_count, 1)
        .inject(
            60,
            FaultKind::BufferContention,
            FaultTarget::DatabaseTier,
            0.9,
        )
        .inject(
            500,
            FaultKind::BufferContention,
            FaultTarget::DatabaseTier,
            0.9,
        )
        .inject(
            940,
            FaultKind::BufferContention,
            FaultTarget::DatabaseTier,
            0.9,
        )
        .inject(
            1380,
            FaultKind::BufferContention,
            FaultTarget::DatabaseTier,
            0.9,
        )
        .build();
    let outcome = SelfHealingService::builder()
        .config(config)
        .injections(injections)
        .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
        .seed(29)
        .run(1800);

    let episodes = outcome.recovery.episodes();
    assert!(
        episodes.len() >= 3,
        "expected several episodes, got {}",
        episodes.len()
    );
    let first_attempts = episodes.first().unwrap().fixes_attempted.len();
    // Brief SLO flaps can open (and close) unrelated episodes around the
    // real injections; judge the synopsis by the last recovered episode that
    // was actually caused by the injected fault (ground truth is recorded on
    // the episode for exactly this kind of scoring).
    let last = episodes
        .iter()
        .rev()
        .find(|e| {
            e.recovery_ticks().is_some() && e.primary_fault() == Some(FaultKind::BufferContention)
        })
        .unwrap();
    assert!(
        last.fixes_attempted.len() <= first_attempts,
        "the learned synopsis should not need more attempts than the first encounter \
         (first {first_attempts}, last {})",
        last.fixes_attempted.len()
    );
    // Later episodes should not escalate to a full restart.
    assert!(
        !last.escalated,
        "a learned recurring failure must not require escalation"
    );
    assert!(
        last.fixes_attempted
            .iter()
            .any(|f| f.kind == FixKind::RepartitionMemory),
        "the learned fix should be the catalog fix for buffer contention"
    );
}

#[test]
fn manual_rules_escalate_on_failures_outside_their_rule_base() {
    // A network partition matches none of the expert rules, so the manual
    // policy falls through to its coarse catch-all restart (one of the
    // weaknesses of static rules the paper lists in Section 3).
    let config = ServiceConfig::tiny();
    let injections = InjectionPlanBuilder::new(config.ejb_count, config.table_count, 1)
        .inject(
            60,
            FaultKind::NetworkPartition,
            FaultTarget::WholeService,
            0.9,
        )
        .build();
    let outcome = SelfHealingService::builder()
        .config(config)
        .injections(injections)
        .policy(PolicyChoice::ManualRules)
        .seed(31)
        .run(700);
    assert!(outcome.fixes_initiated >= 1);
    assert!(
        outcome.recovery.escalation_fraction() > 0.0,
        "the manual policy should escalate for an unforeseen failure class"
    );
}
