//! # selfheal
//!
//! Umbrella crate for the *Toward Self-Healing Multitier Services*
//! reproduction: re-exports every workspace crate under one roof so
//! examples, integration tests, and downstream users can depend on a single
//! package.
//!
//! * [`jsonl`] — hand-rolled JSON-lines primitives shared by the trace and
//!   synopsis codecs (the build has no registry access for serde).
//! * [`telemetry`] — multidimensional metric time series, SLO monitoring.
//! * [`workload`] — RUBiS-like workloads behind the pluggable
//!   `TraceSource` API: synthetic generation, JSON-lines trace
//!   record/replay (with per-replica phase shifts), and burst storms.
//! * [`faults`] — failure/fix catalog behind the pluggable `FaultSource`
//!   API: scripted injection plans, stochastic demographic generation from
//!   the paper's `CauseMix` demographics, catalog coverage sweeps,
//!   tick-wise composition, and correlated fault storms (uniform or
//!   CauseMix-catalog mode).
//! * [`sim`] — the three-tier (web / EJB / database) service simulator.
//! * [`learn`] — from-scratch ML substrate (kNN, k-means, AdaBoost, ...).
//! * [`diagnosis`] — anomaly / correlation / bottleneck diagnosis and the
//!   manual rule baseline.
//! * [`healing`] — FixSym, synopses behind the pluggable `SynopsisStore`
//!   API (private, lock-shared, or sharded by symptom-space region, all
//!   persistable to JSON-lines for warm starts), hybrid and proactive
//!   policies, the healing-loop harness (the paper's contribution).
//! * [`daemon`] — the resident fleet daemon: supervised replica actors
//!   with bounded restart-with-backoff, a line-oriented control plane over
//!   a Unix domain socket (`selfheal-daemon` / `selfheal-ctl` binaries),
//!   live synopsis queries, multi-tenant fleets with per-tenant snapshot
//!   logs, and crash-restart durability via the incremental snapshot log.
//! * [`gateway`] — the HTTP/JSON serving layer over the daemon: a
//!   hand-rolled HTTP/1.1 server (`selfheal-gateway` / `selfheal-http`
//!   binaries) mapping REST-ish routes onto the control-plane commands,
//!   with bearer-token auth scoped per tenant and a chunked JSON-lines
//!   metrics stream.
//! * [`fleet`] — the fleet engine: N independently-seeded replicas driven
//!   by a tick-sliced epoch scheduler, coordinating through one shared
//!   synopsis store (access gated into the sequential interleave, so even
//!   parallel fleets are bit-reproducible) so every instance benefits from
//!   failures any sibling already healed — including failures healed by a
//!   *previous process* via snapshot warm-start — and stress-testable with
//!   cross-replica events: correlated fault storms and workload surges.
//!
//! ## Quickstart: one service
//!
//! ```
//! use selfheal::healing::harness::{PolicyChoice, SelfHealingService};
//! use selfheal::healing::synopsis::SynopsisKind;
//! use selfheal::faults::{FaultKind, FaultTarget, InjectionPlanBuilder};
//! use selfheal::sim::ServiceConfig;
//!
//! let plan = InjectionPlanBuilder::new(4, 3, 1)
//!     .inject(60, FaultKind::BufferContention, FaultTarget::DatabaseTier, 0.9)
//!     .build();
//! let outcome = SelfHealingService::builder()
//!     .config(ServiceConfig::tiny())
//!     .injections(plan)
//!     .policy(PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor))
//!     .run(300);
//! assert!(outcome.fixes_initiated >= 1);
//! ```
//!
//! ## Quickstart: a fleet with shared learning
//!
//! ```
//! use selfheal::fleet::{FleetConfig, LearningTopology};
//! use selfheal::healing::harness::PolicyChoice;
//! use selfheal::healing::synopsis::SynopsisKind;
//! use selfheal::sim::ServiceConfig;
//!
//! let outcome = FleetConfig::builder()
//!     .service(ServiceConfig::tiny())
//!     .replicas(8)
//!     .ticks(150)
//!     .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
//!     .topology(LearningTopology::shared())
//!     .run();
//! assert_eq!(outcome.replicas().len(), 8);
//! assert!(outcome.goodput_fraction() > 0.9);
//! ```
//!
//! ## Quickstart: demographic fault generation
//!
//! ```
//! use selfheal::faults::ServiceProfile;
//! use selfheal::healing::harness::{FaultChoice, PolicyChoice, SelfHealingService};
//! use selfheal::healing::synopsis::SynopsisKind;
//! use selfheal::sim::ServiceConfig;
//!
//! let config = ServiceConfig::tiny();
//! // Faults drawn from the Online service's Figure 1 cause mix at 3% per
//! // tick for 150 ticks, then a quiet tail for the healer to drain.
//! let outcome = SelfHealingService::builder()
//!     .config(config.clone())
//!     .faults(FaultChoice::mix_for(ServiceProfile::Online, 0.03, &config).active_for(150))
//!     .policy(PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor))
//!     .seed(42)
//!     .run(400);
//! assert_eq!(outcome.ticks, 400);
//! ```
//!
//! ## Quickstart: a correlated fault storm
//!
//! ```
//! use selfheal::faults::FaultKind;
//! use selfheal::fleet::FleetConfig;
//! use selfheal::healing::harness::{EventChoice, LearnerChoice, PolicyChoice};
//! use selfheal::healing::synopsis::SynopsisKind;
//! use selfheal::sim::ServiceConfig;
//!
//! let outcome = FleetConfig::builder()
//!     .service(ServiceConfig::tiny())
//!     .replicas(6)
//!     .ticks(300)
//!     .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
//!     .learner(LearnerChoice::locked())
//!     // At tick 100, buffer contention hits half the fleet at once.
//!     .event(EventChoice::storm(100, FaultKind::BufferContention, 0.5))
//!     .run();
//! assert!(outcome.is_complete());
//! assert!(outcome.total_episodes() >= 3, "three victims, three episodes");
//! ```
//!
//! ## Quickstart: warm-starting the next fleet from this one
//!
//! ```
//! use selfheal::fleet::FleetConfig;
//! use selfheal::healing::harness::{LearnerChoice, PolicyChoice};
//! use selfheal::healing::synopsis::SynopsisKind;
//! use selfheal::sim::ServiceConfig;
//!
//! let first = FleetConfig::builder()
//!     .service(ServiceConfig::tiny())
//!     .replicas(4)
//!     .ticks(150)
//!     .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
//!     .learner(LearnerChoice::sharded(4))   // k-means-routed shards
//!     .run();
//! // snapshot.save(path) / SynopsisSnapshot::load(path) cross processes.
//! let snapshot = first.store().expect("learning fleet").snapshot();
//! let next = FleetConfig::builder()
//!     .service(ServiceConfig::tiny())
//!     .replicas(4)
//!     .ticks(150)
//!     .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
//!     .learner(LearnerChoice::locked())
//!     .warm_start(snapshot)                 // knows every healed signature
//!     .run();
//! assert_eq!(next.replicas().len(), 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use selfheal_core as healing;
pub use selfheal_daemon as daemon;
pub use selfheal_diagnosis as diagnosis;
pub use selfheal_faults as faults;
pub use selfheal_fleet as fleet;
pub use selfheal_gateway as gateway;
pub use selfheal_jsonl as jsonl;
pub use selfheal_learn as learn;
pub use selfheal_sim as sim;
pub use selfheal_telemetry as telemetry;
pub use selfheal_workload as workload;
