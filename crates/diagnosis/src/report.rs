//! Diagnosis results and the shared symptom → fix mapping.

use crate::context::DiagnosisContext;
use selfheal_faults::{FaultTarget, FixAction, FixKind};
use selfheal_telemetry::{MetricId, Window};

/// Which engine produced a diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagnosisMethod {
    /// Baseline/current-window anomaly detection.
    AnomalyDetection,
    /// Correlation with the failure indicator.
    CorrelationAnalysis,
    /// Queueing / structural bottleneck analysis.
    BottleneckAnalysis,
    /// The manual rule-based baseline.
    ManualRules,
    /// The signature-based FixSym engine (defined in `selfheal-core`, but
    /// the method enum lives here so hybrid policies can label every
    /// recommendation uniformly).
    Signature,
}

impl DiagnosisMethod {
    /// Short label used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            DiagnosisMethod::AnomalyDetection => "anomaly",
            DiagnosisMethod::CorrelationAnalysis => "correlation",
            DiagnosisMethod::BottleneckAnalysis => "bottleneck",
            DiagnosisMethod::ManualRules => "manual",
            DiagnosisMethod::Signature => "fixsym",
        }
    }
}

/// One ranked recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// The engine that produced the recommendation.
    pub method: DiagnosisMethod,
    /// The recommended fix.
    pub fix: FixAction,
    /// Confidence in `[0, 1]` (used when combining approaches,
    /// Section 5.2 "Confidence estimates and ranking").
    pub confidence: f64,
    /// Human-readable explanation of why this fix was recommended.
    pub explanation: String,
}

impl Diagnosis {
    /// Creates a diagnosis, clamping confidence to `[0, 1]`.
    pub fn new(
        method: DiagnosisMethod,
        fix: FixAction,
        confidence: f64,
        explanation: impl Into<String>,
    ) -> Self {
        Diagnosis {
            method,
            fix,
            confidence: confidence.clamp(0.0, 1.0),
            explanation: explanation.into(),
        }
    }
}

/// Sorts diagnoses by decreasing confidence (stable for equal confidence).
pub fn rank(mut diagnoses: Vec<Diagnosis>) -> Vec<Diagnosis> {
    diagnoses.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .expect("finite confidence")
    });
    diagnoses
}

/// Maps an implicated *database* symptom metric to the fix that addresses
/// it, choosing the busiest table as the target for table-granular fixes.
///
/// This is the metric-to-fix knowledge that Examples 3–5 of the paper assume
/// ("if the number of accesses to an index is correlated with failure, then
/// the index can be rebuilt"): it is shared by the anomaly, correlation, and
/// bottleneck engines.
pub fn fix_for_db_symptom(
    metric: MetricId,
    ctx: &DiagnosisContext,
    window: &Window,
) -> Option<FixAction> {
    let busiest_table = busiest_component(&ctx.table_accesses, window);
    if metric == ctx.buffer_miss_rate {
        Some(FixAction::untargeted(FixKind::RepartitionMemory))
    } else if metric == ctx.lock_wait_ms {
        busiest_table.map(|t| {
            FixAction::targeted(FixKind::RepartitionTable, FaultTarget::Table { index: t })
        })
    } else if metric == ctx.plan_misestimate {
        busiest_table.map(|t| {
            FixAction::targeted(FixKind::UpdateStatistics, FaultTarget::Table { index: t })
        })
    } else if metric == ctx.db_util || metric == ctx.db_queue_ms {
        Some(FixAction::targeted(
            FixKind::ProvisionResources,
            FaultTarget::DatabaseTier,
        ))
    } else {
        None
    }
}

/// Maps an implicated tier-utilization metric to the capacity fix for that
/// tier.
pub fn fix_for_tier_saturation(metric: MetricId, ctx: &DiagnosisContext) -> Option<FixAction> {
    if metric == ctx.web_util || metric == ctx.web_queue_ms {
        Some(FixAction::targeted(
            FixKind::ProvisionResources,
            FaultTarget::WebTier,
        ))
    } else if metric == ctx.app_util || metric == ctx.app_queue_ms {
        Some(FixAction::targeted(
            FixKind::ProvisionResources,
            FaultTarget::AppTier,
        ))
    } else if metric == ctx.db_util || metric == ctx.db_queue_ms {
        Some(FixAction::targeted(
            FixKind::ProvisionResources,
            FaultTarget::DatabaseTier,
        ))
    } else {
        None
    }
}

/// Returns the index of the component whose metric has the largest mean in
/// the window (e.g. the most-accessed table, the EJB with the most errors).
pub fn busiest_component(metrics: &[MetricId], window: &Window) -> Option<usize> {
    if metrics.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_value = f64::NEG_INFINITY;
    for (i, id) in metrics.iter().enumerate() {
        let v = window.mean(*id);
        if v > best_value {
            best_value = v;
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_orders_by_confidence() {
        let a = Diagnosis::new(
            DiagnosisMethod::AnomalyDetection,
            FixAction::untargeted(FixKind::RepartitionMemory),
            0.4,
            "a",
        );
        let b = Diagnosis::new(
            DiagnosisMethod::BottleneckAnalysis,
            FixAction::untargeted(FixKind::FullServiceRestart),
            0.9,
            "b",
        );
        let ranked = rank(vec![a.clone(), b.clone()]);
        assert_eq!(ranked[0], b);
        assert_eq!(ranked[1], a);
    }

    #[test]
    fn confidence_is_clamped() {
        let d = Diagnosis::new(
            DiagnosisMethod::ManualRules,
            FixAction::untargeted(FixKind::NoOp),
            7.0,
            "x",
        );
        assert_eq!(d.confidence, 1.0);
    }

    #[test]
    fn method_labels_are_unique() {
        let methods = [
            DiagnosisMethod::AnomalyDetection,
            DiagnosisMethod::CorrelationAnalysis,
            DiagnosisMethod::BottleneckAnalysis,
            DiagnosisMethod::ManualRules,
            DiagnosisMethod::Signature,
        ];
        let mut labels: Vec<&str> = methods.iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), methods.len());
    }
}
