//! The manual rule-based baseline (Section 3).
//!
//! "Domain experts create rules that map symptoms of different types of
//! failure to specific fixes ... Typical rules have an if-then format and
//! involve thresholds, e.g., 'if the miss rate in the database buffer-cache
//! over the last 1 hour exceeds 35%, then increase the cache size'."
//!
//! The rule base below is written exactly in that style and deliberately
//! carries the weaknesses the paper lists: the thresholds are fixed, the
//! coverage is partial (failures the experts did not anticipate fall through
//! to the coarse-grained catch-all rule "do a full service restart if any
//! failure is observed"), and the rules never adapt.

use crate::context::DiagnosisContext;
use crate::report::{Diagnosis, DiagnosisMethod};
use selfheal_faults::{FaultTarget, FixAction, FixKind};
use selfheal_telemetry::{SeriesStore, Window, WindowSpec};

/// One expert-written if-then rule.
#[derive(Clone)]
pub struct ManualRule {
    /// Human-readable statement of the rule.
    pub description: String,
    /// Predicate over the recent window.
    condition: fn(&Window, &DiagnosisContext) -> bool,
    /// Fix applied when the predicate holds.
    fix: fn(&Window, &DiagnosisContext) -> FixAction,
}

impl std::fmt::Debug for ManualRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManualRule")
            .field("description", &self.description)
            .finish()
    }
}

/// The static rule base.
#[derive(Debug, Clone)]
pub struct ManualRuleBase {
    /// Window (samples) over which rule conditions are evaluated.
    pub window: usize,
    rules: Vec<ManualRule>,
    /// Whether the coarse catch-all restart rule is enabled.
    pub catch_all_restart: bool,
}

impl ManualRuleBase {
    /// The standard expert rule base used in the benchmarks.
    pub fn standard() -> Self {
        let rules = vec![
            ManualRule {
                description: "if the buffer-cache miss rate exceeds 35%, repartition memory"
                    .to_string(),
                condition: |w, ctx| w.mean(ctx.buffer_miss_rate) > 0.35,
                fix: |_, _| FixAction::untargeted(FixKind::RepartitionMemory),
            },
            ManualRule {
                description: "if lock wait exceeds 100 ms/tick, repartition the busiest table"
                    .to_string(),
                condition: |w, ctx| w.mean(ctx.lock_wait_ms) > 100.0,
                fix: |w, ctx| {
                    let table =
                        crate::report::busiest_component(&ctx.table_accesses, w).unwrap_or(0);
                    FixAction::targeted(
                        FixKind::RepartitionTable,
                        FaultTarget::Table { index: table },
                    )
                },
            },
            ManualRule {
                description: "if the plan misestimate factor exceeds 3, update statistics"
                    .to_string(),
                condition: |w, ctx| w.mean(ctx.plan_misestimate) > 3.0,
                fix: |w, ctx| {
                    let table =
                        crate::report::busiest_component(&ctx.table_accesses, w).unwrap_or(0);
                    FixAction::targeted(
                        FixKind::UpdateStatistics,
                        FaultTarget::Table { index: table },
                    )
                },
            },
            ManualRule {
                description: "if the error rate exceeds 20%, reboot the application tier"
                    .to_string(),
                condition: |w, ctx| w.mean(ctx.error_rate) > 0.20,
                fix: |_, _| FixAction::targeted(FixKind::RebootTier, FaultTarget::AppTier),
            },
            ManualRule {
                description: "if the database tier runs above 95% utilization, provision it"
                    .to_string(),
                condition: |w, ctx| w.mean(ctx.db_util) > 0.95,
                fix: |_, _| {
                    FixAction::targeted(FixKind::ProvisionResources, FaultTarget::DatabaseTier)
                },
            },
        ];
        // The rules are evaluated over a short window so that a freshly
        // confirmed failure is not diluted by the healthy samples that
        // precede it.
        ManualRuleBase {
            window: 4,
            rules,
            catch_all_restart: true,
        }
    }

    /// Number of specific (non-catch-all) rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// The rule descriptions (for documentation output).
    pub fn descriptions(&self) -> Vec<&str> {
        self.rules.iter().map(|r| r.description.as_str()).collect()
    }

    /// Evaluates the rules against the most recent window; the first rule
    /// whose condition holds wins (rules are ordered by the expert).  When
    /// no specific rule fires and the catch-all is enabled, the coarse
    /// "restart the whole service" rule fires with low confidence.
    pub fn diagnose(&self, series: &SeriesStore, ctx: &DiagnosisContext) -> Vec<Diagnosis> {
        let Some(window) = series.window(WindowSpec::latest(self.window.min(series.len().max(1))))
        else {
            return Vec::new();
        };
        for rule in &self.rules {
            if (rule.condition)(&window, ctx) {
                return vec![Diagnosis::new(
                    DiagnosisMethod::ManualRules,
                    (rule.fix)(&window, ctx),
                    0.7,
                    rule.description.clone(),
                )];
            }
        }
        if self.catch_all_restart {
            vec![Diagnosis::new(
                DiagnosisMethod::ManualRules,
                FixAction::untargeted(FixKind::FullServiceRestart),
                0.2,
                "no specific rule matched; falling back to a full service restart".to_string(),
            )]
        } else {
            Vec::new()
        }
    }
}

impl Default for ManualRuleBase {
    fn default() -> Self {
        ManualRuleBase::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_telemetry::{MetricKind, Sample, Schema, SchemaBuilder, SloTargets, Tier};

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new()
            .metric("svc.response_ms", Tier::Service, MetricKind::LatencyMs)
            .metric("svc.throughput", Tier::Service, MetricKind::Count)
            .metric("svc.arrivals", Tier::Service, MetricKind::Count)
            .metric("svc.error_rate", Tier::Service, MetricKind::Ratio)
            .metric("web.util", Tier::Web, MetricKind::Utilization)
            .metric("app.util", Tier::App, MetricKind::Utilization)
            .metric("db.util", Tier::Database, MetricKind::Utilization)
            .metric("web.queue_ms", Tier::Web, MetricKind::Gauge)
            .metric("app.queue_ms", Tier::App, MetricKind::Gauge)
            .metric("db.queue_ms", Tier::Database, MetricKind::Gauge)
            .metric("db.buffer_miss_rate", Tier::Database, MetricKind::Ratio)
            .metric("db.lock_wait_ms", Tier::Database, MetricKind::Gauge)
            .metric("db.plan_misestimate", Tier::Database, MetricKind::Gauge);
        for j in 0..2 {
            b = b.metric(
                format!("db.table{j}_accesses"),
                Tier::Database,
                MetricKind::Count,
            );
        }
        b.build()
    }

    fn store(schema: &Schema, setter: impl Fn(&mut Sample)) -> SeriesStore {
        let mut store = SeriesStore::new(schema.clone(), 32);
        for t in 0..10u64 {
            let mut s = Sample::zeroed(schema, t);
            s.set(schema.expect_id("db.plan_misestimate"), 1.0);
            s.set(schema.expect_id("db.table1_accesses"), 80.0);
            setter(&mut s);
            store.push(s);
        }
        store
    }

    #[test]
    fn buffer_miss_rule_fires_with_the_expected_fix() {
        let schema = schema();
        let ctx = DiagnosisContext::from_schema(&schema, SloTargets::new(200.0, 0.05));
        let s = store(&schema, |x| {
            x.set(schema.expect_id("db.buffer_miss_rate"), 0.5)
        });
        let diagnoses = ManualRuleBase::standard().diagnose(&s, &ctx);
        assert_eq!(diagnoses.len(), 1);
        assert_eq!(diagnoses[0].fix.kind, FixKind::RepartitionMemory);
        assert_eq!(diagnoses[0].method, DiagnosisMethod::ManualRules);
    }

    #[test]
    fn plan_rule_targets_the_busiest_table() {
        let schema = schema();
        let ctx = DiagnosisContext::from_schema(&schema, SloTargets::new(200.0, 0.05));
        let s = store(&schema, |x| {
            x.set(schema.expect_id("db.plan_misestimate"), 5.0)
        });
        let diagnoses = ManualRuleBase::standard().diagnose(&s, &ctx);
        assert_eq!(diagnoses[0].fix.kind, FixKind::UpdateStatistics);
        assert_eq!(
            diagnoses[0].fix.target,
            Some(FaultTarget::Table { index: 1 })
        );
    }

    #[test]
    fn unknown_failures_fall_through_to_the_coarse_restart() {
        let schema = schema();
        let ctx = DiagnosisContext::from_schema(&schema, SloTargets::new(200.0, 0.05));
        // Symptoms (high response time) that no specific rule covers.
        let s = store(&schema, |x| {
            x.set(schema.expect_id("svc.response_ms"), 5_000.0)
        });
        let base = ManualRuleBase::standard();
        let diagnoses = base.diagnose(&s, &ctx);
        assert_eq!(diagnoses[0].fix.kind, FixKind::FullServiceRestart);
        assert!(diagnoses[0].confidence < 0.3);
        assert_eq!(base.rule_count(), 5);
        assert_eq!(base.descriptions().len(), 5);
    }

    #[test]
    fn catch_all_can_be_disabled() {
        let schema = schema();
        let ctx = DiagnosisContext::from_schema(&schema, SloTargets::new(200.0, 0.05));
        let s = store(&schema, |x| {
            x.set(schema.expect_id("svc.response_ms"), 5_000.0)
        });
        let mut base = ManualRuleBase::standard();
        base.catch_all_restart = false;
        assert!(base.diagnose(&s, &ctx).is_empty());
    }

    #[test]
    fn first_matching_rule_wins() {
        let schema = schema();
        let ctx = DiagnosisContext::from_schema(&schema, SloTargets::new(200.0, 0.05));
        let s = store(&schema, |x| {
            x.set(schema.expect_id("db.buffer_miss_rate"), 0.9);
            x.set(schema.expect_id("db.util"), 0.99);
        });
        let diagnoses = ManualRuleBase::standard().diagnose(&s, &ctx);
        assert_eq!(diagnoses.len(), 1);
        assert_eq!(diagnoses[0].fix.kind, FixKind::RepartitionMemory);
    }
}
