//! Structural knowledge the diagnosis engines need about the metric schema.
//!
//! The paper notes (Section 4.3.3) that bottleneck analysis "can be done on
//! multidimensional time-series data only if extra information is provided
//! about the structure of the service as represented by the attributes".
//! [`DiagnosisContext`] is that extra information: which column is the
//! response time, which columns are the per-EJB call counters, and so on.
//! It is constructed once from the monitored service's schema (by name, so
//! any service following the same naming convention works).

use selfheal_telemetry::{MetricId, Schema, SloTargets};

/// Resolved metric handles for the columns the diagnosis engines interpret.
#[derive(Debug, Clone)]
pub struct DiagnosisContext {
    /// Mean end-to-end response time (ms).
    pub response_ms: MetricId,
    /// Per-tick error rate.
    pub error_rate: MetricId,
    /// Requests completed per tick.
    pub throughput: MetricId,
    /// Requests arrived per tick (offered load).
    pub arrivals: MetricId,
    /// Web-tier utilization.
    pub web_util: MetricId,
    /// Application-tier utilization.
    pub app_util: MetricId,
    /// Database-tier utilization.
    pub db_util: MetricId,
    /// Web-tier queue backlog (ms).
    pub web_queue_ms: MetricId,
    /// Application-tier queue backlog (ms).
    pub app_queue_ms: MetricId,
    /// Database-tier queue backlog (ms).
    pub db_queue_ms: MetricId,
    /// Buffer-pool miss rate.
    pub buffer_miss_rate: MetricId,
    /// Lock wait per tick (ms).
    pub lock_wait_ms: MetricId,
    /// Mean optimizer misestimate factor.
    pub plan_misestimate: MetricId,
    /// Per-EJB invocation counters (may be empty when only noninvasive data
    /// is collected).
    pub ejb_calls: Vec<MetricId>,
    /// Per-EJB error counters (may be empty).
    pub ejb_errors: Vec<MetricId>,
    /// Per-table access counters (may be empty).
    pub table_accesses: Vec<MetricId>,
    /// The response-time SLO threshold (ms), used as the failure indicator.
    pub slo_response_ms: f64,
    /// The error-rate SLO threshold, used as the failure indicator.
    pub slo_error_rate: f64,
}

impl DiagnosisContext {
    /// Resolves the context from a schema that follows the simulator's
    /// naming convention (`svc.response_ms`, `app.ejb<i>_calls`,
    /// `db.table<j>_accesses`, ...).
    ///
    /// # Panics
    /// Panics if a required whole-service or tier metric is missing.  The
    /// per-component metric lists are filled with whatever is present (an
    /// empty list models a service without invasive instrumentation).
    pub fn from_schema(schema: &Schema, targets: SloTargets) -> Self {
        let collect_indexed = |prefix: &str, suffix: &str| -> Vec<MetricId> {
            let mut ids = Vec::new();
            for i in 0.. {
                match schema.id(&format!("{prefix}{i}{suffix}")) {
                    Some(id) => ids.push(id),
                    None => break,
                }
            }
            ids
        };
        DiagnosisContext {
            response_ms: schema.expect_id("svc.response_ms"),
            error_rate: schema.expect_id("svc.error_rate"),
            throughput: schema.expect_id("svc.throughput"),
            arrivals: schema.expect_id("svc.arrivals"),
            web_util: schema.expect_id("web.util"),
            app_util: schema.expect_id("app.util"),
            db_util: schema.expect_id("db.util"),
            web_queue_ms: schema.expect_id("web.queue_ms"),
            app_queue_ms: schema.expect_id("app.queue_ms"),
            db_queue_ms: schema.expect_id("db.queue_ms"),
            buffer_miss_rate: schema.expect_id("db.buffer_miss_rate"),
            lock_wait_ms: schema.expect_id("db.lock_wait_ms"),
            plan_misestimate: schema.expect_id("db.plan_misestimate"),
            ejb_calls: collect_indexed("app.ejb", "_calls"),
            ejb_errors: collect_indexed("app.ejb", "_errors"),
            table_accesses: collect_indexed("db.table", "_accesses"),
            slo_response_ms: targets.response_ms,
            slo_error_rate: targets.error_rate,
        }
    }

    /// Drops the invasive per-component metrics, modelling a service that
    /// only exposes noninvasive instrumentation (Section 4.2).
    pub fn noninvasive(mut self) -> Self {
        self.ejb_calls.clear();
        self.ejb_errors.clear();
        self.table_accesses.clear();
        self
    }

    /// Returns `true` when per-component (invasive) metrics are available.
    pub fn has_invasive_data(&self) -> bool {
        !self.ejb_calls.is_empty() || !self.table_accesses.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_telemetry::{MetricKind, SchemaBuilder, SloTargets, Tier};

    fn sim_like_schema(ejbs: usize, tables: usize) -> Schema {
        let mut b = SchemaBuilder::new()
            .metric("svc.response_ms", Tier::Service, MetricKind::LatencyMs)
            .metric("svc.throughput", Tier::Service, MetricKind::Count)
            .metric("svc.arrivals", Tier::Service, MetricKind::Count)
            .metric("svc.error_rate", Tier::Service, MetricKind::Ratio)
            .metric("web.util", Tier::Web, MetricKind::Utilization)
            .metric("app.util", Tier::App, MetricKind::Utilization)
            .metric("db.util", Tier::Database, MetricKind::Utilization)
            .metric("web.queue_ms", Tier::Web, MetricKind::Gauge)
            .metric("app.queue_ms", Tier::App, MetricKind::Gauge)
            .metric("db.queue_ms", Tier::Database, MetricKind::Gauge)
            .metric("db.buffer_miss_rate", Tier::Database, MetricKind::Ratio)
            .metric("db.lock_wait_ms", Tier::Database, MetricKind::Gauge)
            .metric("db.plan_misestimate", Tier::Database, MetricKind::Gauge);
        for i in 0..ejbs {
            b = b.metric(format!("app.ejb{i}_calls"), Tier::App, MetricKind::Count);
            b = b.metric(format!("app.ejb{i}_errors"), Tier::App, MetricKind::Count);
        }
        for j in 0..tables {
            b = b.metric(
                format!("db.table{j}_accesses"),
                Tier::Database,
                MetricKind::Count,
            );
        }
        b.build()
    }

    #[test]
    fn context_resolves_all_component_metrics() {
        let schema = sim_like_schema(4, 3);
        let ctx = DiagnosisContext::from_schema(&schema, SloTargets::new(200.0, 0.05));
        assert_eq!(ctx.ejb_calls.len(), 4);
        assert_eq!(ctx.ejb_errors.len(), 4);
        assert_eq!(ctx.table_accesses.len(), 3);
        assert!(ctx.has_invasive_data());
        assert_eq!(ctx.slo_response_ms, 200.0);
    }

    #[test]
    fn noninvasive_context_drops_component_metrics() {
        let schema = sim_like_schema(4, 3);
        let ctx =
            DiagnosisContext::from_schema(&schema, SloTargets::new(200.0, 0.05)).noninvasive();
        assert!(ctx.ejb_calls.is_empty());
        assert!(ctx.table_accesses.is_empty());
        assert!(!ctx.has_invasive_data());
    }

    #[test]
    fn context_tolerates_services_without_component_metrics() {
        let schema = sim_like_schema(0, 0);
        let ctx = DiagnosisContext::from_schema(&schema, SloTargets::new(100.0, 0.01));
        assert!(ctx.ejb_calls.is_empty());
        assert!(!ctx.has_invasive_data());
    }

    #[test]
    #[should_panic(expected = "not part of the schema")]
    fn missing_required_metric_panics() {
        let schema = SchemaBuilder::new()
            .metric("svc.response_ms", Tier::Service, MetricKind::LatencyMs)
            .build();
        DiagnosisContext::from_schema(&schema, SloTargets::new(100.0, 0.01));
    }
}
