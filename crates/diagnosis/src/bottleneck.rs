//! Diagnosis via bottleneck analysis (Section 4.3.3).
//!
//! "Bottleneck analysis can diagnose failures caused by bottlenecked
//! resources that arise frequently in multitier services.  Anomaly detection
//! and correlation analysis may fail to pinpoint the root cause of such
//! failures.  However, bottleneck analysis can be done ... only if extra
//! information is provided about the structure of the service."
//!
//! The analyzer applies the utilization law tier by tier: the tier with the
//! highest utilization (and a growing queue) is the bottleneck.  When the
//! database tier is the bottleneck it drills into the database sub-metrics
//! to distinguish capacity exhaustion from buffer starvation, lock
//! contention, and bad plans — the Oracle ADDM-style refinement the paper
//! cites as \[12\] (Example 4).

use crate::context::DiagnosisContext;
use crate::report::{busiest_component, rank, Diagnosis, DiagnosisMethod};
use selfheal_faults::{FaultTarget, FixAction, FixKind};
use selfheal_telemetry::{SeriesStore, WindowSpec};

/// Structural bottleneck analyzer.
#[derive(Debug, Clone)]
pub struct BottleneckAnalyzer {
    /// Window (samples) over which utilizations and queues are averaged.
    pub window: usize,
    /// Utilization above which a tier is considered saturated.
    pub saturation_threshold: f64,
}

impl BottleneckAnalyzer {
    /// Analyzer averaging over the last 10 samples with a 0.85 saturation
    /// threshold.
    pub fn standard() -> Self {
        BottleneckAnalyzer {
            window: 10,
            saturation_threshold: 0.85,
        }
    }

    /// Diagnoses the current state, returning ranked recommendations (empty
    /// when no tier is saturated or history is too short).
    pub fn diagnose(&self, series: &SeriesStore, ctx: &DiagnosisContext) -> Vec<Diagnosis> {
        let Some(window) = series.window(WindowSpec::latest(self.window)) else {
            return Vec::new();
        };

        let tiers = [
            ("web", ctx.web_util, ctx.web_queue_ms, FaultTarget::WebTier),
            ("app", ctx.app_util, ctx.app_queue_ms, FaultTarget::AppTier),
            (
                "db",
                ctx.db_util,
                ctx.db_queue_ms,
                FaultTarget::DatabaseTier,
            ),
        ];

        let mut diagnoses = Vec::new();
        for (name, util_id, queue_id, target) in tiers {
            let util = window.mean(util_id);
            let queue = window.mean(queue_id);
            if util < self.saturation_threshold {
                continue;
            }
            // Confidence grows with how saturated the tier is and whether a
            // queue is actually building.
            let queue_factor = (queue / 1000.0).min(1.0);
            let confidence = (0.5 * util + 0.4 * queue_factor).clamp(0.1, 0.95);

            if target == FaultTarget::DatabaseTier {
                // Drill down: why is the database saturated?
                let miss = window.mean(ctx.buffer_miss_rate);
                let lock = window.mean(ctx.lock_wait_ms);
                let plan = window.mean(ctx.plan_misestimate);
                let busiest_table = busiest_component(&ctx.table_accesses, &window);
                if miss > 0.3 {
                    diagnoses.push(Diagnosis::new(
                        DiagnosisMethod::BottleneckAnalysis,
                        FixAction::untargeted(FixKind::RepartitionMemory),
                        (confidence + 0.1).min(0.95),
                        format!(
                            "database saturated (util {util:.2}) with buffer miss rate {miss:.2}"
                        ),
                    ));
                    continue;
                }
                if plan > 2.5 {
                    let fix = match busiest_table {
                        Some(t) => FixAction::targeted(
                            FixKind::UpdateStatistics,
                            FaultTarget::Table { index: t },
                        ),
                        None => FixAction::untargeted(FixKind::UpdateStatistics),
                    };
                    diagnoses.push(Diagnosis::new(
                        DiagnosisMethod::BottleneckAnalysis,
                        fix,
                        (confidence + 0.1).min(0.95),
                        format!("database saturated with plan misestimate factor {plan:.1}"),
                    ));
                    continue;
                }
                if lock > 50.0 {
                    let fix = match busiest_table {
                        Some(t) => FixAction::targeted(
                            FixKind::RepartitionTable,
                            FaultTarget::Table { index: t },
                        ),
                        None => FixAction::untargeted(FixKind::RepartitionTable),
                    };
                    diagnoses.push(Diagnosis::new(
                        DiagnosisMethod::BottleneckAnalysis,
                        fix,
                        (confidence + 0.05).min(0.95),
                        format!("database saturated with {lock:.0} ms/tick of lock wait"),
                    ));
                    continue;
                }
            }

            diagnoses.push(Diagnosis::new(
                DiagnosisMethod::BottleneckAnalysis,
                FixAction::targeted(FixKind::ProvisionResources, target),
                confidence,
                format!("{name} tier saturated: utilization {util:.2}, queue {queue:.0} ms"),
            ));
        }

        rank(diagnoses)
    }
}

impl Default for BottleneckAnalyzer {
    fn default() -> Self {
        BottleneckAnalyzer::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_telemetry::{MetricKind, Sample, Schema, SchemaBuilder, SloTargets, Tier};

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new()
            .metric("svc.response_ms", Tier::Service, MetricKind::LatencyMs)
            .metric("svc.throughput", Tier::Service, MetricKind::Count)
            .metric("svc.arrivals", Tier::Service, MetricKind::Count)
            .metric("svc.error_rate", Tier::Service, MetricKind::Ratio)
            .metric("web.util", Tier::Web, MetricKind::Utilization)
            .metric("app.util", Tier::App, MetricKind::Utilization)
            .metric("db.util", Tier::Database, MetricKind::Utilization)
            .metric("web.queue_ms", Tier::Web, MetricKind::Gauge)
            .metric("app.queue_ms", Tier::App, MetricKind::Gauge)
            .metric("db.queue_ms", Tier::Database, MetricKind::Gauge)
            .metric("db.buffer_miss_rate", Tier::Database, MetricKind::Ratio)
            .metric("db.lock_wait_ms", Tier::Database, MetricKind::Gauge)
            .metric("db.plan_misestimate", Tier::Database, MetricKind::Gauge);
        for j in 0..2 {
            b = b.metric(
                format!("db.table{j}_accesses"),
                Tier::Database,
                MetricKind::Count,
            );
        }
        b.build()
    }

    fn ctx(schema: &Schema) -> DiagnosisContext {
        DiagnosisContext::from_schema(schema, SloTargets::new(200.0, 0.05))
    }

    fn store(schema: &Schema, setter: impl Fn(&mut Sample)) -> SeriesStore {
        let mut store = SeriesStore::new(schema.clone(), 64);
        for t in 0..20u64 {
            let mut s = Sample::zeroed(schema, t);
            s.set(schema.expect_id("db.plan_misestimate"), 1.0);
            s.set(schema.expect_id("db.table0_accesses"), 50.0);
            s.set(schema.expect_id("db.table1_accesses"), 10.0);
            setter(&mut s);
            store.push(s);
        }
        store
    }

    #[test]
    fn unsaturated_service_produces_no_diagnosis() {
        let schema = schema();
        let s = store(&schema, |sample| {
            sample.set(schema.expect_id("web.util"), 0.3);
            sample.set(schema.expect_id("app.util"), 0.4);
            sample.set(schema.expect_id("db.util"), 0.5);
        });
        assert!(BottleneckAnalyzer::standard()
            .diagnose(&s, &ctx(&schema))
            .is_empty());
    }

    #[test]
    fn saturated_app_tier_recommends_provisioning_it() {
        let schema = schema();
        let s = store(&schema, |sample| {
            sample.set(schema.expect_id("app.util"), 0.98);
            sample.set(schema.expect_id("app.queue_ms"), 2_000.0);
        });
        let diagnoses = BottleneckAnalyzer::standard().diagnose(&s, &ctx(&schema));
        assert_eq!(diagnoses.len(), 1);
        assert_eq!(diagnoses[0].fix.kind, FixKind::ProvisionResources);
        assert_eq!(diagnoses[0].fix.target, Some(FaultTarget::AppTier));
    }

    #[test]
    fn saturated_db_with_buffer_misses_recommends_memory_repartitioning() {
        let schema = schema();
        let s = store(&schema, |sample| {
            sample.set(schema.expect_id("db.util"), 0.99);
            sample.set(schema.expect_id("db.queue_ms"), 3_000.0);
            sample.set(schema.expect_id("db.buffer_miss_rate"), 0.7);
        });
        let diagnoses = BottleneckAnalyzer::standard().diagnose(&s, &ctx(&schema));
        assert_eq!(diagnoses[0].fix.kind, FixKind::RepartitionMemory);
    }

    #[test]
    fn saturated_db_with_bad_plans_recommends_statistics_update_on_busiest_table() {
        let schema = schema();
        let s = store(&schema, |sample| {
            sample.set(schema.expect_id("db.util"), 0.99);
            sample.set(schema.expect_id("db.plan_misestimate"), 5.0);
        });
        let diagnoses = BottleneckAnalyzer::standard().diagnose(&s, &ctx(&schema));
        assert_eq!(diagnoses[0].fix.kind, FixKind::UpdateStatistics);
        assert_eq!(
            diagnoses[0].fix.target,
            Some(FaultTarget::Table { index: 0 })
        );
    }

    #[test]
    fn saturated_db_with_lock_waits_recommends_repartitioning_the_table() {
        let schema = schema();
        let s = store(&schema, |sample| {
            sample.set(schema.expect_id("db.util"), 0.95);
            sample.set(schema.expect_id("db.lock_wait_ms"), 400.0);
        });
        let diagnoses = BottleneckAnalyzer::standard().diagnose(&s, &ctx(&schema));
        assert_eq!(diagnoses[0].fix.kind, FixKind::RepartitionTable);
    }

    #[test]
    fn multiple_saturated_tiers_are_all_reported_ranked_by_confidence() {
        let schema = schema();
        let s = store(&schema, |sample| {
            sample.set(schema.expect_id("web.util"), 0.9);
            sample.set(schema.expect_id("db.util"), 1.0);
            sample.set(schema.expect_id("db.queue_ms"), 10_000.0);
        });
        let diagnoses = BottleneckAnalyzer::standard().diagnose(&s, &ctx(&schema));
        assert_eq!(diagnoses.len(), 2);
        assert!(diagnoses[0].confidence >= diagnoses[1].confidence);
        assert_eq!(diagnoses[0].fix.target, Some(FaultTarget::DatabaseTier));
    }
}
