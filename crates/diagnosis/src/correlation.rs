//! Diagnosis via correlation analysis (Section 4.3.2).
//!
//! "Correlation analysis proceeds by identifying attributes in the data that
//! are correlated strongly with (or predictive of) a failure-indicator
//! attribute."  The analyzer maintains a window of `(sample, violated)`
//! observations, computes the point-biserial correlation of every candidate
//! metric with the violation indicator, and maps the strongest correlate to
//! a fix (Example 3: an EJB's invocation/error metric → microreboot that
//! EJB; an index/table access metric → rebuild/repartition; and so on).
//!
//! Its documented weakness is reproduced faithfully: with few training
//! observations of a failure mode, correlations are weak and the analyzer
//! returns low-confidence or empty recommendations ("correlation-analysis
//! may fail to find fixes for failures not seen previously and for failures
//! that occur rarely").

use crate::context::DiagnosisContext;
use crate::report::{
    busiest_component, fix_for_db_symptom, fix_for_tier_saturation, rank, Diagnosis,
    DiagnosisMethod,
};
use selfheal_faults::{FaultTarget, FixAction, FixKind};
use selfheal_learn::stats::point_biserial;
use selfheal_telemetry::{MetricId, Sample, SeriesStore, Window, WindowSpec};
use std::collections::VecDeque;

/// Correlation-based fix recommender.
#[derive(Debug, Clone)]
pub struct CorrelationAnalyzer {
    /// How many recent observations to correlate over.
    pub window: usize,
    /// Minimum absolute correlation before a metric is considered
    /// predictive of failure.
    pub min_correlation: f64,
    history: VecDeque<(Vec<f64>, bool)>,
    metric_ids: Vec<MetricId>,
}

impl CorrelationAnalyzer {
    /// Analyzer correlating over the last 120 observations with a 0.3
    /// minimum correlation.
    pub fn standard(ctx: &DiagnosisContext) -> Self {
        Self::new(ctx, 120, 0.3)
    }

    /// Creates an analyzer over the candidate metrics of `ctx`.
    pub fn new(ctx: &DiagnosisContext, window: usize, min_correlation: f64) -> Self {
        let mut metric_ids = vec![
            ctx.web_util,
            ctx.app_util,
            ctx.db_util,
            ctx.web_queue_ms,
            ctx.app_queue_ms,
            ctx.db_queue_ms,
            ctx.buffer_miss_rate,
            ctx.lock_wait_ms,
            ctx.plan_misestimate,
        ];
        metric_ids.extend(ctx.ejb_calls.iter().copied());
        metric_ids.extend(ctx.ejb_errors.iter().copied());
        metric_ids.extend(ctx.table_accesses.iter().copied());
        CorrelationAnalyzer {
            window: window.max(10),
            min_correlation: min_correlation.clamp(0.05, 0.99),
            history: VecDeque::new(),
            metric_ids,
        }
    }

    /// Number of observations currently retained.
    pub fn observations(&self) -> usize {
        self.history.len()
    }

    /// Records one observation: the sample and whether the service was in
    /// confirmed SLO violation at that time (the failure indicator Y).
    pub fn observe(&mut self, sample: &Sample, violated: bool) {
        if self.history.len() == self.window {
            self.history.pop_front();
        }
        let values = self.metric_ids.iter().map(|id| sample.get(*id)).collect();
        self.history.push_back((values, violated));
    }

    /// Diagnoses using the retained history; `series` supplies the recent
    /// window used to pick component targets (busiest table / EJB).
    pub fn diagnose(&self, series: &SeriesStore, ctx: &DiagnosisContext) -> Vec<Diagnosis> {
        if self.history.len() < 20 {
            return Vec::new();
        }
        let violated: Vec<bool> = self.history.iter().map(|(_, v)| *v).collect();
        if !violated.iter().any(|v| *v) || violated.iter().all(|v| *v) {
            // Correlation is undefined without both classes present.
            return Vec::new();
        }

        let current = series
            .window(WindowSpec::latest(series.len().min(8)))
            .unwrap_or_else(|| Window::from_samples(series.schema().clone(), &[]));

        let mut scored: Vec<(MetricId, f64)> = self
            .metric_ids
            .iter()
            .enumerate()
            .map(|(col, id)| {
                let values: Vec<f64> = self.history.iter().map(|(row, _)| row[col]).collect();
                (*id, point_biserial(&values, &violated))
            })
            .collect();
        scored.sort_by(|a, b| {
            b.1.abs()
                .partial_cmp(&a.1.abs())
                .expect("finite correlation")
        });

        let mut diagnoses = Vec::new();
        for (metric, correlation) in scored.into_iter().take(5) {
            if correlation.abs() < self.min_correlation {
                break;
            }
            let confidence = correlation.abs().min(0.95);
            let explanation =
                format!("metric correlates with the failure indicator (r = {correlation:.2})");
            // EJB metrics → microreboot the implicated EJB.
            if let Some(pos) = ctx
                .ejb_errors
                .iter()
                .chain(&ctx.ejb_calls)
                .position(|id| *id == metric)
            {
                let index = pos % ctx.ejb_errors.len().max(1);
                diagnoses.push(Diagnosis::new(
                    DiagnosisMethod::CorrelationAnalysis,
                    FixAction::targeted(FixKind::MicrorebootEjb, FaultTarget::Ejb { index }),
                    confidence,
                    explanation,
                ));
                continue;
            }
            // Table access metrics → repartition the implicated table.
            if let Some(pos) = ctx.table_accesses.iter().position(|id| *id == metric) {
                diagnoses.push(Diagnosis::new(
                    DiagnosisMethod::CorrelationAnalysis,
                    FixAction::targeted(
                        FixKind::RepartitionTable,
                        FaultTarget::Table { index: pos },
                    ),
                    confidence,
                    explanation,
                ));
                continue;
            }
            // Database symptom metrics → the corresponding DB fix.
            if let Some(fix) = fix_for_db_symptom(metric, ctx, &current) {
                diagnoses.push(Diagnosis::new(
                    DiagnosisMethod::CorrelationAnalysis,
                    fix,
                    confidence,
                    explanation,
                ));
                continue;
            }
            // Tier saturation metrics → provision the tier.
            if let Some(fix) = fix_for_tier_saturation(metric, ctx) {
                diagnoses.push(Diagnosis::new(
                    DiagnosisMethod::CorrelationAnalysis,
                    fix,
                    confidence,
                    explanation,
                ));
            }
        }

        // Keep the most-accessed table handy for untargeted table fixes: the
        // helper is exercised here so untargeted recommendations stay
        // consistent with the anomaly detector's choices.
        let _ = busiest_component(&ctx.table_accesses, &current);

        rank(diagnoses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_telemetry::{MetricKind, Schema, SchemaBuilder, SloTargets, Tier};

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new()
            .metric("svc.response_ms", Tier::Service, MetricKind::LatencyMs)
            .metric("svc.throughput", Tier::Service, MetricKind::Count)
            .metric("svc.arrivals", Tier::Service, MetricKind::Count)
            .metric("svc.error_rate", Tier::Service, MetricKind::Ratio)
            .metric("web.util", Tier::Web, MetricKind::Utilization)
            .metric("app.util", Tier::App, MetricKind::Utilization)
            .metric("db.util", Tier::Database, MetricKind::Utilization)
            .metric("web.queue_ms", Tier::Web, MetricKind::Gauge)
            .metric("app.queue_ms", Tier::App, MetricKind::Gauge)
            .metric("db.queue_ms", Tier::Database, MetricKind::Gauge)
            .metric("db.buffer_miss_rate", Tier::Database, MetricKind::Ratio)
            .metric("db.lock_wait_ms", Tier::Database, MetricKind::Gauge)
            .metric("db.plan_misestimate", Tier::Database, MetricKind::Gauge);
        for i in 0..2 {
            b = b.metric(format!("app.ejb{i}_calls"), Tier::App, MetricKind::Count);
            b = b.metric(format!("app.ejb{i}_errors"), Tier::App, MetricKind::Count);
        }
        for j in 0..2 {
            b = b.metric(
                format!("db.table{j}_accesses"),
                Tier::Database,
                MetricKind::Count,
            );
        }
        b.build()
    }

    fn sample(schema: &Schema, tick: u64, miss_rate: f64, ejb1_errors: f64) -> Sample {
        let mut s = Sample::zeroed(schema, tick);
        s.set(schema.expect_id("db.buffer_miss_rate"), miss_rate);
        s.set(schema.expect_id("app.ejb1_errors"), ejb1_errors);
        s.set(schema.expect_id("db.plan_misestimate"), 1.0);
        s.set(schema.expect_id("db.table0_accesses"), 30.0);
        s.set(schema.expect_id("db.table1_accesses"), 20.0);
        s
    }

    #[test]
    fn needs_both_failure_and_healthy_observations() {
        let schema = schema();
        let ctx = DiagnosisContext::from_schema(&schema, SloTargets::new(200.0, 0.05));
        let mut analyzer = CorrelationAnalyzer::standard(&ctx);
        let mut store = SeriesStore::new(schema.clone(), 256);
        for t in 0..40u64 {
            let s = sample(&schema, t, 0.02, 0.0);
            analyzer.observe(&s, false);
            store.push(s);
        }
        assert!(analyzer.diagnose(&store, &ctx).is_empty());
        assert_eq!(analyzer.observations(), 40);
    }

    #[test]
    fn buffer_miss_correlated_with_failure_recommends_memory_fix() {
        let schema = schema();
        let ctx = DiagnosisContext::from_schema(&schema, SloTargets::new(200.0, 0.05));
        let mut analyzer = CorrelationAnalyzer::standard(&ctx);
        let mut store = SeriesStore::new(schema.clone(), 256);
        for t in 0..60u64 {
            let failing = t >= 40;
            let s = sample(&schema, t, if failing { 0.8 } else { 0.02 }, 0.0);
            analyzer.observe(&s, failing);
            store.push(s);
        }
        let diagnoses = analyzer.diagnose(&store, &ctx);
        assert!(!diagnoses.is_empty());
        assert_eq!(diagnoses[0].fix.kind, FixKind::RepartitionMemory);
        assert!(diagnoses[0].confidence > 0.5);
    }

    #[test]
    fn ejb_error_correlated_with_failure_recommends_targeted_microreboot() {
        let schema = schema();
        let ctx = DiagnosisContext::from_schema(&schema, SloTargets::new(200.0, 0.05));
        let mut analyzer = CorrelationAnalyzer::standard(&ctx);
        let mut store = SeriesStore::new(schema.clone(), 256);
        for t in 0..60u64 {
            let failing = t >= 40;
            let s = sample(&schema, t, 0.02, if failing { 12.0 } else { 0.0 });
            analyzer.observe(&s, failing);
            store.push(s);
        }
        let diagnoses = analyzer.diagnose(&store, &ctx);
        let top = &diagnoses[0];
        assert_eq!(top.fix.kind, FixKind::MicrorebootEjb);
        assert_eq!(top.fix.target, Some(FaultTarget::Ejb { index: 1 }));
    }

    #[test]
    fn failures_without_correlated_symptoms_yield_no_recommendation() {
        // A couple of observations are marked as failures, but no collected
        // metric moves with them (the failure's symptoms are not represented
        // in the data): every correlation is ~0 and no fix is recommended —
        // the weakness the paper attributes to correlation analysis.
        let schema = schema();
        let ctx = DiagnosisContext::from_schema(&schema, SloTargets::new(200.0, 0.05));
        let mut analyzer = CorrelationAnalyzer::new(&ctx, 120, 0.4);
        let mut store = SeriesStore::new(schema.clone(), 256);
        for t in 0..60u64 {
            let failing = t == 30 || t == 31;
            let s = sample(&schema, t, 0.02, 0.0);
            analyzer.observe(&s, failing);
            store.push(s);
        }
        assert!(analyzer.diagnose(&store, &ctx).is_empty());
    }
}
