//! # selfheal-diagnosis
//!
//! Diagnosis-based automated fix identification, implementing Section 4.3
//! of *Toward Self-Healing Multitier Services* (Cook et al., ICDE 2007):
//!
//! * [`anomaly::AnomalyDetector`] — Section 4.3.1: characterize baseline
//!   behaviour over a long window `Nb`, compare the current window `Nc`
//!   against it (χ² test on component-interaction distributions, z-scores on
//!   individual metrics), and map the most anomalous component to a fix.
//! * [`correlation::CorrelationAnalyzer`] — Section 4.3.2: find the metrics
//!   most strongly correlated with a failure-indicator attribute and map the
//!   top correlate to a fix.
//! * [`bottleneck::BottleneckAnalyzer`] — Section 4.3.3: use structural
//!   knowledge of the tiers (utilizations, queues, and the database
//!   sub-metrics) to locate the bottlenecked resource and recommend the
//!   corresponding capacity/contention fix.
//! * [`manual_rules::ManualRuleBase`] — Section 3's manual rule-based
//!   baseline: a fixed set of expert-written if-then threshold rules.
//!
//! All engines consume the same inputs a production monitoring pipeline
//! would have — a window of metric samples plus knowledge of which metric is
//! which ([`context::DiagnosisContext`]) — and produce ranked
//! [`report::Diagnosis`] recommendations with confidence estimates, so they
//! can be combined with the signature-based FixSym engine (Section 5.1).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod anomaly;
pub mod bottleneck;
pub mod context;
pub mod correlation;
pub mod manual_rules;
pub mod report;

pub use anomaly::AnomalyDetector;
pub use bottleneck::BottleneckAnalyzer;
pub use context::DiagnosisContext;
pub use correlation::CorrelationAnalyzer;
pub use manual_rules::ManualRuleBase;
pub use report::{Diagnosis, DiagnosisMethod};
