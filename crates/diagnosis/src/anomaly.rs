//! Diagnosis via anomaly detection (Section 4.3.1).
//!
//! Three phases: collect data, establish the baseline behaviour, then
//! "detect and classify anomalies, which are deviations of the current
//! behavior from the baseline".  Following Example 2, the detector compares
//! the distribution of inter-EJB calls over the last `Nb` samples with the
//! distribution over the last `Nc` samples (`Nc ≪ Nb`) using the χ² test —
//! a significant deviation implicates an EJB and recommends a microreboot.
//! Database and tier metrics are checked with z-scores against the baseline
//! and mapped to the corresponding Table 1 fixes.

use crate::context::DiagnosisContext;
use crate::report::{
    busiest_component, fix_for_db_symptom, fix_for_tier_saturation, rank, Diagnosis,
    DiagnosisMethod,
};
use selfheal_faults::{FaultTarget, FixAction, FixKind};
use selfheal_learn::stats::{chi_square_statistic, chi_square_test};
use selfheal_telemetry::{MetricId, SeriesStore};

/// Baseline/current-window anomaly detector.
#[derive(Debug, Clone)]
pub struct AnomalyDetector {
    /// Baseline window size Nb (samples).
    pub nb: usize,
    /// Current window size Nc (samples), `nc ≪ nb`.
    pub nc: usize,
    /// χ² significance level (0.05 or 0.01).
    pub alpha: f64,
    /// How many baseline standard deviations a metric must move before it is
    /// considered anomalous.
    pub z_threshold: f64,
}

impl AnomalyDetector {
    /// Detector with the window sizes used throughout the benchmarks:
    /// a 30-sample baseline against a 5-sample current window (short enough
    /// that a freshly deployed healer has a usable baseline within half a
    /// minute of service time).
    pub fn standard() -> Self {
        AnomalyDetector {
            nb: 30,
            nc: 5,
            alpha: 0.05,
            z_threshold: 4.0,
        }
    }

    /// Creates a detector with explicit window sizes.
    ///
    /// # Panics
    /// Panics unless `0 < nc < nb`.
    pub fn new(nb: usize, nc: usize) -> Self {
        assert!(nc > 0 && nc < nb, "anomaly detection requires 0 < Nc < Nb");
        AnomalyDetector {
            nb,
            nc,
            ..AnomalyDetector::standard()
        }
    }

    /// Minimum history (samples) needed before the detector can run.
    pub fn required_history(&self) -> usize {
        self.nb + self.nc
    }

    /// Diagnoses the current state of the service, returning ranked fix
    /// recommendations (empty when nothing is anomalous or history is too
    /// short).
    pub fn diagnose(&self, series: &SeriesStore, ctx: &DiagnosisContext) -> Vec<Diagnosis> {
        let Some((baseline, current)) = series.baseline_current(self.nb, self.nc) else {
            return Vec::new();
        };
        let mut diagnoses = Vec::new();

        // 1. Component-interaction anomaly (Example 2): compare how calls
        //    are split across EJB types, baseline vs current, with χ².
        if ctx.ejb_calls.len() >= 2 {
            let baseline_dist = baseline.distribution(&ctx.ejb_calls);
            let current_sums: Vec<f64> = ctx.ejb_calls.iter().map(|id| current.sum(*id)).collect();
            let current_total: f64 = current_sums.iter().sum();
            if let (Some(baseline_dist), true) = (baseline_dist, current_total > 0.0) {
                let expected: Vec<f64> = baseline_dist.iter().map(|p| p * current_total).collect();
                if chi_square_test(&current_sums, &expected, self.alpha) {
                    // The EJB with the largest relative deviation is implicated.
                    let mut worst = 0usize;
                    let mut worst_score = 0.0;
                    for (i, (obs, exp)) in current_sums.iter().zip(&expected).enumerate() {
                        if *exp > 0.0 {
                            let score = (obs - exp) * (obs - exp) / exp;
                            if score > worst_score {
                                worst_score = score;
                                worst = i;
                            }
                        }
                    }
                    let statistic = chi_square_statistic(&current_sums, &expected);
                    let confidence = (statistic / (statistic + 50.0)).clamp(0.1, 0.95);
                    diagnoses.push(Diagnosis::new(
                        DiagnosisMethod::AnomalyDetection,
                        FixAction::targeted(FixKind::MicrorebootEjb, FaultTarget::Ejb { index: worst }),
                        confidence,
                        format!(
                            "inter-EJB call distribution deviates from baseline (chi-square {statistic:.1}); EJB {worst} most deviant"
                        ),
                    ));
                }
            }
        }

        // 2. Per-EJB error anomalies: errors are ~0 in the baseline, so any
        //    sustained error count is anomalous.
        if let Some(worst) = busiest_component(&ctx.ejb_errors, &current) {
            let current_errors = current.mean(ctx.ejb_errors[worst]);
            let baseline_errors = baseline.mean(ctx.ejb_errors[worst]);
            if current_errors > baseline_errors + 0.5 {
                let confidence =
                    ((current_errors - baseline_errors) / (current_errors + 1.0)).clamp(0.1, 0.9);
                diagnoses.push(Diagnosis::new(
                    DiagnosisMethod::AnomalyDetection,
                    FixAction::targeted(FixKind::MicrorebootEjb, FaultTarget::Ejb { index: worst }),
                    confidence,
                    format!("EJB {worst} error count rose from {baseline_errors:.2} to {current_errors:.2} per tick"),
                ));
            }
        }

        // 3. Database and tier metric anomalies via z-scores.
        let db_metrics = [ctx.buffer_miss_rate, ctx.lock_wait_ms, ctx.plan_misestimate];
        for metric in db_metrics {
            if let Some(z) = self.z_score(metric, &baseline, &current) {
                if z > self.z_threshold {
                    if let Some(fix) = fix_for_db_symptom(metric, ctx, &current) {
                        diagnoses.push(Diagnosis::new(
                            DiagnosisMethod::AnomalyDetection,
                            fix,
                            (z / (z + 10.0)).clamp(0.1, 0.9),
                            format!("database metric deviates {z:.1} sigma from baseline"),
                        ));
                    }
                }
            }
        }
        // Tier-saturation anomalies.  The key discrimination: when a tier
        // saturates while the *offered load did not grow*, the tier itself
        // has degraded (leaked resources, misconfiguration) and the remedy
        // is rejuvenation (reboot the tier); when the load grew with it, the
        // tier is genuinely under-provisioned and the remedy is capacity.
        let arrival_ratio =
            (current.mean(ctx.arrivals) + 1.0) / (baseline.mean(ctx.arrivals) + 1.0);
        for metric in [ctx.web_util, ctx.app_util, ctx.db_util] {
            if let Some(z) = self.z_score(metric, &baseline, &current) {
                let saturated = current.mean(metric) > 0.9;
                if z > self.z_threshold && saturated {
                    if let Some(provision) = fix_for_tier_saturation(metric, ctx) {
                        let fix = if arrival_ratio < 1.3 {
                            match provision.target {
                                Some(target) => FixAction::targeted(FixKind::RebootTier, target),
                                None => FixAction::untargeted(FixKind::RebootTier),
                            }
                        } else {
                            provision
                        };
                        diagnoses.push(Diagnosis::new(
                            DiagnosisMethod::AnomalyDetection,
                            fix,
                            (z / (z + 10.0)).clamp(0.1, 0.85),
                            format!(
                                "tier utilization deviates {z:.1} sigma from baseline and is saturated (offered load ratio {arrival_ratio:.2})"
                            ),
                        ));
                    }
                }
            }
        }

        rank(diagnoses)
    }

    fn z_score(
        &self,
        metric: MetricId,
        baseline: &selfheal_telemetry::Window,
        current: &selfheal_telemetry::Window,
    ) -> Option<f64> {
        let summary = baseline.summary(metric);
        let std = summary.std_dev().max(0.01 * summary.mean.abs()).max(1e-6);
        Some((current.mean(metric) - summary.mean) / std)
    }
}

impl Default for AnomalyDetector {
    fn default() -> Self {
        AnomalyDetector::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_telemetry::{MetricKind, Sample, Schema, SchemaBuilder, SloTargets, Tier};

    /// Builds a minimal sim-convention schema with 3 EJBs and 2 tables.
    fn schema() -> Schema {
        let mut b = SchemaBuilder::new()
            .metric("svc.response_ms", Tier::Service, MetricKind::LatencyMs)
            .metric("svc.throughput", Tier::Service, MetricKind::Count)
            .metric("svc.arrivals", Tier::Service, MetricKind::Count)
            .metric("svc.error_rate", Tier::Service, MetricKind::Ratio)
            .metric("web.util", Tier::Web, MetricKind::Utilization)
            .metric("app.util", Tier::App, MetricKind::Utilization)
            .metric("db.util", Tier::Database, MetricKind::Utilization)
            .metric("web.queue_ms", Tier::Web, MetricKind::Gauge)
            .metric("app.queue_ms", Tier::App, MetricKind::Gauge)
            .metric("db.queue_ms", Tier::Database, MetricKind::Gauge)
            .metric("db.buffer_miss_rate", Tier::Database, MetricKind::Ratio)
            .metric("db.lock_wait_ms", Tier::Database, MetricKind::Gauge)
            .metric("db.plan_misestimate", Tier::Database, MetricKind::Gauge);
        for i in 0..3 {
            b = b.metric(format!("app.ejb{i}_calls"), Tier::App, MetricKind::Count);
            b = b.metric(format!("app.ejb{i}_errors"), Tier::App, MetricKind::Count);
        }
        for j in 0..2 {
            b = b.metric(
                format!("db.table{j}_accesses"),
                Tier::Database,
                MetricKind::Count,
            );
        }
        b.build()
    }

    fn ctx(schema: &Schema) -> DiagnosisContext {
        DiagnosisContext::from_schema(schema, SloTargets::new(200.0, 0.05))
    }

    /// Healthy sample: balanced EJB calls, low everything else.
    fn healthy_sample(schema: &Schema, tick: u64) -> Sample {
        let mut s = Sample::zeroed(schema, tick);
        s.set(schema.expect_id("svc.response_ms"), 30.0);
        s.set(schema.expect_id("svc.throughput"), 40.0);
        s.set(schema.expect_id("db.buffer_miss_rate"), 0.02);
        s.set(schema.expect_id("db.plan_misestimate"), 1.0);
        s.set(schema.expect_id("web.util"), 0.2);
        s.set(schema.expect_id("app.util"), 0.3);
        s.set(schema.expect_id("db.util"), 0.3);
        for i in 0..3 {
            s.set(
                schema.expect_id(&format!("app.ejb{i}_calls")),
                40.0 + i as f64,
            );
        }
        for j in 0..2 {
            s.set(schema.expect_id(&format!("db.table{j}_accesses")), 30.0);
        }
        s
    }

    fn store_with_baseline(schema: &Schema, n: usize) -> SeriesStore {
        let mut store = SeriesStore::new(schema.clone(), 1024);
        for t in 0..n {
            store.push(healthy_sample(schema, t as u64));
        }
        store
    }

    #[test]
    fn healthy_history_produces_no_diagnoses() {
        let schema = schema();
        let store = store_with_baseline(&schema, 80);
        let detector = AnomalyDetector::new(60, 6);
        assert!(detector.diagnose(&store, &ctx(&schema)).is_empty());
    }

    #[test]
    fn insufficient_history_produces_no_diagnoses() {
        let schema = schema();
        let store = store_with_baseline(&schema, 10);
        let detector = AnomalyDetector::new(60, 6);
        assert!(detector.diagnose(&store, &ctx(&schema)).is_empty());
        assert_eq!(detector.required_history(), 66);
    }

    #[test]
    fn skewed_ejb_call_distribution_recommends_microreboot_of_the_culprit() {
        let schema = schema();
        let mut store = store_with_baseline(&schema, 70);
        // EJB 2 stops being called (deadlocked): its calls collapse while
        // others keep flowing.
        for t in 70..78u64 {
            let mut s = healthy_sample(&schema, t);
            s.set(schema.expect_id("app.ejb2_calls"), 0.0);
            s.set(schema.expect_id("app.ejb0_calls"), 80.0);
            store.push(s);
        }
        let detector = AnomalyDetector::new(60, 6);
        let diagnoses = detector.diagnose(&store, &ctx(&schema));
        assert!(!diagnoses.is_empty());
        let top = &diagnoses[0];
        assert_eq!(top.method, DiagnosisMethod::AnomalyDetection);
        assert_eq!(top.fix.kind, FixKind::MicrorebootEjb);
        assert!(top.confidence > 0.1);
    }

    #[test]
    fn buffer_miss_spike_recommends_memory_repartitioning() {
        let schema = schema();
        let mut store = store_with_baseline(&schema, 70);
        for t in 70..78u64 {
            let mut s = healthy_sample(&schema, t);
            s.set(schema.expect_id("db.buffer_miss_rate"), 0.8);
            store.push(s);
        }
        let diagnoses = AnomalyDetector::new(60, 6).diagnose(&store, &ctx(&schema));
        assert!(diagnoses
            .iter()
            .any(|d| d.fix.kind == FixKind::RepartitionMemory));
    }

    #[test]
    fn ejb_error_spike_recommends_microreboot_even_without_call_skew() {
        let schema = schema();
        let mut store = store_with_baseline(&schema, 70);
        for t in 70..78u64 {
            let mut s = healthy_sample(&schema, t);
            s.set(schema.expect_id("app.ejb1_errors"), 15.0);
            store.push(s);
        }
        let diagnoses = AnomalyDetector::new(60, 6).diagnose(&store, &ctx(&schema));
        let microreboot = diagnoses
            .iter()
            .find(|d| d.fix.kind == FixKind::MicrorebootEjb)
            .expect("error spike should implicate an EJB");
        assert_eq!(
            microreboot.fix.target,
            Some(FaultTarget::Ejb { index: 1 }),
            "the failing EJB must be the target"
        );
    }

    #[test]
    fn saturated_tier_under_increased_load_recommends_provisioning() {
        let schema = schema();
        let mut store = store_with_baseline(&schema, 70);
        for t in 70..78u64 {
            let mut s = healthy_sample(&schema, t);
            s.set(schema.expect_id("svc.arrivals"), 150.0);
            s.set(schema.expect_id("db.util"), 1.0);
            s.set(schema.expect_id("db.queue_ms"), 5000.0);
            store.push(s);
        }
        let diagnoses = AnomalyDetector::new(60, 6).diagnose(&store, &ctx(&schema));
        assert!(diagnoses
            .iter()
            .any(|d| d.fix.kind == FixKind::ProvisionResources
                && d.fix.target == Some(FaultTarget::DatabaseTier)));
    }

    #[test]
    fn saturated_tier_under_flat_load_recommends_rejuvenating_the_tier() {
        // Same saturation, but the offered load did not grow: the tier has
        // degraded (aging / leak) and should be rebooted, not provisioned.
        let schema = schema();
        let mut store = store_with_baseline(&schema, 70);
        for t in 70..78u64 {
            let mut s = healthy_sample(&schema, t);
            s.set(schema.expect_id("app.util"), 0.99);
            s.set(schema.expect_id("app.queue_ms"), 4000.0);
            store.push(s);
        }
        let diagnoses = AnomalyDetector::new(60, 6).diagnose(&store, &ctx(&schema));
        assert!(diagnoses.iter().any(
            |d| d.fix.kind == FixKind::RebootTier && d.fix.target == Some(FaultTarget::AppTier)
        ));
    }

    #[test]
    #[should_panic(expected = "0 < Nc < Nb")]
    fn invalid_window_sizes_are_rejected() {
        AnomalyDetector::new(10, 10);
    }
}
