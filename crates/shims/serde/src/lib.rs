//! Offline stand-in for `serde`.
//!
//! The workspace's types carry `#[derive(Serialize, Deserialize)]` so that a
//! real serde can be dropped in once the build environment has registry
//! access, but nothing in-tree calls serialization entry points yet.  This
//! proc-macro crate therefore provides the two derive macros as no-ops: the
//! attribute positions stay valid and compile to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
