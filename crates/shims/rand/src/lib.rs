//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal, dependency-free implementation of exactly the `rand 0.8` API
//! surface the other crates use: [`Rng::gen_range`] / [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — statistically solid for simulation workloads and fully
//! deterministic for a given seed, which is what the fleet engine's
//! per-replica stream splitting relies on.  It does **not** match the byte
//! streams of the real `rand` crate, and makes no cryptographic claims.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next word truncated to 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        B: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        next_f64(self) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform f64 in `[0, 1)` from the top 53 bits of one output word.
fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)` (64-bit modulo; bias is negligible for the
/// span sizes used in this workspace).
fn next_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    rng.next_u64() % span
}

/// A type that can be sampled uniformly from a range, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + next_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        // Known deviation from rand 0.8: the sample stays in [lo, hi) —
        // the upper bound itself is never drawn (probability ~2^-53 under
        // the real crate, so no caller can observe the difference, but a
        // registry swap will not reproduce these streams bit-for-bit).
        lo + next_f64(rng) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + next_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + next_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

/// Construction of a generator from a seed, mirroring `rand::SeedableRng`
/// (only the `seed_from_u64` entry point this workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
            // as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice extensions, mirroring `rand::seq::SliceRandom` (only
    /// `shuffle`).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::next_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0), b.gen_range(0.0..1.0));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
            let i = rng.gen_range(0..3usize);
            assert!(i < 3);
            let c = rng.gen_range(0.4..=1.0);
            assert!((0.4..=1.0).contains(&c));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_impl(rng: &mut impl Rng) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let _ = takes_impl(&mut rng);
        let r = &mut rng;
        let _ = takes_impl(r);
    }
}
