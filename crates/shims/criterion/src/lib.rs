//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], and the `criterion_group!` / `criterion_main!` macros — as
//! a plain wall-clock timer: each benchmark is warmed up once, run for a
//! fixed number of timed iterations, and reported as mean ns/iter on stdout.
//! No statistics, plots, or baselines; the point is that `cargo bench`
//! builds and produces comparable numbers in an offline environment.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for a parameterized benchmark, `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_mean_ns: f64,
}

impl Bencher {
    /// Times `routine` over the configured number of samples and records the
    /// mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration outside the timed region.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.last_mean_ns = elapsed.as_nanos() as f64 / self.samples.max(1) as f64;
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs (criterion's
    /// statistical sample count is approximated by a plain iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            last_mean_ns: 0.0,
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), bencher.last_mean_ns);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            last_mean_ns: 0.0,
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), bencher.last_mean_ns);
        self
    }

    /// Ends the group (stateless here; kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: 10,
            last_mean_ns: 0.0,
        };
        f(&mut bencher);
        report(&format!("{id}"), bencher.last_mean_ns);
        self
    }
}

fn report(id: &str, mean_ns: f64) {
    if mean_ns >= 1_000_000.0 {
        println!("bench {id:<60} {:>12.3} ms/iter", mean_ns / 1_000_000.0);
    } else if mean_ns >= 1_000.0 {
        println!("bench {id:<60} {:>12.3} µs/iter", mean_ns / 1_000.0);
    } else {
        println!("bench {id:<60} {mean_ns:>12.1} ns/iter");
    }
}

/// Bundles benchmark functions into one group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, n| {
            b.iter(|| (0..*n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_reports() {
        benches();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
