//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest's API that this workspace's property
//! tests use: the [`proptest!`] macro with a `proptest_config` attribute,
//! numeric-range and tuple strategies, `prop::collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Cases are generated from a fixed-seed deterministic RNG, so failures are
//! reproducible run-to-run.  There is **no shrinking**: a failing case
//! reports its index and panics with the underlying assertion message.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`
/// (generation only — no value trees, no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut StdRng) -> u64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut StdRng) -> u32 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut StdRng) -> i64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! { (A, B) (A, B, C) (A, B, C, D) }

/// The `prop` module namespace, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy};

        /// Strategy producing `Vec`s of values from `element`, with a length
        /// drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut rand::rngs::StdRng) -> Self::Value {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Length specification for collection strategies: a fixed size or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize {
        if self.lo >= self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

#[doc(hidden)]
pub mod __rng {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Everything a property test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property (plain `assert!` here: failures
/// panic with the case index added by the [`proptest!`] harness).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn` runs `config.cases` times with fresh
/// random arguments drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            // `$meta` re-emits the property's own attributes, including its
            // `#[test]`.
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Vary the stream per property so sibling tests don't share
                // case sequences, but keep it fixed run-to-run.
                let mut rng = <$crate::__rng::StdRng as $crate::__rng::SeedableRng>::seed_from_u64(
                    0xC0FF_EE00 ^ stringify!($name).len() as u64,
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                    let run = || -> () { $body };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!("proptest: {} failed at case {}/{}", stringify!($name), case, config.cases);
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ( $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strategy),+) $body)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 0usize..10, f in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        /// Vec strategies honor their length range and element strategy.
        #[test]
        fn vecs_fit_spec(v in prop::collection::vec((prop::collection::vec(-5.0f64..5.0, 3), 0usize..4), 1..7)) {
            prop_assert!((1..7).contains(&v.len()));
            for (features, label) in v {
                prop_assert_eq!(features.len(), 3);
                prop_assert!(label < 4);
            }
        }
    }
}
