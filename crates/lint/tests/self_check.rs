//! The linter audits its own workspace: the real tree must be clean.
//!
//! This is the teeth of the whole exercise — every deliberate exception in
//! the tree carries a reviewed `lint:allow`, so any new finding is a real
//! regression (and this test failing in CI is how it gets caught even when
//! nobody runs the binary).

use selfheal_lint::rules::all_rules;
use selfheal_lint::{run_rules, Workspace};
use std::path::PathBuf;

#[test]
fn the_real_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let ws = Workspace::load(&root).expect("workspace loads");
    assert!(
        ws.files.len() > 50,
        "suspiciously small walk ({} files) — wrong root?",
        ws.files.len()
    );
    let findings = run_rules(&ws, &all_rules());
    assert!(
        findings.is_empty(),
        "the workspace has lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
