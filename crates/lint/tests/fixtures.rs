//! The fixture trees: one seeded violation per rule, and a clean twin.
//!
//! These are the linter's own regression net — each rule must fire on its
//! seeded violation (and nothing else), `lint:allow` must suppress, and
//! the clean tree must come back empty.

use selfheal_lint::rules::all_rules;
use selfheal_lint::{run_rules, Workspace};
use std::path::PathBuf;

fn fixture(name: &str) -> Workspace {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    Workspace::load(&root).expect("fixture tree loads")
}

#[test]
fn clean_tree_has_no_findings() {
    let ws = fixture("clean");
    let findings = run_rules(&ws, &all_rules());
    assert!(
        findings.is_empty(),
        "clean fixture should be silent, got:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn each_rule_fires_exactly_on_its_seeded_violation() {
    let ws = fixture("violations");
    let findings = run_rules(&ws, &all_rules());
    let got: Vec<(&str, &str)> = findings.iter().map(|f| (f.rule, f.file.as_str())).collect();
    let want = vec![
        ("choice-mirror", "crates/faults/src/rogue.rs"),
        ("id-space", "crates/faults/src/source.rs"),
        ("barrier-period", "crates/fleet/src/reactive.rs"),
        ("nondeterminism", "crates/sim/src/engine.rs"),
        ("nondeterminism", "crates/sim/src/engine.rs"),
        ("seed-discipline", "crates/sim/src/engine.rs"),
    ];
    assert_eq!(
        got,
        want,
        "unexpected finding set:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn allow_annotations_suppress_findings() {
    let ws = fixture("violations");
    let findings = run_rules(&ws, &all_rules());
    // The fixture has two wall-clock reads; the `lint:allow` one (line 10)
    // must be silent while its unannotated twin (line 8) fires.
    let clock_lines: Vec<usize> = findings
        .iter()
        .filter(|f| f.message.contains("wall clock"))
        .map(|f| f.line)
        .collect();
    assert_eq!(clock_lines, vec![8], "only the unannotated Instant fires");
}

#[test]
fn single_rule_selection_scopes_the_run() {
    let ws = fixture("violations");
    let mut rules = all_rules();
    rules.retain(|r| r.name() == "barrier-period");
    let findings = run_rules(&ws, &rules);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("does not divide"));
    assert_eq!(findings[0].line, 6);
}
