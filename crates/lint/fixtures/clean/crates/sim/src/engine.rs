//! Fixture simulation core: seeded, ordered, clock-free.

use std::collections::BTreeMap;

pub fn run(base_seed: u64) -> u64 {
    let counts: BTreeMap<u64, u64> = BTreeMap::new();
    let child = split_seed(base_seed, 0);
    counts.values().sum::<u64>() ^ child
}
