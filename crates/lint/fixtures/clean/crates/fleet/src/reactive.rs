//! Fixture reactive layer: the barrier period and a conforming slice.

pub const REACTIVE_PERIOD: u64 = 64;

pub fn reactive_fixture_fleet() -> u64 {
    let config = FleetConfig::new().slice(16);
    config.run()
}
