//! Fixture fault source: id base derived from the manifest.

use crate::id_space;

pub const ALPHA_FAULT_ID_BASE: u64 = id_space::lane_base(id_space::ALPHA_ID_BIT);

pub struct ScriptedSource;

impl FaultSource for ScriptedSource {
    fn next(&mut self) -> u64 {
        ALPHA_FAULT_ID_BASE
    }
}
