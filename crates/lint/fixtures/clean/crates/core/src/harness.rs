//! Fixture harness: the declarative mirror of the fixture traits.

pub enum FaultChoice {
    Scripted,
}

impl FaultChoice {
    pub fn build(self) -> ScriptedSource {
        match self {
            FaultChoice::Scripted => ScriptedSource,
        }
    }
}
