//! Fixture reactive layer: a slice width that does not divide the period.

pub const REACTIVE_PERIOD: u64 = 64;

pub fn reactive_fixture_fleet() -> u64 {
    let config = FleetConfig::new().slice(48);
    config.run()
}
