//! Fixture simulation core seeded with one violation of each kind the
//! `nondeterminism` and `seed-discipline` rules catch, plus one allowed
//! exception that must stay suppressed.

use std::collections::HashMap;

pub fn run(base_seed: u64, replica: u64) -> u64 {
    let started = std::time::Instant::now();
    // lint:allow(nondeterminism): fixture exercises allow-suppression.
    let allowed = std::time::Instant::now();
    let counts: HashMap<u64, u64> = HashMap::new();
    let mut total = 0;
    for k in counts {
        total += k.0;
    }
    let child = base_seed + replica;
    total ^ child ^ (allowed >= started) as u64
}
