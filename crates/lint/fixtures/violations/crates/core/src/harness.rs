//! Fixture harness: mirrors ScriptedSource but not RogueSource.

pub enum FaultChoice {
    Scripted,
}

impl FaultChoice {
    pub fn build(self) -> ScriptedSource {
        match self {
            FaultChoice::Scripted => ScriptedSource,
        }
    }
}
