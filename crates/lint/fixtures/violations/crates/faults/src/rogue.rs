//! Fixture rogue source: implements the trait but no enum variant reaches
//! it.

pub struct RogueSource;

impl FaultSource for RogueSource {
    fn next(&mut self) -> u64 {
        0
    }
}
