//! Fixture fault source: hand-rolls its id base instead of deriving it.

pub const BETA_FAULT_ID_BASE: u64 = 1 << 44;

pub struct ScriptedSource;

impl FaultSource for ScriptedSource {
    fn next(&mut self) -> u64 {
        BETA_FAULT_ID_BASE
    }
}
