//! Fixture manifest: well-formed — the violation lives in source.rs.

pub const ALPHA_ID_BIT: u32 = 40;
pub const BETA_ID_BIT: u32 = 44;

pub const ID_LANES: &[(&str, u32)] = &[
    ("ALPHA_ID_BIT", ALPHA_ID_BIT),
    ("BETA_ID_BIT", BETA_ID_BIT),
];

pub const fn lane_base(bit: u32) -> u64 {
    1u64 << bit
}
