//! `selfheal-lint`: a workspace determinism auditor.
//!
//! Determinism is this reproduction's house invariant — fingerprint
//! equality across workers and slices, byte-identical replay, and seeded
//! stream splitting are what make the shared-learning results trustworthy —
//! but the conventions enforcing it (disjoint fault-id namespaces,
//! `*Choice` ↔ trait-implementor mirroring, no wall clocks or hash-order
//! iteration in simulation paths) are *cross-file* properties no single
//! `rustc` diagnostic can see.  This crate proves them statically.
//!
//! The design mirrors the hand-rolled `selfheal-jsonl` codec: std-only, no
//! `syn`, no registry dependencies.  A small lexer ([`scan`]) blanks
//! comments and string literals while harvesting `// lint:allow(<rule>)`
//! annotations, [`workspace`] walks the source tree, and [`engine`] runs
//! the [`rules`] — each one a cross-file invariant grounded in a real
//! incident class:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `id-space` | every `*_ID_BASE` lane derives from the `faults::id_space` manifest and lanes are pairwise disjoint |
//! | `choice-mirror` | every `TraceSource`/`FaultSource`/`SynopsisStore`/`ReactiveEvent`/`FleetEvent` implementor is reachable from its `*Choice` enum, and every variant is used |
//! | `nondeterminism` | no wall clocks and no `HashMap`/`HashSet` iteration in fingerprint-bearing crates |
//! | `seed-discipline` | per-replica streams derive via `split_seed`, never raw arithmetic on a seed |
//! | `barrier-period` | literal slice widths in reactive tests/benches divide `REACTIVE_PERIOD` |
//!
//! Run it as `cargo run -p selfheal-lint -- --workspace` (exit 1 on
//! findings, `--json` for machine-readable output).  Suppress a deliberate
//! exception with `// lint:allow(<rule>): <why>` on the offending line or
//! the comment line directly above it — the *why* is mandatory by
//! convention, reviewed like any other code.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod rules;
pub mod scan;
pub mod workspace;

pub use engine::{run_rules, to_json, Finding, Rule};
pub use workspace::{SourceFile, Workspace};
