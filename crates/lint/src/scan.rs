//! The hand-rolled Rust source scanner.
//!
//! [`strip_source`] walks a file once with a small state machine and
//! produces, per line, the *code content* (comments and string/char
//! literals blanked out, so rules never match inside prose or test data)
//! plus the set of `lint:allow(<rule>)` annotations governing that line.
//! It understands line comments, nested block comments, plain and raw
//! string literals (with `#` fences and `b`/`r` prefixes), character
//! literals, and the `'a` lifetime ambiguity — enough fidelity for
//! token-level rules without a full parser.

/// One source line after stripping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line {
    /// The line's code with comment and literal *contents* replaced by
    /// spaces (string delimiters are kept so expressions stay shaped).
    pub code: String,
    /// Rules allowed on this line, harvested from `lint:allow(...)` in a
    /// comment on the line itself or on comment-only lines directly above.
    pub allows: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Strips `text` into per-line code content and allow annotations.
pub fn strip_source(text: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    // Allows harvested from comment-only lines, waiting for the next line
    // that carries code.
    let mut pending: Vec<String> = Vec::new();
    let mut state = State::Normal;

    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\n' {
            // A line comment never survives a newline.
            if state == State::LineComment {
                state = State::Normal;
            }
            let mut allows = parse_allows(&comment);
            if code.trim().is_empty() {
                // Comment-only (or blank) line: carry its allows forward.
                pending.append(&mut allows);
                lines.push(Line {
                    code: std::mem::take(&mut code),
                    allows: Vec::new(),
                });
            } else {
                allows.extend(std::mem::take(&mut pending));
                lines.push(Line {
                    code: std::mem::take(&mut code),
                    allows,
                });
            }
            comment.clear();
            continue;
        }
        match state {
            State::Normal => match c {
                '/' => match chars.peek() {
                    Some('/') => {
                        chars.next();
                        state = State::LineComment;
                    }
                    Some('*') => {
                        chars.next();
                        state = State::BlockComment(1);
                    }
                    _ => code.push('/'),
                },
                '"' => {
                    code.push('"');
                    state = State::Str;
                }
                'r' | 'b' => {
                    // Possible raw/byte string prefix: r", r#", br", b".
                    let mut prefix = String::from(c);
                    if c == 'b' {
                        if let Some('r') = chars.peek() {
                            prefix.push('r');
                            chars.next();
                        }
                    }
                    let mut hashes = 0u32;
                    while let Some('#') = chars.peek() {
                        // Only a raw-string prefix may be followed by '#'s
                        // then '"'; attribute '#' never follows an ident.
                        if !prefix.contains('r') {
                            break;
                        }
                        hashes += 1;
                        chars.next();
                    }
                    match chars.peek() {
                        Some('"') if prefix.contains('r') || prefix == "b" => {
                            chars.next();
                            code.push_str(&prefix);
                            code.push('"');
                            state = State::RawStr(hashes);
                            if !prefix.contains('r') {
                                // b"..." is an ordinary (escaped) string.
                                state = State::Str;
                            }
                        }
                        _ => {
                            // Just an identifier character; re-emit what we
                            // consumed speculatively.
                            code.push_str(&prefix);
                            for _ in 0..hashes {
                                code.push('#');
                            }
                        }
                    }
                }
                '\'' => {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    let mut ahead = chars.clone();
                    let first = ahead.next();
                    let second = ahead.next();
                    let is_char =
                        matches!((first, second), (Some('\\'), _) | (Some(_), Some('\'')));
                    if is_char {
                        code.push('\'');
                        state = State::Char;
                    } else {
                        code.push('\'');
                    }
                }
                other => code.push(other),
            },
            State::LineComment => comment.push(c),
            State::BlockComment(depth) => {
                comment.push(c);
                if c == '*' {
                    if let Some('/') = chars.peek() {
                        chars.next();
                        if depth == 1 {
                            state = State::Normal;
                        } else {
                            state = State::BlockComment(depth - 1);
                        }
                    }
                } else if c == '/' {
                    if let Some('*') = chars.peek() {
                        chars.next();
                        comment.push('*');
                        state = State::BlockComment(depth + 1);
                    }
                }
            }
            State::Str => match c {
                '\\' => {
                    chars.next();
                    code.push(' ');
                }
                '"' => {
                    code.push('"');
                    state = State::Normal;
                }
                _ => code.push(' '),
            },
            State::RawStr(hashes) => {
                if c == '"' {
                    // Close only when followed by the fence's hash count.
                    let mut ahead = chars.clone();
                    let mut seen = 0u32;
                    while seen < hashes {
                        match ahead.next() {
                            Some('#') => seen += 1,
                            _ => break,
                        }
                    }
                    if seen == hashes {
                        for _ in 0..hashes {
                            chars.next();
                        }
                        code.push('"');
                        state = State::Normal;
                        continue;
                    }
                }
                code.push(' ');
            }
            State::Char => match c {
                '\\' => {
                    chars.next();
                    code.push(' ');
                }
                '\'' => {
                    code.push('\'');
                    state = State::Normal;
                }
                _ => code.push(' '),
            },
        }
    }
    // Final unterminated line.
    if !code.is_empty() || !comment.is_empty() {
        let mut allows = parse_allows(&comment);
        allows.extend(std::mem::take(&mut pending));
        lines.push(Line { code, allows });
    }
    lines
}

/// Extracts every rule named in `lint:allow(a, b)` occurrences.
fn parse_allows(comment: &str) -> Vec<String> {
    let mut allows = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("lint:allow(") {
        rest = &rest[at + "lint:allow(".len()..];
        let Some(end) = rest.find(')') else { break };
        for rule in rest[..end].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                allows.push(rule.to_string());
            }
        }
        rest = &rest[end + 1..];
    }
    allows
}

/// Whether `c` can appear in a Rust identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Iterates the identifier-shaped tokens of a stripped line as
/// `(byte_offset, token)` pairs.  Numeric literals are yielded too (callers
/// filter on the first character when they care).
pub fn tokens(code: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if is_ident_char(bytes[i] as char) {
            let start = i;
            while i < bytes.len() && is_ident_char(bytes[i] as char) {
                i += 1;
            }
            out.push((start, &code[start..i]));
        } else {
            i += 1;
        }
    }
    out
}

/// The identifier immediately before byte offset `pos` (skipping
/// whitespace), or `None` if the preceding token is not an identifier.
pub fn ident_ending_before(code: &str, pos: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut end = pos;
    while end > 0 && (bytes[end - 1] as char).is_whitespace() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_ident_char(bytes[start - 1] as char) {
        start -= 1;
    }
    if start == end {
        None
    } else {
        Some(&code[start..end])
    }
}

/// A `const` item declaration harvested from stripped lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstDecl {
    /// The constant's name.
    pub name: String,
    /// The initializer expression (joined across lines, up to the `;`).
    pub expr: String,
    /// 1-based line of the declaration.
    pub line: usize,
}

/// Finds every `const NAME: TYPE = EXPR;` item in stripped `lines`
/// (associated consts included).  Initializers may span a handful of lines.
pub fn find_consts(lines: &[Line]) -> Vec<ConstDecl> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let code = &lines[i].code;
        if let Some(decl) = parse_const_header(code) {
            let (name, mut tail) = decl;
            // Accumulate until the terminating semicolon.
            let mut expr = String::new();
            let mut line_idx = i;
            loop {
                if let Some(semi) = tail.find(';') {
                    expr.push_str(&tail[..semi]);
                    break;
                }
                expr.push_str(&tail);
                expr.push(' ');
                line_idx += 1;
                if line_idx >= lines.len() || line_idx - i > 16 {
                    break;
                }
                tail = lines[line_idx].code.clone();
            }
            // The expression starts after the `=` (the header may or may
            // not have included it yet).
            let expr = match expr.find('=') {
                Some(eq) => expr[eq + 1..].trim().to_string(),
                None => expr.trim().to_string(),
            };
            out.push(ConstDecl {
                name,
                expr,
                line: i + 1,
            });
            i = line_idx + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Parses a line that begins a const item, returning the name and the rest
/// of the line from the name's `:` onward.
fn parse_const_header(code: &str) -> Option<(String, String)> {
    let toks = tokens(code);
    for (n, (_, tok)) in toks.iter().enumerate() {
        if *tok == "const" {
            // `const fn` is a function, not an item we parse.
            let (name_pos, name) = toks.get(n + 1)?;
            if *name == "fn" {
                return None;
            }
            // Require a `:` after the name (rules out `const` in generic
            // parameter lists like `<const N: usize>` only when absent).
            let after = &code[name_pos + name.len()..];
            if !after.trim_start().starts_with(':') {
                return None;
            }
            // Skip generic-parameter consts: they appear inside `<...>`.
            if code[..*name_pos].contains('<') {
                return None;
            }
            return Some((name.to_string(), after.to_string()));
        }
        // Only leading keywords may precede `const`.
        if !matches!(*tok, "pub" | "crate" | "super" | "self" | "in") {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let lines = strip_source(
            "let x = \"Instant::now()\"; // Instant here too\nlet y = 1; /* SystemTime */ let z = 2;\n",
        );
        assert!(!lines[0].code.contains("Instant"));
        assert!(lines[0].code.contains("let x ="));
        assert!(!lines[1].code.contains("SystemTime"));
        assert!(lines[1].code.contains("let z = 2;"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let lines = strip_source("/* a /* b */ still comment */ let x = 1;\n");
        assert!(lines[0].code.contains("let x = 1;"));
        assert!(!lines[0].code.contains("still"));
    }

    #[test]
    fn raw_strings_with_fences_are_blanked() {
        let lines = strip_source("let s = r#\"Instant \"quoted\" inside\"#; let t = 2;\n");
        assert!(!lines[0].code.contains("Instant"));
        assert!(lines[0].code.contains("let t = 2;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = strip_source(
            "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x'; let d = '\\n'; let e = 1;\n",
        );
        assert!(lines[0].code.contains("&'a str"));
        assert!(!lines[1].code.contains('x'), "char contents blanked");
        assert!(lines[1].code.contains("let e = 1;"));
    }

    #[test]
    fn allows_attach_to_their_line_and_carry_from_above() {
        let lines = strip_source(
            "let a = 1; // lint:allow(rule-x): same line\n// lint:allow(rule-y): comment above\nlet b = 2;\nlet c = 3;\n",
        );
        assert_eq!(lines[0].allows, vec!["rule-x"]);
        assert!(lines[1].allows.is_empty());
        assert_eq!(lines[2].allows, vec!["rule-y"]);
        assert!(lines[3].allows.is_empty());
    }

    #[test]
    fn consts_parse_across_lines() {
        let lines = strip_source(
            "pub const A: u64 = 1 << 44;\npub const B: u64 =\n    id_space::lane_base(id_space::MIX_ID_BIT);\nconst fn lane(b: u32) -> u64 { 1 << b }\n",
        );
        let consts = find_consts(&lines);
        assert_eq!(consts.len(), 2);
        assert_eq!(consts[0].name, "A");
        assert_eq!(consts[0].expr, "1 << 44");
        assert_eq!(consts[1].name, "B");
        assert!(consts[1].expr.contains("lane_base"));
        assert_eq!(consts[1].line, 2);
    }

    #[test]
    fn token_helpers_find_receivers() {
        let code = "let total: u64 = self.counts.values().sum();";
        let pos = code.find(".values").unwrap();
        assert_eq!(ident_ending_before(code, pos), Some("counts"));
    }
}
