//! The rule engine: findings, allow-list filtering, and JSON output.

use crate::workspace::Workspace;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Name of the rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A cross-file invariant checked over the whole workspace.
pub trait Rule {
    /// Stable rule name, as used in `lint:allow(<name>)`.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Returns every violation found (the engine applies allow-listing).
    fn check(&self, ws: &Workspace) -> Vec<Finding>;
}

/// Runs `rules` over `ws`, drops allow-listed findings, and returns the
/// rest sorted by `(file, line, rule)` for stable output.
pub fn run_rules(ws: &Workspace, rules: &[Box<dyn Rule>]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rule in rules {
        for finding in rule.check(ws) {
            let allowed = ws
                .files
                .iter()
                .find(|f| f.rel_path == finding.file)
                .is_some_and(|f| f.allows(finding.rule, finding.line));
            if !allowed {
                findings.push(finding);
            }
        }
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings
}

/// Renders findings as a JSON array (hand-rolled, mirroring the
/// `selfheal-jsonl` codec's spirit: no serde, stable field order).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"rule\":\"");
        escape_into(f.rule, &mut out);
        out.push_str("\",\"file\":\"");
        escape_into(&f.file, &mut out);
        out.push_str("\",\"line\":");
        out.push_str(&f.line.to_string());
        out.push_str(",\"message\":\"");
        escape_into(&f.message, &mut out);
        out.push_str("\"}");
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_orders_fields() {
        let findings = vec![Finding {
            rule: "id-space",
            file: "crates/a/src/b.rs".into(),
            line: 3,
            message: "a \"quoted\"\nmessage".into(),
        }];
        let json = to_json(&findings);
        assert!(json.contains("\"rule\":\"id-space\""));
        assert!(json.contains("\\\"quoted\\\"\\nmessage"));
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(to_json(&[]), "[]");
    }
}
