//! `barrier-period`: literal slice widths in reactive contexts divide
//! `REACTIVE_PERIOD`.
//!
//! The reactive engine only fires at epoch barriers landing on
//! `REACTIVE_PERIOD` multiples, and it *asserts* that the configured
//! barrier slice divides the period — otherwise reactive decisions would
//! depend on how ticks happen to be sliced, breaking slice-invariance.
//! That assert fires at run time, possibly deep into a long benchmark;
//! this rule moves the check to lint time for every **literal** slice
//! width written in a file that touches the reactive layer.  Computed
//! slices are the engine's problem (it clamps and asserts).

use crate::engine::{Finding, Rule};
use crate::scan::tokens;
use crate::workspace::Workspace;

const PERIOD_SUFFIX: &str = "fleet/src/reactive.rs";

/// See the module docs.
pub struct BarrierPeriod;

impl Rule for BarrierPeriod {
    fn name(&self) -> &'static str {
        "barrier-period"
    }

    fn description(&self) -> &'static str {
        "literal slice widths in reactive code divide REACTIVE_PERIOD"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        let period = ws.file_ending_with(PERIOD_SUFFIX).and_then(|f| {
            crate::scan::find_consts(&f.lines)
                .into_iter()
                .find(|c| c.name == "REACTIVE_PERIOD")
                .and_then(|c| parse_literal(&c.expr))
        });
        let Some(period) = period else {
            findings.push(Finding {
                rule: self.name(),
                file: format!("crates/{PERIOD_SUFFIX}"),
                line: 1,
                message: "REACTIVE_PERIOD is missing or not a literal — the barrier contract needs a fixed period".into(),
            });
            return findings;
        };

        for file in &ws.files {
            // Only files that touch the reactive layer carry the contract.
            let reactive = file.lines.iter().any(|l| {
                tokens(&l.code)
                    .iter()
                    .any(|(_, t)| t.to_ascii_lowercase().contains("reactive"))
            });
            if !reactive {
                continue;
            }
            for (idx, line) in file.lines.iter().enumerate() {
                for slice in literal_slices(&line.code) {
                    if slice == 0 {
                        findings.push(Finding {
                            rule: self.name(),
                            file: file.rel_path.clone(),
                            line: idx + 1,
                            message: "slice width 0 — barrier slices must be positive".into(),
                        });
                    } else if period % slice != 0 {
                        findings.push(Finding {
                            rule: self.name(),
                            file: file.rel_path.clone(),
                            line: idx + 1,
                            message: format!(
                                "slice width {slice} does not divide REACTIVE_PERIOD ({period}) — reactive barriers would drift"
                            ),
                        });
                    }
                }
            }
        }
        findings
    }
}

/// Literal widths written as `.slice(N)` or `slice: N` on this line.
fn literal_slices(code: &str) -> Vec<u64> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = code[from..].find(".slice(") {
        let start = from + at + ".slice(".len();
        if let Some(close) = code[start..].find(')') {
            if let Some(n) = parse_literal(&code[start..start + close]) {
                out.push(n);
            }
            from = start + close;
        } else {
            break;
        }
    }
    for (pos, tok) in tokens(code) {
        if tok != "slice" {
            continue;
        }
        let rest = code[pos + tok.len()..].trim_start();
        let Some(rest) = rest.strip_prefix(':') else {
            continue;
        };
        let value: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '_')
            .collect();
        if let Some(n) = parse_literal(&value) {
            out.push(n);
        }
    }
    out
}

fn parse_literal(expr: &str) -> Option<u64> {
    let cleaned: String = expr.chars().filter(|c| *c != '_').collect();
    let cleaned = cleaned.trim();
    if cleaned.is_empty() {
        return None;
    }
    cleaned.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_literals_are_harvested() {
        assert_eq!(literal_slices(".slice(16).slice(24)"), vec![16, 24]);
        assert_eq!(literal_slices("slice: 32,"), vec![32]);
        assert_eq!(
            literal_slices("slice: args.slice.max(1),"),
            Vec::<u64>::new()
        );
        assert_eq!(literal_slices(".slice(slice)"), Vec::<u64>::new());
        assert_eq!(literal_slices("pub slice: u64,"), Vec::<u64>::new());
    }
}
