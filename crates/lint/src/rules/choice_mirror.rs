//! `choice-mirror`: the pluggable-layer traits and their declarative
//! `*Choice` enums stay in lockstep.
//!
//! Each pluggable layer is a trait (the open half) mirrored by a `*Choice`
//! enum in `core/src/harness.rs` (the declarative half that fleets, benches
//! and the daemon configure themselves with).  A trait implementor the
//! enum cannot name is a scenario that cannot be configured declaratively —
//! and therefore escapes the fingerprint-equivalence gates that iterate the
//! choices.  Both directions are checked:
//!
//! * every implementor of a mirrored trait must be *reachable from its
//!   enum*: named in `harness.rs` itself, or constructed in a builder arm
//!   within a few lines of the enum's name (core cannot name types from
//!   the crates above it, so e.g. the `ReactiveChoice` →
//!   `AdversarySource` mapping lives in fleet's `push_choice`).  Internal
//!   adapters annotate `lint:allow(choice-mirror)` at the `impl` line;
//! * every variant of a `*Choice` enum must be referenced somewhere
//!   outside its own declaration (a variant nothing constructs or matches
//!   is a dead scenario).

use crate::engine::{Finding, Rule};
use crate::scan::tokens;
use crate::workspace::Workspace;

const HARNESS_SUFFIX: &str = "core/src/harness.rs";

/// How many lines past a mirror-enum mention a builder arm may construct
/// the concrete type (rustfmt-expanded match arms stay well inside this).
const BUILDER_WINDOW: usize = 8;

/// Mirrored trait → the enum that must reach it.
const MIRRORS: &[(&str, &str)] = &[
    ("TraceSource", "WorkloadChoice"),
    ("FaultSource", "FaultChoice"),
    ("SynopsisStore", "LearnerChoice"),
    ("ReactiveEvent", "ReactiveChoice"),
    ("FleetEvent", "EventChoice"),
];

/// See the module docs.
pub struct ChoiceMirror;

impl Rule for ChoiceMirror {
    fn name(&self) -> &'static str {
        "choice-mirror"
    }

    fn description(&self) -> &'static str {
        "every mirrored-trait implementor is reachable from its *Choice enum, and every variant is used"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        let Some(harness) = ws.file_ending_with(HARNESS_SUFFIX) else {
            findings.push(Finding {
                rule: self.name(),
                file: format!("crates/{HARNESS_SUFFIX}"),
                line: 1,
                message: "harness.rs (the *Choice mirror) is missing".into(),
            });
            return findings;
        };

        // Per-mirror reachability sets: tokens of harness.rs itself, plus
        // tokens near any mention of the mirror enum anywhere (builder
        // match arms construct the concrete type within a few lines of
        // naming the enum variant).
        let mut reachable: std::collections::BTreeMap<&str, std::collections::BTreeSet<String>> =
            MIRRORS
                .iter()
                .map(|(_, m)| (*m, harness_token_set(harness)))
                .collect();
        for file in &ws.files {
            for (_, mirror) in MIRRORS {
                let set = reachable.get_mut(mirror).expect("mirror registered");
                for (idx, line) in file.lines.iter().enumerate() {
                    if !tokens(&line.code).iter().any(|(_, t)| t == mirror) {
                        continue;
                    }
                    for near in file.lines.iter().skip(idx).take(BUILDER_WINDOW) {
                        for (_, t) in tokens(&near.code) {
                            set.insert(t.to_string());
                        }
                    }
                }
            }
        }

        // Forward: every implementor of a mirrored trait is reachable from
        // its mirror enum.
        for file in &ws.files {
            for (idx, line) in file.lines.iter().enumerate() {
                let Some((trait_name, type_name)) = parse_impl(&line.code) else {
                    continue;
                };
                let Some((_, mirror)) = MIRRORS.iter().find(|(t, _)| *t == trait_name) else {
                    continue;
                };
                // Blanket/boxed impls aren't concrete scenario builders.
                if type_name == "Box" {
                    continue;
                }
                if !reachable[mirror].contains(type_name) {
                    findings.push(Finding {
                        rule: self.name(),
                        file: file.rel_path.clone(),
                        line: idx + 1,
                        message: format!(
                            "`{type_name}` implements `{trait_name}` but is not reachable from `{mirror}` in harness.rs"
                        ),
                    });
                }
            }
        }

        // Reverse: every *Choice variant is referenced outside its own
        // enum declaration.
        for (enum_name, variants, body) in choice_enums(harness) {
            for (variant, line) in variants {
                let mut used = false;
                'files: for file in &ws.files {
                    for (idx, l) in file.lines.iter().enumerate() {
                        let in_decl =
                            file.rel_path == harness.rel_path && body.contains(&(idx + 1));
                        if in_decl {
                            continue;
                        }
                        if tokens(&l.code).iter().any(|(_, t)| *t == variant) {
                            used = true;
                            break 'files;
                        }
                    }
                }
                if !used {
                    findings.push(Finding {
                        rule: self.name(),
                        file: harness.rel_path.clone(),
                        line,
                        message: format!(
                            "variant `{enum_name}::{variant}` is never constructed or matched outside its declaration"
                        ),
                    });
                }
            }
        }

        findings
    }
}

/// The full token set of the harness file.
fn harness_token_set(harness: &crate::workspace::SourceFile) -> std::collections::BTreeSet<String> {
    harness
        .lines
        .iter()
        .flat_map(|l| {
            tokens(&l.code)
                .into_iter()
                .map(|(_, t)| t.to_string())
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Parses `impl [<...>] Trait for Type` headers (single-line, which is how
/// rustfmt lays them out), returning the trait's and type's last path
/// segments.
fn parse_impl(code: &str) -> Option<(&str, &str)> {
    let trimmed = code.trim_start();
    if !trimmed.starts_with("impl") {
        return None;
    }
    let toks = tokens(code);
    let for_at = toks.iter().position(|(_, t)| *t == "for")?;
    if for_at == 0 {
        return None;
    }
    // Trait name: last identifier before `for` that isn't a generic
    // parameter or keyword (path segments leave the last one in place).
    let (_, trait_name) = toks[for_at - 1];
    // Type name: first identifier after `for`, skipping `&`, `mut`, `dyn`.
    let (_, type_name) = toks
        .iter()
        .skip(for_at + 1)
        .find(|(_, t)| !matches!(*t, "dyn" | "mut"))?;
    Some((trait_name, type_name))
}

/// The `*Choice` enums of the harness file: `(name, variants, body_lines)`.
type EnumInfo = (
    String,
    Vec<(String, usize)>,
    std::collections::BTreeSet<usize>,
);

fn choice_enums(harness: &crate::workspace::SourceFile) -> Vec<EnumInfo> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < harness.lines.len() {
        let code = &harness.lines[i].code;
        let toks = tokens(code);
        let is_enum = toks
            .windows(2)
            .any(|w| w[0].1 == "enum" && w[1].1.ends_with("Choice"));
        if !is_enum {
            i += 1;
            continue;
        }
        let name = toks
            .iter()
            .zip(toks.iter().skip(1))
            .find(|(a, _)| a.1 == "enum")
            .map(|(_, b)| b.1.to_string())
            .unwrap_or_default();
        // Walk the enum body, brace-balanced.
        let mut depth = 0i32;
        let mut body = std::collections::BTreeSet::new();
        let mut variants = Vec::new();
        let mut j = i;
        loop {
            if j >= harness.lines.len() {
                break;
            }
            let line_code = &harness.lines[j].code;
            body.insert(j + 1);
            if depth == 1 && j > i {
                // A variant line: first token is an uppercase identifier.
                if let Some((pos, tok)) = tokens(line_code).first() {
                    let starts_upper = tok.chars().next().is_some_and(|c| c.is_ascii_uppercase());
                    let at_line_start = line_code[..*pos].trim().is_empty();
                    if starts_upper && at_line_start {
                        variants.push((tok.to_string(), j + 1));
                    }
                }
            }
            for c in line_code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if depth == 0 && j > i {
                break;
            }
            // Opening line might not contain `{` yet (rare); keep going.
            if depth == 0 && !line_code.contains('{') && j == i {
                depth = 0;
            }
            j += 1;
        }
        out.push((name, variants, body));
        i = j + 1;
    }
    out
}
