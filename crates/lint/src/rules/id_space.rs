//! `id-space`: fault/surge id namespaces derive from one manifest and are
//! pairwise disjoint.
//!
//! Generated fault ids must never collide across sources, or composed
//! scenarios silently merge distinct failures into one episode.  The
//! runtime half of this invariant lives in `faults::id_space`'s unit
//! tests; this rule is the static mirror:
//!
//! 1. the manifest (`crates/faults/src/id_space.rs`) declares every
//!    `*_ID_BIT` lane with a distinct bit inside the legal range, and
//!    registers each one in `ID_LANES`;
//! 2. every `*_ID_BASE` constant anywhere else derives from the manifest
//!    (its initializer references `id_space`) rather than hand-rolling a
//!    shift; and
//! 3. no two `*_ID_BASE` constants claim the same manifest lane.

use crate::engine::{Finding, Rule};
use crate::scan::{find_consts, tokens};
use crate::workspace::Workspace;

const MANIFEST_SUFFIX: &str = "faults/src/id_space.rs";
const MIN_BIT: u64 = 32;
const MAX_BIT: u64 = 62;

/// See the module docs.
pub struct IdSpace;

impl Rule for IdSpace {
    fn name(&self) -> &'static str {
        "id-space"
    }

    fn description(&self) -> &'static str {
        "every *_ID_BASE derives from the faults::id_space manifest; lanes are pairwise disjoint"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        let Some(manifest) = ws.file_ending_with(MANIFEST_SUFFIX) else {
            findings.push(Finding {
                rule: self.name(),
                file: format!("crates/{MANIFEST_SUFFIX}"),
                line: 1,
                message: "id-space manifest is missing: declare every id lane in faults::id_space"
                    .into(),
            });
            return findings;
        };

        // 1. Parse the manifest's lane declarations.
        let consts = find_consts(&manifest.lines);
        let mut lanes: Vec<(String, u64, usize)> = Vec::new();
        for c in &consts {
            if !c.name.ends_with("_ID_BIT") {
                continue;
            }
            match parse_int(&c.expr) {
                Some(bit) => lanes.push((c.name.clone(), bit, c.line)),
                None => findings.push(Finding {
                    rule: self.name(),
                    file: manifest.rel_path.clone(),
                    line: c.line,
                    message: format!(
                        "lane `{}` must be a literal bit number, found `{}`",
                        c.name, c.expr
                    ),
                }),
            }
        }
        for (i, (name, bit, line)) in lanes.iter().enumerate() {
            if !(MIN_BIT..=MAX_BIT).contains(bit) {
                findings.push(Finding {
                    rule: self.name(),
                    file: manifest.rel_path.clone(),
                    line: *line,
                    message: format!(
                        "lane `{name}` claims bit {bit} outside the legal range [{MIN_BIT}, {MAX_BIT}]"
                    ),
                });
            }
            for (other, other_bit, _) in &lanes[..i] {
                if bit == other_bit {
                    findings.push(Finding {
                        rule: self.name(),
                        file: manifest.rel_path.clone(),
                        line: *line,
                        message: format!(
                            "lane `{name}` reuses bit {bit} already claimed by `{other}` — lanes must be pairwise disjoint"
                        ),
                    });
                }
            }
        }

        // 2. Every lane must be registered in the ID_LANES table.
        let registry = registry_block(manifest);
        for (name, _, line) in &lanes {
            if !registry.contains(name.as_str()) {
                findings.push(Finding {
                    rule: self.name(),
                    file: manifest.rel_path.clone(),
                    line: *line,
                    message: format!("lane `{name}` is not registered in ID_LANES"),
                });
            }
        }

        // 3. Every *_ID_BASE constant outside the manifest derives from the
        // manifest, and no two claim the same lane.
        let mut claimed: Vec<(String, String, usize, String)> = Vec::new(); // (lane, file, line, const)
        for file in &ws.files {
            if file.rel_path.ends_with(MANIFEST_SUFFIX) {
                continue;
            }
            for c in find_consts(&file.lines) {
                if !c.name.ends_with("_ID_BASE") {
                    continue;
                }
                let expr_tokens: Vec<&str> = tokens(&c.expr).into_iter().map(|(_, t)| t).collect();
                if !expr_tokens.contains(&"id_space") {
                    findings.push(Finding {
                        rule: self.name(),
                        file: file.rel_path.clone(),
                        line: c.line,
                        message: format!(
                            "`{}` must derive from the faults::id_space manifest (found `{}`)",
                            c.name, c.expr
                        ),
                    });
                    continue;
                }
                for tok in expr_tokens {
                    if tok.ends_with("_ID_BIT") {
                        if let Some((lane, other_file, other_line, other_const)) =
                            claimed.iter().find(|(lane, ..)| lane == tok)
                        {
                            findings.push(Finding {
                                rule: self.name(),
                                file: file.rel_path.clone(),
                                line: c.line,
                                message: format!(
                                    "`{}` claims lane `{lane}` already taken by `{other_const}` at {other_file}:{other_line}",
                                    c.name
                                ),
                            });
                        } else {
                            claimed.push((
                                tok.to_string(),
                                file.rel_path.clone(),
                                c.line,
                                c.name.clone(),
                            ));
                        }
                    }
                }
            }
        }

        findings
    }
}

/// The token set of the manifest's `ID_LANES` initializer block.
fn registry_block(manifest: &crate::workspace::SourceFile) -> std::collections::BTreeSet<String> {
    let mut set = std::collections::BTreeSet::new();
    let mut in_block = false;
    for line in &manifest.lines {
        let mut code = line.code.as_str();
        if !in_block {
            // Enter at the initializer's `&[`, past the declaration's type
            // (which itself contains brackets).
            let Some(at) = code.find("ID_LANES") else {
                continue;
            };
            let Some(open) = code[at..].find("&[") else {
                in_block = true;
                continue;
            };
            code = &code[at + open..];
            in_block = true;
        }
        let closed = code.contains("];");
        let body = match code.find("];") {
            Some(end) => &code[..end],
            None => code,
        };
        for (_, tok) in tokens(body) {
            set.insert(tok.to_string());
        }
        if closed {
            break;
        }
    }
    set
}

fn parse_int(expr: &str) -> Option<u64> {
    let cleaned: String = expr.chars().filter(|c| *c != '_').collect();
    cleaned.trim().parse().ok()
}
