//! `seed-discipline`: child seeds come from `SeedStream`/`split_seed`,
//! never from ad-hoc arithmetic.
//!
//! Deriving per-replica or per-entity seeds by hand (`base_seed + i`,
//! `seed * replica`) produces correlated streams: adjacent entities get
//! adjacent raw seeds, and any generator weakness shows up as lockstep
//! behaviour across the fleet.  `sim::seeds` exists precisely to avalanche
//! such derivations, so every seed-shaped value combined arithmetically
//! with another *expression* is a finding.  Two escapes:
//!
//! * combining a seed with a **literal** (`seed ^ 0x9E37_79B9`) is a
//!   whitening mask, not a derivation, and is exempt;
//! * `sim/src/seeds.rs` itself is the blessed primitive and is not
//!   scanned.
//!
//! A historical derivation pinned by committed baselines annotates
//! `lint:allow(seed-discipline)` at the site.

use crate::engine::{Finding, Rule};
use crate::scan::{ident_ending_before, is_ident_char, tokens};
use crate::workspace::Workspace;

/// The blessed implementation of seed splitting.
const BLESSED_SUFFIX: &str = "sim/src/seeds.rs";

const OPS: &[char] = &['+', '-', '*', '^', '%'];

/// See the module docs.
pub struct SeedDiscipline;

impl Rule for SeedDiscipline {
    fn name(&self) -> &'static str {
        "seed-discipline"
    }

    fn description(&self) -> &'static str {
        "seeds are split via SeedStream/split_seed, not derived by raw arithmetic"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        for file in &ws.files {
            if file.rel_path.ends_with(BLESSED_SUFFIX) {
                continue;
            }
            for (idx, line) in file.lines.iter().enumerate() {
                let code = &line.code;
                for (pos, tok) in tokens(code) {
                    if !tok.to_ascii_lowercase().ends_with("seed") {
                        continue;
                    }
                    if tok.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                        continue;
                    }
                    if arithmetic_after(code, pos + tok.len()) || arithmetic_before(code, pos) {
                        findings.push(Finding {
                            rule: self.name(),
                            file: file.rel_path.clone(),
                            line: idx + 1,
                            message: format!(
                                "`{tok}` is combined arithmetically — derive child seeds with SeedStream/split_seed (literal masks are exempt)"
                            ),
                        });
                        break; // one finding per line is enough
                    }
                }
            }
        }
        findings
    }
}

/// Whether the seed token at `..end` is followed by an arithmetic operator
/// whose right operand is not a literal.
fn arithmetic_after(code: &str, end: usize) -> bool {
    let rest = code[end..].trim_start();
    let mut chars = rest.chars();
    let Some(op) = chars.next() else { return false };
    if !OPS.contains(&op) {
        return false;
    }
    let mut operand = chars.as_str();
    // `->` is an arrow, `-=`/`+=` etc. are compound assignments whose
    // operand follows the `=`.
    if let Some(next) = operand.chars().next() {
        if op == '-' && next == '>' {
            return false;
        }
        if next == '=' {
            operand = &operand[1..];
        }
    }
    let operand = operand.trim_start().trim_start_matches(['&', '(', ' ']);
    match operand.chars().next() {
        Some(c) if c.is_ascii_digit() => false, // literal mask: exempt
        Some(c) if is_ident_char(c) => true,
        _ => false,
    }
}

/// Whether the seed token at `pos..` is preceded by a binary arithmetic
/// operator whose left operand is not a literal.
fn arithmetic_before(code: &str, pos: usize) -> bool {
    let pre = code[..pos].trim_end();
    let Some(op) = pre.chars().last() else {
        return false;
    };
    if !OPS.contains(&op) {
        return false;
    }
    let before_op = pre[..pre.len() - op.len_utf8()].trim_end();
    // Distinguish binary use from unary minus / deref: binary needs a value
    // (identifier, literal, or close-paren) on the left.
    let Some(left) = before_op.chars().last() else {
        return false;
    };
    if !(is_ident_char(left) || left == ')') {
        return false;
    }
    match ident_ending_before(before_op, before_op.len()) {
        Some(tok) => !tok.chars().next().is_some_and(|c| c.is_ascii_digit()),
        None => true, // `)` — a parenthesised expression operand
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_masks_pass_but_expressions_fail() {
        assert!(!arithmetic_after("seed ^ 0x9E37_79B9", 4));
        assert!(arithmetic_after("seed ^ replica", 4));
        assert!(arithmetic_after("seed + (i as u64)", 4));
        assert!(!arithmetic_after("seed)", 4));
        assert!(!arithmetic_after("seed -> u64", 4));
        let code = "base + seed";
        assert!(arithmetic_before(code, code.len() - 4));
        let lit = "3 + seed";
        assert!(!arithmetic_before(lit, lit.len() - 4));
        let unary = "= -seed";
        assert!(!arithmetic_before(unary, unary.len() - 4));
    }
}
