//! `nondeterminism`: no wall clocks or hash-order iteration in the
//! deterministic core.
//!
//! The house invariant — fingerprint equality across worker counts and
//! byte-identical replay — only holds if the simulation core never reads
//! ambient entropy.  Two sources have bitten before:
//!
//! * **wall clocks** (`SystemTime`, `Instant`, `thread::current`): any
//!   value derived from them differs run to run.  Timing-only metrics in
//!   the measurement and serving crates (`bench`, `telemetry`, `daemon`,
//!   `gateway`) are fine and those crates are not scanned — the gateway is
//!   I/O glue over real sockets (read timeouts, stream pacing, audit
//!   timestamps), none of which feeds a fingerprint; a wall-clock *metric*
//!   inside a scanned crate annotates `lint:allow(nondeterminism)` at the
//!   use site.
//! * **hash-map iteration**: `std`'s `RandomState` seeds differently per
//!   map instance, so `HashMap`/`HashSet` iteration order — and anything
//!   folded from it, like a float sum — is nondeterministic.  Lookups are
//!   fine; iteration is not.  The fix is `BTreeMap`/`BTreeSet`, or
//!   collecting and sorting before the fold.

use crate::engine::{Finding, Rule};
use crate::scan::{ident_ending_before, tokens};
use crate::workspace::{SourceFile, Workspace};
use std::collections::BTreeSet;

/// Crates whose output feeds fingerprints and replay.  `daemon` and
/// `gateway` stay off this list deliberately: both are wall-clock I/O
/// layers (socket timeouts, metrics cadence, audit timestamps) around the
/// deterministic fleets, and the determinism they must preserve — a
/// single-replica tenant reproducing a standalone fleet bit-for-bit — is
/// pinned by `tests/tenants.rs` instead.
const DETERMINISTIC_CRATES: &[&str] = &["core", "faults", "fleet", "learn", "sim", "workload"];

/// Method calls whose visit order follows the map's internal order.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
    ".retain(",
];

/// See the module docs.
pub struct Nondeterminism;

impl Rule for Nondeterminism {
    fn name(&self) -> &'static str {
        "nondeterminism"
    }

    fn description(&self) -> &'static str {
        "no wall clocks or HashMap/HashSet iteration in the deterministic crates"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let scanned: Vec<&SourceFile> = ws
            .files
            .iter()
            .filter(|f| {
                f.crate_name
                    .as_deref()
                    .is_some_and(|c| DETERMINISTIC_CRATES.contains(&c))
            })
            .collect();

        // Functions returning hash maps are visible across files; local
        // bindings only shadow within their own file.
        let global_fns = hash_named(&scanned, NameKind::FnReturn);

        let mut findings = Vec::new();
        for file in &scanned {
            let local = hash_named(&[file], NameKind::Binding);
            for (idx, line) in file.lines.iter().enumerate() {
                let code = &line.code;
                let toks = tokens(code);

                // Wall clocks.
                for (_, tok) in &toks {
                    if matches!(*tok, "SystemTime" | "Instant") {
                        findings.push(Finding {
                            rule: self.name(),
                            file: file.rel_path.clone(),
                            line: idx + 1,
                            message: format!(
                                "`{tok}` reads the wall clock — deterministic crates must only see simulated time"
                            ),
                        });
                    }
                }
                if toks
                    .windows(2)
                    .any(|w| w[0].1 == "thread" && w[1].1 == "current")
                {
                    findings.push(Finding {
                        rule: self.name(),
                        file: file.rel_path.clone(),
                        line: idx + 1,
                        message: "`thread::current` is scheduler-dependent — derive identity from replica ids".into(),
                    });
                }

                // Hash-order iteration: `receiver.iter()` forms.
                for method in ITER_METHODS {
                    let mut from = 0;
                    while let Some(at) = code[from..].find(method) {
                        let pos = from + at;
                        if let Some(recv) = ident_ending_before(code, pos) {
                            if local.contains(recv) || global_fns.contains(recv) {
                                findings.push(Finding {
                                    rule: self.name(),
                                    file: file.rel_path.clone(),
                                    line: idx + 1,
                                    message: format!(
                                        "`{recv}{method}` iterates a HashMap/HashSet — order is nondeterministic; use a BTree map or sort first"
                                    ),
                                });
                            }
                        }
                        from = pos + method.len();
                    }
                }

                // Hash-order iteration: `for x in map` heads.
                if toks.first().is_some_and(|(_, t)| *t == "for") {
                    if let Some(in_at) = toks.iter().position(|(_, t)| *t == "in") {
                        if let Some((head_pos, head)) =
                            toks.iter().skip(in_at + 1).find(|(_, t)| *t != "mut")
                        {
                            // Only a bare `for x in map` head: a following
                            // `.method()` was already handled above, and
                            // range heads like `0..n` are not identifiers.
                            let after = code[head_pos + head.len()..].trim_start();
                            let bare = !after.starts_with('.');
                            if bare && (local.contains(*head) || global_fns.contains(*head)) {
                                findings.push(Finding {
                                    rule: self.name(),
                                    file: file.rel_path.clone(),
                                    line: idx + 1,
                                    message: format!(
                                        "`for .. in {head}` iterates a HashMap/HashSet — order is nondeterministic; use a BTree map or sort first"
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
        findings
    }
}

enum NameKind {
    /// `name: HashMap<..>` fields/params and `name = HashMap::new()` lets.
    Binding,
    /// `fn name(..) -> HashMap<..>` return positions.
    FnReturn,
}

/// Names bound to hash-ordered collections in `files`.
fn hash_named(files: &[&SourceFile], kind: NameKind) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for file in files {
        for line in &file.lines {
            let code = &line.code;
            for (pos, tok) in tokens(code) {
                if !matches!(tok, "HashMap" | "HashSet") {
                    continue;
                }
                let pre = code[..pos].trim_end();
                match kind {
                    NameKind::Binding => {
                        let target = if let Some(stripped) = pre.strip_suffix(':') {
                            Some(stripped)
                        } else {
                            pre.strip_suffix('=')
                                .filter(|p| !p.ends_with(['=', '<', '>', '!']))
                        };
                        if let Some(before) = target {
                            if let Some(name) = ident_ending_before(before, before.len()) {
                                if name != "mut" {
                                    names.insert(name.to_string());
                                }
                            }
                        }
                    }
                    NameKind::FnReturn => {
                        if pre.ends_with("->") {
                            let toks = tokens(code);
                            if let Some(fn_at) = toks.iter().position(|(_, t)| *t == "fn") {
                                if let Some((_, name)) = toks.get(fn_at + 1) {
                                    names.insert(name.to_string());
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    names
}
