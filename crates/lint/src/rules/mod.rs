//! The shipped rules — each one a cross-file determinism invariant.

mod barrier_period;
mod choice_mirror;
mod id_space;
mod nondeterminism;
mod seed_discipline;

pub use barrier_period::BarrierPeriod;
pub use choice_mirror::ChoiceMirror;
pub use id_space::IdSpace;
pub use nondeterminism::Nondeterminism;
pub use seed_discipline::SeedDiscipline;

use crate::engine::Rule;

/// Every shipped rule, in documentation order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(IdSpace),
        Box::new(ChoiceMirror),
        Box::new(Nondeterminism),
        Box::new(SeedDiscipline),
        Box::new(BarrierPeriod),
    ]
}
