//! `selfheal-lint` — the workspace determinism auditor.
//!
//! ```text
//! cargo run -p selfheal-lint -- --workspace            # audit, human output
//! cargo run -p selfheal-lint -- --workspace --json     # machine-readable
//! cargo run -p selfheal-lint -- --rule nondeterminism  # one rule only
//! cargo run -p selfheal-lint -- --list-rules
//! ```
//!
//! Exit status: `0` clean, `1` findings, `2` usage or I/O error.

use selfheal_lint::rules::all_rules;
use selfheal_lint::{run_rules, to_json, Workspace};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    root: Option<PathBuf>,
    json: bool,
    list: bool,
    rules: Vec<String>,
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("selfheal-lint: {msg}");
            eprintln!("usage: selfheal-lint [--workspace] [--root PATH] [--json] [--rule NAME]... [--list-rules]");
            return ExitCode::from(2);
        }
    };

    let mut rules = all_rules();
    if opts.list {
        for rule in &rules {
            println!("{:<16} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }
    if !opts.rules.is_empty() {
        let known: Vec<&str> = rules.iter().map(|r| r.name()).collect();
        for want in &opts.rules {
            if !known.contains(&want.as_str()) {
                eprintln!(
                    "selfheal-lint: unknown rule `{want}` (known: {})",
                    known.join(", ")
                );
                return ExitCode::from(2);
            }
        }
        rules.retain(|r| opts.rules.iter().any(|w| w == r.name()));
    }

    let root = match opts.root.map_or_else(discover_root, Ok) {
        Ok(root) => root,
        Err(msg) => {
            eprintln!("selfheal-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(err) => {
            eprintln!("selfheal-lint: cannot scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    let findings = run_rules(&ws, &rules);
    if opts.json {
        println!("{}", to_json(&findings));
    } else {
        for finding in &findings {
            println!("{finding}");
        }
        eprintln!(
            "selfheal-lint: {} file(s), {} rule(s), {} finding(s)",
            ws.files.len(),
            rules.len(),
            findings.len()
        );
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        json: false,
        list: false,
        rules: Vec::new(),
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // `--workspace` is the default (and only) scope; accepted for
            // self-documenting invocations.
            "--workspace" => {}
            "--json" => opts.json = true,
            "--list-rules" => opts.list = true,
            "--root" => {
                let path = args.next().ok_or("--root needs a path")?;
                opts.root = Some(PathBuf::from(path));
            }
            "--rule" => {
                let name = args.next().ok_or("--rule needs a name")?;
                opts.rules.push(name);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Walks up from the current directory to the workspace root (the first
/// `Cargo.toml` declaring `[workspace]`).
fn discover_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir.to_path_buf());
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no workspace Cargo.toml above {} — pass --root",
                    start.display()
                ))
            }
        }
    }
}
