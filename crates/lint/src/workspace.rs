//! Workspace discovery: walking the source tree into scanned files.

use crate::scan::{strip_source, Line};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One scanned `.rs` file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// The owning workspace crate (`crates/<name>/...`), if any; root-level
    /// `src/`, `tests/`, and `examples/` files belong to the umbrella crate
    /// and carry `None`.
    pub crate_name: Option<String>,
    /// Stripped lines (see [`crate::scan`]).
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Whether `rule` is allowed on 1-based line `line`.
    pub fn allows(&self, rule: &str, line: usize) -> bool {
        self.lines
            .get(line.wrapping_sub(1))
            .is_some_and(|l| l.allows.iter().any(|a| a == rule))
    }
}

/// Every scanned file of one workspace tree.
#[derive(Debug)]
pub struct Workspace {
    /// The root the walk started from.
    pub root: PathBuf,
    /// Scanned files, sorted by relative path.
    pub files: Vec<SourceFile>,
}

/// Directories never scanned: build output, VCS metadata, the offline
/// registry shims (vendored stand-ins, not our code), and the linter's own
/// fixture trees (which *deliberately* violate every rule).
const SKIP_DIRS: &[&str] = &["target", ".git", "node_modules"];
const SKIP_PREFIXES: &[&str] = &["crates/shims", "crates/lint/fixtures"];

impl Workspace {
    /// Walks `root` and scans every `.rs` file outside the skip lists.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        let mut stack = vec![root.to_path_buf()];
        while let Some(dir) = stack.pop() {
            let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .collect();
            entries.sort();
            for path in entries {
                let rel = rel_path(root, &path);
                if path.is_dir() {
                    let name = path
                        .file_name()
                        .and_then(|n| n.to_str())
                        .unwrap_or_default();
                    if SKIP_DIRS.contains(&name)
                        || SKIP_PREFIXES
                            .iter()
                            .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
                    {
                        continue;
                    }
                    stack.push(path);
                } else if path.extension().is_some_and(|e| e == "rs") {
                    let text = fs::read_to_string(&path)?;
                    files.push(SourceFile {
                        crate_name: crate_of(&rel),
                        rel_path: rel,
                        lines: strip_source(&text),
                    });
                }
            }
        }
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// The first file whose relative path ends with `suffix`.
    pub fn file_ending_with(&self, suffix: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path.ends_with(suffix))
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn crate_of(rel: &str) -> Option<String> {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        parts.next().map(|s| s.to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_attribution_follows_the_path() {
        assert_eq!(crate_of("crates/sim/src/scenario.rs"), Some("sim".into()));
        assert_eq!(crate_of("tests/fleet.rs"), None);
        assert_eq!(crate_of("src/lib.rs"), None);
    }
}
