//! Runtime state of active faults and their effects on the service.
//!
//! The injection plan says *when* faults activate; this module tracks which
//! faults are currently active, ages them (some effects grow over time, e.g.
//! software aging), and answers the service's per-tick questions: how much
//! capacity does each tier lose, which EJBs are throwing, which tables have
//! bad plans, and so on.

use selfheal_faults::{FaultId, FaultKind, FaultSpec, FaultTarget, FixAction, FixCatalog};
use serde::{Deserialize, Serialize};

/// The three physical tiers of the simulated service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimTier {
    /// Web / servlet tier.
    Web,
    /// Application (EJB) tier.
    App,
    /// Database tier.
    Db,
}

impl SimTier {
    /// All tiers.
    pub const ALL: [SimTier; 3] = [SimTier::Web, SimTier::App, SimTier::Db];

    /// Maps a fault target to the tier it affects (whole-service targets
    /// return `None`).
    pub fn of_target(target: &FaultTarget) -> Option<SimTier> {
        match target {
            FaultTarget::WebTier => Some(SimTier::Web),
            FaultTarget::Ejb { .. } | FaultTarget::AppTier => Some(SimTier::App),
            FaultTarget::Table { .. } | FaultTarget::Index { .. } | FaultTarget::DatabaseTier => {
                Some(SimTier::Db)
            }
            FaultTarget::WholeService => None,
        }
    }
}

/// One active fault instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActiveFault {
    /// The injected specification.
    pub spec: FaultSpec,
    /// Tick at which the fault became active.
    pub activated_at: u64,
    /// Ticks the fault has been active.
    pub age: u64,
}

/// The set of currently active faults.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ActiveFaults {
    faults: Vec<ActiveFault>,
}

impl ActiveFaults {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of active faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Returns `true` if no faults are active.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// All active faults.
    pub fn iter(&self) -> impl Iterator<Item = &ActiveFault> {
        self.faults.iter()
    }

    /// Activates a fault at `tick` (idempotent per fault id).
    pub fn activate(&mut self, spec: FaultSpec, tick: u64) {
        if self.faults.iter().any(|f| f.spec.id == spec.id) {
            return;
        }
        self.faults.push(ActiveFault {
            spec,
            activated_at: tick,
            age: 0,
        });
    }

    /// Ages every active fault by one tick.
    pub fn advance_tick(&mut self) {
        for f in &mut self.faults {
            f.age += 1;
        }
    }

    /// Removes the faults that `fix` repairs according to the ground-truth
    /// `catalog`, returning the removed fault ids.
    pub fn resolve_with_fix(&mut self, fix: &FixAction, catalog: &FixCatalog) -> Vec<FaultId> {
        let mut removed = Vec::new();
        self.faults.retain(|f| {
            if catalog.repairs(&f.spec, fix) {
                removed.push(f.spec.id);
                false
            } else {
                true
            }
        });
        removed
    }

    /// Removes every active fault (used by tests and by scenario resets).
    pub fn clear(&mut self) -> Vec<FaultId> {
        let removed = self.faults.iter().map(|f| f.spec.id).collect();
        self.faults.clear();
        removed
    }

    /// The capacity factor (≤ 1.0) that active faults impose on a tier this
    /// tick.  Several faults multiply together.
    pub fn capacity_factor(&self, tier: SimTier) -> f64 {
        let mut factor = 1.0;
        for f in &self.faults {
            let s = f.spec.severity;
            let target_tier = SimTier::of_target(&f.spec.target);
            let hits_tier = target_tier == Some(tier);
            match f.spec.kind {
                FaultKind::BottleneckedTier if hits_tier => factor *= 1.0 - 0.9 * s,
                FaultKind::HardwareFailure if hits_tier => factor *= 1.0 - 0.7 * s,
                FaultKind::OperatorMisconfiguration if hits_tier => factor *= 1.0 - 0.6 * s,
                FaultKind::SoftwareAging
                    if tier == SimTier::App && matches!(target_tier, Some(SimTier::App)) =>
                {
                    // Leaks accumulate: the capacity loss grows with age and
                    // saturates after ~120 ticks.
                    let growth = (f.age as f64 / 120.0).min(1.0);
                    factor *= 1.0 - 0.8 * s * growth;
                }
                FaultKind::DeadlockedThreads if tier == SimTier::App && hits_tier => {
                    // Stuck threads occupy part of the thread pool.
                    factor *= 1.0 - 0.4 * s;
                }
                _ => {}
            }
        }
        factor.clamp(0.02, 1.0)
    }

    /// Probability that a request *touching the given EJB* fails outright
    /// this tick due to application-tier faults.
    pub fn ejb_error_probability(&self, ejb: usize) -> f64 {
        let mut p_ok = 1.0;
        for f in &self.faults {
            let s = f.spec.severity;
            let hits = matches!(f.spec.target, FaultTarget::Ejb { index } if index == ejb)
                || matches!(f.spec.target, FaultTarget::AppTier);
            if !hits {
                continue;
            }
            let p = match f.spec.kind {
                FaultKind::UnhandledException => 0.6 * s,
                FaultKind::SourceCodeBug => 0.35 * s,
                FaultKind::DeadlockedThreads => 0.5 * s,
                _ => 0.0,
            };
            p_ok *= 1.0 - p.clamp(0.0, 1.0);
        }
        1.0 - p_ok
    }

    /// Extra latency (ms) added to a request touching the given EJB
    /// (deadlocked threads stall requests until timeouts fire).
    pub fn ejb_extra_latency_ms(&self, ejb: usize) -> f64 {
        self.faults
            .iter()
            .filter(|f| {
                f.spec.kind == FaultKind::DeadlockedThreads
                    && matches!(f.spec.target, FaultTarget::Ejb { index } if index == ejb)
            })
            .map(|f| 400.0 * f.spec.severity)
            .sum()
    }

    /// Probability that any request fails this tick due to whole-service
    /// faults (network partitions, operator procedural errors).
    pub fn service_error_probability(&self) -> f64 {
        let mut p_ok = 1.0;
        for f in &self.faults {
            let s = f.spec.severity;
            let p = match f.spec.kind {
                FaultKind::NetworkPartition => 0.6 * s,
                FaultKind::OperatorProceduralError
                    if f.spec.target == FaultTarget::WholeService =>
                {
                    0.4 * s
                }
                _ => 0.0,
            };
            p_ok *= 1.0 - p.clamp(0.0, 1.0);
        }
        1.0 - p_ok
    }

    /// Returns `true` if an injected suboptimal-plan fault is active for the
    /// table.
    pub fn plan_fault(&self, table: usize) -> bool {
        self.faults.iter().any(|f| {
            f.spec.kind == FaultKind::SuboptimalQueryPlan
                && matches!(f.spec.target, FaultTarget::Table { index } if index == table)
        })
    }

    /// Returns `true` if an injected block-contention fault is active for
    /// the table.
    pub fn contention_fault(&self, table: usize) -> bool {
        self.faults.iter().any(|f| {
            f.spec.kind == FaultKind::TableBlockContention
                && matches!(f.spec.target, FaultTarget::Table { index } if index == table)
        })
    }

    /// The severity of an active buffer-contention fault, if any (also
    /// triggered when an operator misconfiguration targets the database
    /// tier, since a botched buffer resize manifests the same way).
    pub fn buffer_fault_severity(&self) -> Option<f64> {
        self.faults
            .iter()
            .filter(|f| {
                f.spec.kind == FaultKind::BufferContention
                    || (f.spec.kind == FaultKind::OperatorMisconfiguration
                        && SimTier::of_target(&f.spec.target) == Some(SimTier::Db))
            })
            .map(|f| f.spec.severity)
            .fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.max(s))))
    }

    /// Extra whole-service latency (ms) per request from network trouble.
    pub fn network_extra_latency_ms(&self) -> f64 {
        self.faults
            .iter()
            .filter(|f| f.spec.kind == FaultKind::NetworkPartition)
            .map(|f| 150.0 * f.spec.severity)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_faults::FixKind;

    fn spec(id: u64, kind: FaultKind, target: FaultTarget, severity: f64) -> FaultSpec {
        FaultSpec::new(FaultId(id), kind, target, severity)
    }

    #[test]
    fn activation_is_idempotent_per_fault_id() {
        let mut af = ActiveFaults::new();
        let f = spec(
            1,
            FaultKind::BufferContention,
            FaultTarget::DatabaseTier,
            0.8,
        );
        af.activate(f.clone(), 10);
        af.activate(f, 12);
        assert_eq!(af.len(), 1);
        assert!(!af.is_empty());
    }

    #[test]
    fn bottleneck_reduces_only_the_targeted_tier() {
        let mut af = ActiveFaults::new();
        af.activate(
            spec(
                1,
                FaultKind::BottleneckedTier,
                FaultTarget::DatabaseTier,
                1.0,
            ),
            0,
        );
        assert!(af.capacity_factor(SimTier::Db) < 0.2);
        assert_eq!(af.capacity_factor(SimTier::Web), 1.0);
        assert_eq!(af.capacity_factor(SimTier::App), 1.0);
    }

    #[test]
    fn software_aging_degrades_gradually() {
        let mut af = ActiveFaults::new();
        af.activate(
            spec(1, FaultKind::SoftwareAging, FaultTarget::AppTier, 1.0),
            0,
        );
        let fresh = af.capacity_factor(SimTier::App);
        for _ in 0..60 {
            af.advance_tick();
        }
        let aged = af.capacity_factor(SimTier::App);
        for _ in 0..200 {
            af.advance_tick();
        }
        let old = af.capacity_factor(SimTier::App);
        assert!(fresh > aged, "fresh {fresh} should exceed aged {aged}");
        assert!(aged > old, "aged {aged} should exceed old {old}");
        assert!(old >= 0.02);
    }

    #[test]
    fn ejb_faults_hit_only_their_component() {
        let mut af = ActiveFaults::new();
        af.activate(
            spec(
                1,
                FaultKind::UnhandledException,
                FaultTarget::Ejb { index: 2 },
                1.0,
            ),
            0,
        );
        assert!(af.ejb_error_probability(2) > 0.5);
        assert_eq!(af.ejb_error_probability(3), 0.0);
        af.activate(
            spec(
                2,
                FaultKind::DeadlockedThreads,
                FaultTarget::Ejb { index: 3 },
                1.0,
            ),
            0,
        );
        assert!(af.ejb_extra_latency_ms(3) > 100.0);
        assert_eq!(af.ejb_extra_latency_ms(2), 0.0);
    }

    #[test]
    fn table_faults_are_reported_per_table() {
        let mut af = ActiveFaults::new();
        af.activate(
            spec(
                1,
                FaultKind::SuboptimalQueryPlan,
                FaultTarget::Table { index: 1 },
                0.9,
            ),
            0,
        );
        af.activate(
            spec(
                2,
                FaultKind::TableBlockContention,
                FaultTarget::Table { index: 0 },
                0.9,
            ),
            0,
        );
        assert!(af.plan_fault(1));
        assert!(!af.plan_fault(0));
        assert!(af.contention_fault(0));
        assert!(!af.contention_fault(1));
    }

    #[test]
    fn buffer_fault_severity_takes_the_worst_offender() {
        let mut af = ActiveFaults::new();
        assert!(af.buffer_fault_severity().is_none());
        af.activate(
            spec(
                1,
                FaultKind::BufferContention,
                FaultTarget::DatabaseTier,
                0.5,
            ),
            0,
        );
        af.activate(
            spec(
                2,
                FaultKind::OperatorMisconfiguration,
                FaultTarget::DatabaseTier,
                0.9,
            ),
            0,
        );
        assert_eq!(af.buffer_fault_severity(), Some(0.9));
    }

    #[test]
    fn whole_service_faults_raise_global_error_probability_and_latency() {
        let mut af = ActiveFaults::new();
        assert_eq!(af.service_error_probability(), 0.0);
        af.activate(
            spec(
                1,
                FaultKind::NetworkPartition,
                FaultTarget::WholeService,
                1.0,
            ),
            0,
        );
        assert!(af.service_error_probability() > 0.5);
        assert!(af.network_extra_latency_ms() > 100.0);
    }

    #[test]
    fn resolve_with_fix_removes_only_repaired_faults() {
        let catalog = FixCatalog::standard();
        let mut af = ActiveFaults::new();
        af.activate(
            spec(
                1,
                FaultKind::DeadlockedThreads,
                FaultTarget::Ejb { index: 1 },
                0.9,
            ),
            0,
        );
        af.activate(
            spec(
                2,
                FaultKind::BufferContention,
                FaultTarget::DatabaseTier,
                0.9,
            ),
            0,
        );

        let wrong_target =
            FixAction::targeted(FixKind::MicrorebootEjb, FaultTarget::Ejb { index: 0 });
        assert!(af.resolve_with_fix(&wrong_target, &catalog).is_empty());
        assert_eq!(af.len(), 2);

        let right_target =
            FixAction::targeted(FixKind::MicrorebootEjb, FaultTarget::Ejb { index: 1 });
        let removed = af.resolve_with_fix(&right_target, &catalog);
        assert_eq!(removed, vec![FaultId(1)]);
        assert_eq!(af.len(), 1);

        let restart = FixAction::untargeted(FixKind::FullServiceRestart);
        assert_eq!(af.resolve_with_fix(&restart, &catalog).len(), 1);
        assert!(af.is_empty());
    }

    #[test]
    fn clear_removes_everything() {
        let mut af = ActiveFaults::new();
        af.activate(
            spec(
                1,
                FaultKind::SourceCodeBug,
                FaultTarget::Ejb { index: 0 },
                0.5,
            ),
            0,
        );
        assert_eq!(af.clear().len(), 1);
        assert!(af.is_empty());
    }
}
