//! Failure-episode and recovery-time accounting.
//!
//! Figure 2 of the paper compares how long the three surveyed services took
//! to recover from failures of each cause category.  The scenario runner
//! opens a [`FailureEpisode`] when an SLO violation is confirmed, records
//! every fix attempted during the episode, and closes it when the service is
//! compliant again; the episode log is then aggregated per cause or per
//! fault kind by the benchmarks.

use selfheal_faults::{FailureCause, FaultKind, FixAction};
use serde::{Deserialize, Serialize};

/// One contiguous period of SLO violation and the recovery that ended it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureEpisode {
    /// Tick at which the violation was confirmed (detection time).
    pub detected_at: u64,
    /// Tick at which the service was compliant again, if it recovered.
    pub recovered_at: Option<u64>,
    /// The kinds of the faults active when the episode was detected
    /// (ground truth used only for scoring).
    pub fault_kinds: Vec<FaultKind>,
    /// The cause categories of those faults.
    pub causes: Vec<FailureCause>,
    /// Fixes attempted during the episode, in order.
    pub fixes_attempted: Vec<FixAction>,
    /// Whether the episode ended in an escalation (full restart or operator
    /// notification).
    pub escalated: bool,
}

impl FailureEpisode {
    /// Recovery time in ticks, if the episode has closed.
    pub fn recovery_ticks(&self) -> Option<u64> {
        self.recovered_at
            .map(|r| r.saturating_sub(self.detected_at))
    }

    /// The primary (first) cause recorded for the episode, defaulting to
    /// `Unknown` when no fault was active at detection time (e.g. a pure
    /// overload episode).
    pub fn primary_cause(&self) -> FailureCause {
        self.causes
            .first()
            .copied()
            .unwrap_or(FailureCause::Unknown)
    }

    /// The primary (first) fault kind recorded, if any.
    pub fn primary_fault(&self) -> Option<FaultKind> {
        self.fault_kinds.first().copied()
    }
}

/// The log of all failure episodes in a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryLog {
    episodes: Vec<FailureEpisode>,
    open: Option<FailureEpisode>,
}

impl RecoveryLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if an episode is currently open.
    pub fn in_episode(&self) -> bool {
        self.open.is_some()
    }

    /// Opens an episode at `tick` with the given ground-truth faults
    /// (ignored if an episode is already open).
    pub fn open_episode(
        &mut self,
        tick: u64,
        fault_kinds: Vec<FaultKind>,
        causes: Vec<FailureCause>,
    ) {
        if self.open.is_some() {
            return;
        }
        self.open = Some(FailureEpisode {
            detected_at: tick,
            recovered_at: None,
            fault_kinds,
            causes,
            fixes_attempted: Vec::new(),
            escalated: false,
        });
    }

    /// Records a fix attempted during the current episode (no-op when no
    /// episode is open).
    pub fn record_fix(&mut self, action: FixAction) {
        if let Some(ep) = &mut self.open {
            if action.kind.is_escalation() {
                ep.escalated = true;
            }
            ep.fixes_attempted.push(action);
        }
    }

    /// Closes the current episode at `tick` (no-op when none is open).
    pub fn close_episode(&mut self, tick: u64) {
        if let Some(mut ep) = self.open.take() {
            ep.recovered_at = Some(tick);
            self.episodes.push(ep);
        }
    }

    /// Abandons the run: any open episode is recorded as never recovered.
    pub fn finish(&mut self) {
        if let Some(ep) = self.open.take() {
            self.episodes.push(ep);
        }
    }

    /// All recorded episodes (closed ones plus, after [`RecoveryLog::finish`],
    /// any unrecovered one).
    pub fn episodes(&self) -> &[FailureEpisode] {
        &self.episodes
    }

    /// Number of recorded episodes.
    pub fn len(&self) -> usize {
        self.episodes.len()
    }

    /// Returns `true` if no episodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    /// Mean recovery time (ticks) over recovered episodes, `None` when no
    /// episode recovered.
    pub fn mean_recovery_ticks(&self) -> Option<f64> {
        let recovered: Vec<u64> = self
            .episodes
            .iter()
            .filter_map(FailureEpisode::recovery_ticks)
            .collect();
        if recovered.is_empty() {
            None
        } else {
            Some(recovered.iter().sum::<u64>() as f64 / recovered.len() as f64)
        }
    }

    /// Mean recovery time (ticks) for episodes whose primary cause is
    /// `cause`.
    pub fn mean_recovery_ticks_for_cause(&self, cause: FailureCause) -> Option<f64> {
        let recovered: Vec<u64> = self
            .episodes
            .iter()
            .filter(|e| e.primary_cause() == cause)
            .filter_map(FailureEpisode::recovery_ticks)
            .collect();
        if recovered.is_empty() {
            None
        } else {
            Some(recovered.iter().sum::<u64>() as f64 / recovered.len() as f64)
        }
    }

    /// Counts episodes by primary cause, as `(cause, count)` pairs in
    /// [`FailureCause::ALL`] order (causes with zero episodes included).
    pub fn cause_counts(&self) -> Vec<(FailureCause, usize)> {
        FailureCause::ALL
            .iter()
            .map(|c| {
                (
                    *c,
                    self.episodes
                        .iter()
                        .filter(|e| e.primary_cause() == *c)
                        .count(),
                )
            })
            .collect()
    }

    /// Mean number of fix attempts per episode.
    pub fn mean_fix_attempts(&self) -> f64 {
        if self.episodes.is_empty() {
            return 0.0;
        }
        self.episodes
            .iter()
            .map(|e| e.fixes_attempted.len())
            .sum::<usize>() as f64
            / self.episodes.len() as f64
    }

    /// Fraction of episodes that ended in escalation.
    pub fn escalation_fraction(&self) -> f64 {
        if self.episodes.is_empty() {
            return 0.0;
        }
        self.episodes.iter().filter(|e| e.escalated).count() as f64 / self.episodes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_faults::FixKind;

    #[test]
    fn episode_lifecycle_and_recovery_time() {
        let mut log = RecoveryLog::new();
        assert!(!log.in_episode());
        log.open_episode(
            100,
            vec![FaultKind::BufferContention],
            vec![FailureCause::Software],
        );
        assert!(log.in_episode());
        // Opening again while open is ignored.
        log.open_episode(
            105,
            vec![FaultKind::SourceCodeBug],
            vec![FailureCause::Software],
        );
        log.record_fix(FixAction::untargeted(FixKind::RepartitionMemory));
        log.close_episode(130);
        assert!(!log.in_episode());
        assert_eq!(log.len(), 1);
        let ep = &log.episodes()[0];
        assert_eq!(ep.recovery_ticks(), Some(30));
        assert_eq!(ep.primary_cause(), FailureCause::Software);
        assert_eq!(ep.primary_fault(), Some(FaultKind::BufferContention));
        assert_eq!(ep.fixes_attempted.len(), 1);
        assert!(!ep.escalated);
    }

    #[test]
    fn escalation_is_flagged() {
        let mut log = RecoveryLog::new();
        log.open_episode(
            0,
            vec![FaultKind::SourceCodeBug],
            vec![FailureCause::Software],
        );
        log.record_fix(FixAction::untargeted(FixKind::MicrorebootEjb));
        log.record_fix(FixAction::untargeted(FixKind::FullServiceRestart));
        log.close_episode(400);
        assert_eq!(log.escalation_fraction(), 1.0);
        assert_eq!(log.mean_fix_attempts(), 2.0);
    }

    #[test]
    fn per_cause_aggregation() {
        let mut log = RecoveryLog::new();
        log.open_episode(
            0,
            vec![FaultKind::OperatorMisconfiguration],
            vec![FailureCause::Operator],
        );
        log.close_episode(200);
        log.open_episode(
            300,
            vec![FaultKind::BufferContention],
            vec![FailureCause::Software],
        );
        log.close_episode(320);
        assert_eq!(log.mean_recovery_ticks(), Some(110.0));
        assert_eq!(
            log.mean_recovery_ticks_for_cause(FailureCause::Operator),
            Some(200.0)
        );
        assert_eq!(
            log.mean_recovery_ticks_for_cause(FailureCause::Software),
            Some(20.0)
        );
        assert_eq!(
            log.mean_recovery_ticks_for_cause(FailureCause::Hardware),
            None
        );
        let counts = log.cause_counts();
        assert_eq!(counts[0], (FailureCause::Operator, 1));
        assert_eq!(counts[2], (FailureCause::Software, 1));
    }

    #[test]
    fn unfinished_episode_is_recorded_without_recovery() {
        let mut log = RecoveryLog::new();
        log.open_episode(10, vec![], vec![]);
        log.finish();
        assert_eq!(log.len(), 1);
        assert_eq!(log.episodes()[0].recovery_ticks(), None);
        assert_eq!(log.episodes()[0].primary_cause(), FailureCause::Unknown);
        assert_eq!(log.mean_recovery_ticks(), None);
    }

    #[test]
    fn empty_log_aggregates_to_defaults() {
        let log = RecoveryLog::new();
        assert!(log.is_empty());
        assert_eq!(log.mean_fix_attempts(), 0.0);
        assert_eq!(log.escalation_fraction(), 0.0);
    }
}
