//! Per-tier capacity / queueing model.
//!
//! Each tier is modelled as a fluid queue with a fixed amount of service
//! capacity per tick.  Demand beyond the capacity is carried over as
//! backlog; latency inflates both with instantaneous utilization (an
//! M/M/1-like `1/(1-ρ)` factor) and with the backlog that is already queued
//! ahead of newly arriving work.  This is deliberately simple — the paper's
//! analyses only need tier-level utilization, queue length, and response
//! time to show realistic bottleneck and overload behaviour.

use serde::{Deserialize, Serialize};

/// Maximum utilization used in the latency-inflation formula (full
/// saturation is expressed through the backlog term instead, keeping the
/// multiplier finite).
const RHO_CAP: f64 = 0.95;

/// One tier's resource state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierResource {
    name: &'static str,
    /// Nominal capacity, ms of service per tick.
    nominal_capacity_ms: f64,
    /// Multiplier applied to the nominal capacity (faults and fixes move
    /// this: a bottlenecked tier has factor < 1, provisioning raises it).
    capacity_factor: f64,
    /// Temporary capacity factor applied while a fix is in progress
    /// (disruption); reset every tick by the actuator.
    disruption_factor: f64,
    /// Carried-over demand from previous ticks, in ms.
    backlog_ms: f64,
    /// Utilization observed in the last completed tick.
    last_utilization: f64,
    /// Latency multiplier observed in the last completed tick.
    last_latency_multiplier: f64,
}

/// Result of offering one tick's demand to a tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierTick {
    /// Utilization in `[0, 1]` (fraction of effective capacity used).
    pub utilization: f64,
    /// Multiplier applied to every request's service demand at this tier.
    pub latency_multiplier: f64,
    /// Backlog carried into the next tick, in ms.
    pub backlog_ms: f64,
    /// Fraction of offered demand that could not even be queued this tick
    /// (0 unless the tier is catastrophically overloaded).
    pub shed_fraction: f64,
}

impl TierResource {
    /// Creates a tier with the given nominal capacity.
    ///
    /// # Panics
    /// Panics if `nominal_capacity_ms` is not positive.
    pub fn new(name: &'static str, nominal_capacity_ms: f64) -> Self {
        assert!(nominal_capacity_ms > 0.0, "tier capacity must be positive");
        TierResource {
            name,
            nominal_capacity_ms,
            capacity_factor: 1.0,
            disruption_factor: 1.0,
            backlog_ms: 0.0,
            last_utilization: 0.0,
            last_latency_multiplier: 1.0,
        }
    }

    /// Tier name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Effective capacity this tick (nominal × capacity factor × disruption).
    pub fn effective_capacity_ms(&self) -> f64 {
        (self.nominal_capacity_ms * self.capacity_factor * self.disruption_factor).max(1.0)
    }

    /// The persistent capacity factor (1.0 = healthy).
    pub fn capacity_factor(&self) -> f64 {
        self.capacity_factor
    }

    /// Sets the persistent capacity factor (clamped to `[0.01, 10.0]`).
    pub fn set_capacity_factor(&mut self, factor: f64) {
        self.capacity_factor = factor.clamp(0.01, 10.0);
    }

    /// Scales the persistent capacity factor (e.g. provisioning multiplies
    /// by 1.5, a hardware failure by 0.5).
    pub fn scale_capacity(&mut self, factor: f64) {
        self.set_capacity_factor(self.capacity_factor * factor);
    }

    /// Sets this tick's disruption factor (1.0 = no disruption, 0.0 = the
    /// tier is completely unavailable while a fix is applied).
    pub fn set_disruption(&mut self, available_fraction: f64) {
        self.disruption_factor = available_fraction.clamp(0.0, 1.0).max(0.001);
    }

    /// Clears the disruption factor back to fully available.
    pub fn clear_disruption(&mut self) {
        self.disruption_factor = 1.0;
    }

    /// Current backlog in ms.
    pub fn backlog_ms(&self) -> f64 {
        self.backlog_ms
    }

    /// Utilization observed in the last tick.
    pub fn last_utilization(&self) -> f64 {
        self.last_utilization
    }

    /// Latency multiplier observed in the last tick.
    pub fn last_latency_multiplier(&self) -> f64 {
        self.last_latency_multiplier
    }

    /// Drops all queued work and resets congestion state (used by tier
    /// reboots and full restarts: in-flight requests are lost, which is part
    /// of why those fixes are disruptive).
    pub fn flush(&mut self) {
        self.backlog_ms = 0.0;
        self.last_utilization = 0.0;
        self.last_latency_multiplier = 1.0;
    }

    /// Offers `demand_ms` of new work for this tick and advances the tier.
    pub fn offer(&mut self, demand_ms: f64) -> TierTick {
        let capacity = self.effective_capacity_ms();
        let offered = demand_ms.max(0.0) + self.backlog_ms;
        let utilization = (offered / capacity).min(1.0);
        let completed = offered.min(capacity);
        let mut backlog = offered - completed;

        // Catastrophic overload: bound the queue at three ticks' worth of
        // work; anything beyond that is shed (timeouts / connection resets),
        // which is how an interactive service behaves rather than queueing
        // requests indefinitely.
        let max_backlog = 3.0 * capacity;
        let mut shed_fraction = 0.0;
        if backlog > max_backlog {
            let shed = backlog - max_backlog;
            shed_fraction = if offered > 0.0 { shed / offered } else { 0.0 };
            backlog = max_backlog;
        }

        let rho = (offered / capacity).min(RHO_CAP);
        let latency_multiplier = 1.0 / (1.0 - rho) + self.backlog_ms / capacity;

        self.backlog_ms = backlog;
        self.last_utilization = utilization;
        self.last_latency_multiplier = latency_multiplier;

        TierTick {
            utilization,
            latency_multiplier,
            backlog_ms: backlog,
            shed_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_load_has_low_utilization_and_unit_latency() {
        let mut tier = TierResource::new("web", 1000.0);
        let t = tier.offer(100.0);
        assert!((t.utilization - 0.1).abs() < 1e-9);
        assert!(t.latency_multiplier < 1.2);
        assert_eq!(t.backlog_ms, 0.0);
        assert_eq!(t.shed_fraction, 0.0);
        assert_eq!(tier.name(), "web");
    }

    #[test]
    fn latency_inflates_as_load_approaches_capacity() {
        let mut tier = TierResource::new("db", 1000.0);
        let light = tier.offer(100.0).latency_multiplier;
        tier.flush();
        let heavy = tier.offer(900.0).latency_multiplier;
        assert!(heavy > 3.0 * light, "heavy {heavy} vs light {light}");
    }

    #[test]
    fn overload_builds_backlog_and_eventually_sheds() {
        let mut tier = TierResource::new("app", 1000.0);
        let mut shed_seen = false;
        for _ in 0..30 {
            let t = tier.offer(3000.0);
            assert_eq!(t.utilization, 1.0);
            if t.shed_fraction > 0.0 {
                shed_seen = true;
            }
        }
        assert!(tier.backlog_ms() <= 3.0 * tier.effective_capacity_ms() + 1e-6);
        assert!(shed_seen, "sustained 3x overload must eventually shed work");
    }

    #[test]
    fn backlog_drains_when_load_drops() {
        let mut tier = TierResource::new("db", 1000.0);
        tier.offer(2500.0);
        assert!(tier.backlog_ms() > 0.0);
        for _ in 0..5 {
            tier.offer(0.0);
        }
        assert_eq!(tier.backlog_ms(), 0.0);
        assert!(tier.last_latency_multiplier() >= 1.0);
    }

    #[test]
    fn capacity_factor_and_disruption_shrink_effective_capacity() {
        let mut tier = TierResource::new("db", 1000.0);
        tier.set_capacity_factor(0.5);
        assert_eq!(tier.effective_capacity_ms(), 500.0);
        tier.set_disruption(0.2);
        assert!((tier.effective_capacity_ms() - 100.0).abs() < 1e-9);
        tier.clear_disruption();
        tier.scale_capacity(2.0);
        assert_eq!(tier.capacity_factor(), 1.0);
        assert_eq!(tier.effective_capacity_ms(), 1000.0);
    }

    #[test]
    fn capacity_factor_is_clamped() {
        let mut tier = TierResource::new("db", 1000.0);
        tier.set_capacity_factor(0.0);
        assert!(tier.effective_capacity_ms() >= 1.0);
        tier.set_capacity_factor(1000.0);
        assert!(tier.capacity_factor() <= 10.0);
    }

    #[test]
    fn flush_clears_backlog() {
        let mut tier = TierResource::new("web", 500.0);
        tier.offer(5000.0);
        assert!(tier.backlog_ms() > 0.0);
        tier.flush();
        assert_eq!(tier.backlog_ms(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        TierResource::new("bad", 0.0);
    }
}
