//! The application tier: EJB components and the request → EJB call graph.
//!
//! Example 1 of the paper: "A J2EE application consists of reusable Java
//! modules called Enterprise Java Beans (EJBs).  Users interact with a J2EE
//! application through servlets ... which invoke methods on the EJBs.  In
//! turn, these methods may call methods on other EJBs, submit queries or
//! updates to the database tier, and so on."
//!
//! The anomaly-detection example (Example 2) monitors "the number of times
//! an EJB of one type calls an EJB of another type", so the call graph and
//! per-EJB invocation counts are first-class simulation state here.

use selfheal_workload::RequestKind;
use serde::{Deserialize, Serialize};

/// Role names for the EJBs of the auction application, used to build
/// human-readable metric names (`app.ejb2_calls` etc. carry the role in the
/// metric description).
const EJB_ROLES: [&str; 8] = [
    "ItemBrowser",
    "QueryEngine",
    "ItemDetail",
    "UserAccount",
    "BidManager",
    "PurchaseManager",
    "ListingManager",
    "ReportBuilder",
];

/// The application tier's component catalogue and call graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EjbGraph {
    ejb_count: usize,
    table_count: usize,
}

/// The work one request performs in the application and database tiers:
/// which EJBs it invokes (and how many times), and which tables it touches.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RequestPath {
    /// `(ejb index, number of method invocations)`.
    pub ejb_calls: Vec<(usize, u32)>,
    /// `(table index, rows accessed, is_write)`.
    pub table_accesses: Vec<(usize, f64, bool)>,
}

impl EjbGraph {
    /// Creates the call graph for a service with `ejb_count` EJBs and
    /// `table_count` tables.  The canonical roles above are assigned to the
    /// first eight EJBs; additional EJBs (if any) behave like auxiliary
    /// report builders, and smaller services wrap around modulo the count.
    pub fn new(ejb_count: usize, table_count: usize) -> Self {
        assert!(ejb_count > 0, "call graph needs at least one EJB");
        assert!(table_count > 0, "call graph needs at least one table");
        EjbGraph {
            ejb_count,
            table_count,
        }
    }

    /// Number of EJB components.
    pub fn ejb_count(&self) -> usize {
        self.ejb_count
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.table_count
    }

    /// Role name of an EJB.
    pub fn role(&self, ejb: usize) -> &'static str {
        EJB_ROLES[ejb % EJB_ROLES.len()]
    }

    fn e(&self, nominal: usize) -> usize {
        nominal % self.ejb_count
    }

    fn t(&self, nominal: usize) -> usize {
        nominal % self.table_count
    }

    /// The path a request of `kind` takes through the EJBs and tables.
    ///
    /// The mapping is fixed (not randomized) so that each request kind has a
    /// stable interaction signature: that stability is what lets the anomaly
    /// detector learn a baseline distribution of inter-EJB calls.
    pub fn path(&self, kind: RequestKind) -> RequestPath {
        // Table roles: 0 items, 1 bids, 2 users, 3 comments, 4 categories,
        // 5 purchase history.
        match kind {
            RequestKind::Home => RequestPath {
                ejb_calls: vec![(self.e(0), 1)],
                table_accesses: vec![(self.t(4), 1.0, false)],
            },
            RequestKind::Browse => RequestPath {
                ejb_calls: vec![(self.e(0), 2), (self.e(1), 1)],
                table_accesses: vec![(self.t(0), 30.0, false), (self.t(4), 10.0, false)],
            },
            RequestKind::Search => RequestPath {
                ejb_calls: vec![(self.e(1), 3), (self.e(0), 1)],
                table_accesses: vec![(self.t(0), 70.0, false), (self.t(4), 10.0, false)],
            },
            RequestKind::ViewItem => RequestPath {
                ejb_calls: vec![(self.e(2), 2), (self.e(1), 1)],
                table_accesses: vec![(self.t(0), 10.0, false), (self.t(1), 5.0, false)],
            },
            RequestKind::ViewUser => RequestPath {
                ejb_calls: vec![(self.e(3), 2)],
                table_accesses: vec![(self.t(2), 8.0, false), (self.t(3), 12.0, false)],
            },
            RequestKind::Bid => RequestPath {
                ejb_calls: vec![(self.e(4), 3), (self.e(2), 1), (self.e(3), 1)],
                table_accesses: vec![(self.t(1), 8.0, true), (self.t(0), 4.0, false)],
            },
            RequestKind::Buy => RequestPath {
                ejb_calls: vec![(self.e(5), 3), (self.e(3), 1)],
                table_accesses: vec![(self.t(5), 6.0, true), (self.t(0), 4.0, false)],
            },
            RequestKind::Sell => RequestPath {
                ejb_calls: vec![(self.e(6), 3), (self.e(3), 1)],
                table_accesses: vec![(self.t(0), 6.0, true), (self.t(4), 2.0, false)],
            },
            RequestKind::Register => RequestPath {
                ejb_calls: vec![(self.e(3), 2)],
                table_accesses: vec![(self.t(2), 4.0, true)],
            },
            RequestKind::Login => RequestPath {
                ejb_calls: vec![(self.e(3), 1)],
                table_accesses: vec![(self.t(2), 2.0, false)],
            },
            RequestKind::AboutMe => RequestPath {
                ejb_calls: vec![(self.e(7), 4), (self.e(3), 1), (self.e(2), 1)],
                table_accesses: vec![
                    (self.t(1), 40.0, false),
                    (self.t(5), 40.0, false),
                    (self.t(3), 40.0, false),
                    (self.t(2), 30.0, false),
                ],
            },
        }
    }

    /// Returns `true` if a request of `kind` invokes the given EJB.
    pub fn touches_ejb(&self, kind: RequestKind, ejb: usize) -> bool {
        self.path(kind).ejb_calls.iter().any(|(e, _)| *e == ejb)
    }

    /// Returns `true` if a request of `kind` accesses the given table.
    pub fn touches_table(&self, kind: RequestKind, table: usize) -> bool {
        self.path(kind)
            .table_accesses
            .iter()
            .any(|(t, _, _)| *t == table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_request_kind_has_a_nonempty_path() {
        let graph = EjbGraph::new(8, 6);
        for kind in RequestKind::ALL {
            let path = graph.path(kind);
            assert!(
                !path.ejb_calls.is_empty(),
                "{kind} must invoke at least one EJB"
            );
            assert!(
                !path.table_accesses.is_empty(),
                "{kind} must touch at least one table"
            );
            for (e, calls) in &path.ejb_calls {
                assert!(*e < 8);
                assert!(*calls > 0);
            }
            for (t, rows, _) in &path.table_accesses {
                assert!(*t < 6);
                assert!(*rows > 0.0);
            }
        }
    }

    #[test]
    fn write_requests_write_to_some_table() {
        let graph = EjbGraph::new(8, 6);
        for kind in RequestKind::ALL {
            let writes_somewhere = graph.path(kind).table_accesses.iter().any(|(_, _, w)| *w);
            assert_eq!(writes_somewhere, kind.is_write(), "{kind}");
        }
    }

    #[test]
    fn small_topologies_wrap_component_indexes() {
        let graph = EjbGraph::new(3, 2);
        for kind in RequestKind::ALL {
            for (e, _) in graph.path(kind).ejb_calls {
                assert!(e < 3);
            }
            for (t, _, _) in graph.path(kind).table_accesses {
                assert!(t < 2);
            }
        }
    }

    #[test]
    fn bid_requests_exercise_the_bid_manager_not_the_report_builder() {
        let graph = EjbGraph::new(8, 6);
        assert!(graph.touches_ejb(RequestKind::Bid, 4));
        assert!(!graph.touches_ejb(RequestKind::Bid, 7));
        assert!(graph.touches_table(RequestKind::Bid, 1));
        assert!(!graph.touches_table(RequestKind::Bid, 5));
    }

    #[test]
    fn roles_are_stable_and_paths_deterministic() {
        let graph = EjbGraph::new(8, 6);
        assert_eq!(graph.role(4), "BidManager");
        assert_eq!(
            graph.role(12),
            "BidManager",
            "roles wrap modulo the catalogue"
        );
        assert_eq!(
            graph.path(RequestKind::Search),
            graph.path(RequestKind::Search)
        );
        assert_eq!(graph.ejb_count(), 8);
        assert_eq!(graph.table_count(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one EJB")]
    fn zero_ejb_graph_is_rejected() {
        EjbGraph::new(0, 3);
    }
}
