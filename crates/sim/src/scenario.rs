//! Scenario runner: workload + fault injection + a pluggable healing policy.
//!
//! The runner is the harness every experiment uses: it drives the
//! [`MultiTierService`] over a workload trace and an injection plan, hands
//! each tick's observations to a [`Healer`], applies whatever fixes the
//! healer requests, and keeps the books (metric series, failure episodes,
//! recovery times, fix attempts).

use crate::recovery::RecoveryLog;
use crate::service::{MultiTierService, TickOutcome};
use selfheal_faults::{FixAction, InjectionPlan};
use selfheal_telemetry::SeriesStore;
use selfheal_workload::TraceGenerator;

/// A healing policy plugged into the scenario runner.
///
/// The healer sees exactly what a production monitoring pipeline would see —
/// the per-tick metric sample, confirmed SLO violations, and the completion
/// of fixes it previously requested — and returns the fixes to apply now.
/// It must *not* look at the simulator's ground-truth fault state.
pub trait Healer {
    /// Short name used in benchmark output.
    fn name(&self) -> &str;

    /// Observes one tick and returns the fixes to initiate.
    fn observe(&mut self, outcome: &TickOutcome) -> Vec<FixAction>;
}

/// A healer that never does anything (the "no self-healing" baseline: the
/// service stays broken until an injected fault is the kind that a human
/// would eventually notice — which in these experiments means it stays
/// broken).
#[derive(Debug, Clone, Default)]
pub struct NoHealing;

impl Healer for NoHealing {
    fn name(&self) -> &str {
        "no_healing"
    }

    fn observe(&mut self, _outcome: &TickOutcome) -> Vec<FixAction> {
        Vec::new()
    }
}

/// Summary of a completed scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The full metric time series of the run.
    pub series: SeriesStore,
    /// Failure episodes and recovery times.
    pub recovery: RecoveryLog,
    /// Ticks simulated.
    pub ticks: u64,
    /// Requests that arrived over the run.
    pub arrived: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that failed.
    pub errors: u64,
    /// Fraction of ticks with a confirmed SLO violation.
    pub violation_fraction: f64,
    /// Total fixes initiated by the healer.
    pub fixes_initiated: u64,
}

impl ScenarioOutcome {
    /// Fraction of arrived requests that completed successfully.
    pub fn goodput_fraction(&self) -> f64 {
        if self.arrived == 0 {
            1.0
        } else {
            self.completed as f64 / self.arrived as f64
        }
    }
}

/// Drives a service + workload + injection plan + healer for a fixed number
/// of ticks.
pub struct ScenarioRunner<H: Healer> {
    service: MultiTierService,
    workload: TraceGenerator,
    injections: InjectionPlan,
    healer: H,
    series_capacity: usize,
}

impl<H: Healer> ScenarioRunner<H> {
    /// Creates a runner.
    pub fn new(
        service: MultiTierService,
        workload: TraceGenerator,
        injections: InjectionPlan,
        healer: H,
    ) -> Self {
        ScenarioRunner { service, workload, injections, healer, series_capacity: 100_000 }
    }

    /// Limits how many samples of history are retained (older samples are
    /// evicted); the default retains the full run for typical lengths.
    pub fn with_series_capacity(mut self, capacity: usize) -> Self {
        self.series_capacity = capacity.max(1);
        self
    }

    /// Read access to the healer (e.g. to inspect learned state afterwards).
    pub fn healer(&self) -> &H {
        &self.healer
    }

    /// Read access to the service.
    pub fn service(&self) -> &MultiTierService {
        &self.service
    }

    /// Runs the scenario for `ticks` ticks and returns the outcome together
    /// with the runner itself (so learned healer state can be reused).
    pub fn run(mut self, ticks: u64) -> (ScenarioOutcome, Self) {
        let mut series = SeriesStore::new(self.service.schema().clone(), self.series_capacity);
        let mut recovery = RecoveryLog::new();
        let mut fixes_initiated = 0u64;

        for _ in 0..ticks {
            let tick = self.service.current_tick();

            // Inject scheduled faults.
            for fault in self.injections.due_at(tick) {
                self.service.inject(fault.clone());
            }

            // Serve the tick's traffic.
            let requests = self.workload.tick(tick);
            let outcome = self.service.tick(&requests);

            // Episode bookkeeping: open on first confirmed violation, close
            // when the monitor reports the service compliant again.
            if !outcome.violations.is_empty() && !recovery.in_episode() {
                let kinds = self.service.active_faults().iter().map(|f| f.spec.kind).collect();
                let causes = self.service.active_faults().iter().map(|f| f.spec.cause).collect();
                recovery.open_episode(outcome.tick, kinds, causes);
            } else if recovery.in_episode() && !self.service.slo_violated() {
                recovery.close_episode(outcome.tick);
            }

            // Let the healing policy react.
            let actions = self.healer.observe(&outcome);
            for action in actions {
                recovery.record_fix(action);
                self.service.apply_fix(action);
                fixes_initiated += 1;
            }

            series.push(outcome.sample.clone());
        }

        recovery.finish();
        let (arrived, completed, errors) = self.service.totals();
        let outcome = ScenarioOutcome {
            series,
            recovery,
            ticks,
            arrived,
            completed,
            errors,
            violation_fraction: self.service.violation_fraction(),
            fixes_initiated,
        };
        (outcome, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;
    use selfheal_faults::{FaultKind, FaultTarget, FixKind, InjectionPlanBuilder};
    use selfheal_workload::{ArrivalProcess, WorkloadMix};

    fn runner<H: Healer>(healer: H, plan: InjectionPlan) -> ScenarioRunner<H> {
        let config = ServiceConfig::tiny();
        let service = MultiTierService::new(config);
        let workload = TraceGenerator::new(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
            11,
        );
        ScenarioRunner::new(service, workload, plan, healer)
    }

    /// A trivial healer that always requests a full restart when a violation
    /// is confirmed and nothing is already in progress.
    struct RestartOnViolation {
        in_flight: bool,
    }

    impl Healer for RestartOnViolation {
        fn name(&self) -> &str {
            "restart_on_violation"
        }

        fn observe(&mut self, outcome: &TickOutcome) -> Vec<FixAction> {
            if !outcome.completed_fixes.is_empty() {
                self.in_flight = false;
            }
            if !outcome.violations.is_empty() && !self.in_flight {
                self.in_flight = true;
                vec![FixAction::untargeted(FixKind::FullServiceRestart)]
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn healthy_run_has_no_episodes() {
        let (outcome, _) = runner(NoHealing, InjectionPlan::empty()).run(80);
        assert_eq!(outcome.recovery.len(), 0);
        assert_eq!(outcome.violation_fraction, 0.0);
        assert_eq!(outcome.fixes_initiated, 0);
        assert!(outcome.goodput_fraction() > 0.99);
        assert_eq!(outcome.series.len(), 80);
        assert_eq!(outcome.ticks, 80);
    }

    #[test]
    fn unhealed_fault_leaves_an_open_ended_episode() {
        let plan = InjectionPlanBuilder::new(4, 3, 1)
            .inject(20, FaultKind::BottleneckedTier, FaultTarget::DatabaseTier, 0.95)
            .build();
        let (outcome, runner) = runner(NoHealing, plan).run(120);
        assert_eq!(outcome.recovery.len(), 1);
        assert_eq!(outcome.recovery.episodes()[0].recovery_ticks(), None);
        assert!(outcome.violation_fraction > 0.3);
        assert_eq!(runner.healer().name(), "no_healing");
    }

    #[test]
    fn restart_healer_recovers_and_is_recorded() {
        let plan = InjectionPlanBuilder::new(4, 3, 1)
            .inject(20, FaultKind::UnhandledException, FaultTarget::Ejb { index: 1 }, 0.9)
            .build();
        let (outcome, _) = runner(RestartOnViolation { in_flight: false }, plan).run(600);
        assert!(outcome.fixes_initiated >= 1);
        assert_eq!(outcome.recovery.len(), 1);
        let ep = &outcome.recovery.episodes()[0];
        assert!(ep.recovery_ticks().is_some(), "restart must eventually recover the service");
        assert!(ep.escalated);
        // The restart is slow: recovery takes at least the restart duration.
        assert!(ep.recovery_ticks().unwrap() >= 300);
    }

    #[test]
    fn series_capacity_limits_history() {
        let (outcome, _) = runner(NoHealing, InjectionPlan::empty())
            .with_series_capacity(10)
            .run(50);
        assert_eq!(outcome.series.len(), 10);
    }
}
