//! Scenario runner: workload + fault injection + a pluggable healing policy.
//!
//! The runner is the harness every experiment uses: it drives the
//! [`MultiTierService`] over a workload trace and a pluggable fault source
//! (a scripted injection plan, stochastic demographic generation, a
//! catalog sweep — anything implementing
//! [`selfheal_faults::FaultSource`]), hands each tick's observations to a
//! [`Healer`], applies whatever fixes the healer requests, and keeps the
//! books (metric series, failure episodes, recovery times, fix attempts).

use crate::recovery::RecoveryLog;
use crate::service::{MultiTierService, TickOutcome};
use selfheal_faults::id_space;
use selfheal_faults::{FaultSource, FaultSpec, FixAction, InjectionPlan, ScriptedSource};
use selfheal_telemetry::SeriesStore;
use selfheal_workload::{Request, TraceSource};

/// A healing policy plugged into the scenario runner.
///
/// The healer sees exactly what a production monitoring pipeline would see —
/// the per-tick metric sample, confirmed SLO violations, and the completion
/// of fixes it previously requested — and returns the fixes to apply now.
/// It must *not* look at the simulator's ground-truth fault state.
///
/// `Send` is a supertrait so a runner (service + workload + healer) can be
/// moved onto a fleet worker thread; every healer in this workspace is plain
/// owned data (or an `Arc` handle to shared learned state), so the bound is
/// free.
pub trait Healer: Send {
    /// Short name used in benchmark output.
    fn name(&self) -> &str;

    /// Observes one tick and returns the fixes to initiate.
    fn observe(&mut self, outcome: &TickOutcome) -> Vec<FixAction>;
}

impl Healer for Box<dyn Healer> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn observe(&mut self, outcome: &TickOutcome) -> Vec<FixAction> {
        self.as_mut().observe(outcome)
    }
}

/// A healer that never does anything (the "no self-healing" baseline: the
/// service stays broken until an injected fault is the kind that a human
/// would eventually notice — which in these experiments means it stays
/// broken).
#[derive(Debug, Clone, Default)]
pub struct NoHealing;

impl Healer for NoHealing {
    fn name(&self) -> &str {
        "no_healing"
    }

    fn observe(&mut self, _outcome: &TickOutcome) -> Vec<FixAction> {
        Vec::new()
    }
}

/// Summary of a completed scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Label of the healer that drove the run.
    pub healer: String,
    /// The full metric time series of the run.
    pub series: SeriesStore,
    /// Failure episodes and recovery times.
    pub recovery: RecoveryLog,
    /// Ticks simulated.
    pub ticks: u64,
    /// Requests that arrived over the run.
    pub arrived: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that failed.
    pub errors: u64,
    /// Fraction of ticks with a confirmed SLO violation.
    pub violation_fraction: f64,
    /// Total fixes initiated by the healer.
    pub fixes_initiated: u64,
}

impl ScenarioOutcome {
    /// Fraction of arrived requests that completed successfully.
    pub fn goodput_fraction(&self) -> f64 {
        if self.arrived == 0 {
            1.0
        } else {
            self.completed as f64 / self.arrived as f64
        }
    }

    /// A digest of everything observable in the outcome: every retained
    /// metric value (bit-exact), every failure episode, and all counters.
    ///
    /// Two runs with the same seed must produce the same fingerprint; the
    /// fleet determinism tests rely on this to assert byte-identical
    /// replica behaviour regardless of fleet size or thread interleaving.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.ticks.hash(&mut hasher);
        self.arrived.hash(&mut hasher);
        self.completed.hash(&mut hasher);
        self.errors.hash(&mut hasher);
        self.fixes_initiated.hash(&mut hasher);
        self.violation_fraction.to_bits().hash(&mut hasher);
        self.series.len().hash(&mut hasher);
        for sample in self.series.iter() {
            sample.tick().hash(&mut hasher);
            for value in sample.values() {
                value.to_bits().hash(&mut hasher);
            }
        }
        // Episodes carry enums and nested actions; their Debug form is a
        // faithful, cheap-to-hash encoding of all of it.
        format!("{:?}", self.recovery).hash(&mut hasher);
        hasher.finish()
    }
}

/// Drives a service + workload + fault source + healer, one resumable
/// tick at a time.
///
/// [`ScenarioRunner::run`] remains the one-shot entry point, but all the
/// bookkeeping lives *in* the runner now, so a fleet scheduler can
/// [`ScenarioRunner::step`] many replicas in any interleaving — round-robin
/// on one thread, to completion on parallel worker threads — and take an
/// [`ScenarioRunner::outcome`] snapshot whenever it likes.
///
/// Faults enter the run through a pluggable [`FaultSource`] — a scripted
/// [`InjectionPlan`] (via the [`ScenarioRunner::new`] /
/// [`ScenarioRunner::with_source`] shims), stochastic demographic
/// generation, a catalog sweep, or any custom implementation handed to
/// [`ScenarioRunner::with_faults`].
pub struct ScenarioRunner<H: Healer> {
    service: MultiTierService,
    workload: Box<dyn TraceSource>,
    faults: Box<dyn FaultSource>,
    healer: H,
    series: SeriesStore,
    recovery: RecoveryLog,
    fixes_initiated: u64,
    ticks_run: u64,
    surge_factor: f64,
    surge_until: u64,
    surge_next_id: u64,
}

impl<H: Healer> ScenarioRunner<H> {
    /// Creates a runner from any [`TraceSource`] and a scripted
    /// [`InjectionPlan`] (the original constructor, kept as a thin shim over
    /// [`ScenarioRunner::with_faults`] + [`ScriptedSource`]).  The metric
    /// history retains up to 100 000 samples by default; see
    /// [`ScenarioRunner::with_series_capacity`].
    pub fn new(
        service: MultiTierService,
        workload: impl TraceSource + 'static,
        injections: InjectionPlan,
        healer: H,
    ) -> Self {
        Self::with_faults(
            service,
            Box::new(workload),
            Box::new(ScriptedSource::new(injections)),
            healer,
        )
    }

    /// Creates a runner from an already-boxed workload source and a
    /// scripted [`InjectionPlan`] (shim over
    /// [`ScenarioRunner::with_faults`]).
    pub fn with_source(
        service: MultiTierService,
        workload: Box<dyn TraceSource>,
        injections: InjectionPlan,
        healer: H,
    ) -> Self {
        Self::with_faults(
            service,
            workload,
            Box::new(ScriptedSource::new(injections)),
            healer,
        )
    }

    /// Creates a runner from already-boxed workload and fault sources —
    /// what the harness and the fleet engine hand over after building a
    /// `WorkloadChoice` and a `FaultChoice`.
    pub fn with_faults(
        service: MultiTierService,
        workload: Box<dyn TraceSource>,
        faults: Box<dyn FaultSource>,
        healer: H,
    ) -> Self {
        let series = SeriesStore::new(service.schema().clone(), 100_000);
        ScenarioRunner {
            service,
            workload,
            faults,
            healer,
            series,
            recovery: RecoveryLog::new(),
            fixes_initiated: 0,
            ticks_run: 0,
            surge_factor: 1.0,
            surge_until: 0,
            surge_next_id: Self::SURGE_ID_BASE,
        }
    }

    /// Id namespace for requests synthesized by a workload surge, far above
    /// anything a [`TraceSource`] emits, so overlay traffic never collides
    /// with recorded or generated request ids — see
    /// [`selfheal_faults::id_space`] for the lane manifest.
    pub const SURGE_ID_BASE: u64 = id_space::lane_base(id_space::SURGE_ID_BIT);

    /// Limits how many samples of history are retained (older samples are
    /// evicted); the default retains the full run for typical lengths.
    ///
    /// # Panics
    /// Panics if called after the first [`ScenarioRunner::step`] (the
    /// retained history would silently be dropped).
    pub fn with_series_capacity(mut self, capacity: usize) -> Self {
        assert_eq!(
            self.ticks_run, 0,
            "set the series capacity before stepping the runner"
        );
        self.series = SeriesStore::new(self.service.schema().clone(), capacity.max(1));
        self
    }

    /// Read access to the healer (e.g. to inspect learned state afterwards).
    pub fn healer(&self) -> &H {
        &self.healer
    }

    /// Read access to the service.
    pub fn service(&self) -> &MultiTierService {
        &self.service
    }

    /// Read access to the workload source driving the run.
    pub fn workload(&self) -> &dyn TraceSource {
        self.workload.as_ref()
    }

    /// Read access to the fault source driving the run.
    pub fn faults(&self) -> &dyn FaultSource {
        self.faults.as_ref()
    }

    /// Replaces the fault source mid-run — the live-reconfiguration hook
    /// (e.g. the resident daemon's `RECONFIGURE`/`DRAIN` commands, applied
    /// at epoch barriers).  The new source is queried from the *current*
    /// tick onward; faults already injected into the service keep running
    /// to their natural end.
    pub fn set_faults(&mut self, faults: Box<dyn FaultSource>) {
        self.faults = faults;
    }

    /// Replaces the workload source mid-run (see
    /// [`set_faults`](Self::set_faults) for the semantics): the new trace
    /// feeds arrivals from the current tick onward.
    pub fn set_workload(&mut self, workload: Box<dyn TraceSource>) {
        self.workload = workload;
    }

    /// Ticks advanced so far.
    pub fn ticks_run(&self) -> u64 {
        self.ticks_run
    }

    /// Fix attempts the healer has initiated so far.
    pub fn fixes_initiated(&self) -> u64 {
        self.fixes_initiated
    }

    /// The metric history recorded so far.
    pub fn series(&self) -> &SeriesStore {
        &self.series
    }

    /// The episode log recorded so far (an episode may still be open).
    pub fn recovery(&self) -> &RecoveryLog {
        &self.recovery
    }

    /// Injects a fault into the running service *now*, outside the
    /// scheduled [`FaultSource`] — the hook fleet-level events (fault
    /// storms hitting a fraction of the fleet mid-run) use to reach one
    /// replica.  The fault behaves exactly as if the source had scheduled
    /// it at the current tick.
    pub fn inject(&mut self, fault: FaultSpec) {
        self.service.inject(fault);
    }

    /// Overlays a workload surge on the replica: until `until_tick`
    /// (exclusive), each tick's request batch is amplified by `factor`
    /// (≥ 1.0).  The extra requests are deterministic clones of the tick's
    /// own batch, cycled in order and re-stamped with ids from
    /// [`ScenarioRunner::SURGE_ID_BASE`], so a surged run stays a pure
    /// function of the seed.  A new surge replaces any active one.
    pub fn apply_surge(&mut self, factor: f64, until_tick: u64) {
        self.surge_factor = factor.max(1.0);
        self.surge_until = until_tick;
    }

    /// Advances the scenario by exactly one tick: inject due faults, serve
    /// the tick's traffic, keep the episode books, let the healer react, and
    /// record the metric sample.  Returns the tick's outcome.
    pub fn step(&mut self) -> TickOutcome {
        let tick = self.service.current_tick();

        // Inject scheduled faults.
        for fault in self.faults.due_at(tick) {
            self.service.inject(fault);
        }

        // Serve the tick's traffic.
        let mut requests = self.workload.next_tick(tick);
        if tick < self.surge_until && self.surge_factor > 1.0 && !requests.is_empty() {
            let base = requests.len();
            let extra = (base as f64 * (self.surge_factor - 1.0)).round() as usize;
            for i in 0..extra {
                let template = &requests[i % base];
                let clone = Request::new(self.surge_next_id, template.kind, tick);
                self.surge_next_id += 1;
                requests.push(clone);
            }
        }
        let outcome = self.service.tick(&requests);

        // Episode bookkeeping: open on first confirmed violation, close
        // when the monitor reports the service compliant again.
        if !outcome.violations.is_empty() && !self.recovery.in_episode() {
            let kinds = self
                .service
                .active_faults()
                .iter()
                .map(|f| f.spec.kind)
                .collect();
            let causes = self
                .service
                .active_faults()
                .iter()
                .map(|f| f.spec.cause)
                .collect();
            self.recovery.open_episode(outcome.tick, kinds, causes);
        } else if self.recovery.in_episode() && !self.service.slo_violated() {
            self.recovery.close_episode(outcome.tick);
        }

        // Let the healing policy react.
        let actions = self.healer.observe(&outcome);
        for action in actions {
            self.recovery.record_fix(action);
            self.service.apply_fix(action);
            self.fixes_initiated += 1;
        }

        self.series.push(outcome.sample.clone());
        self.ticks_run += 1;
        outcome
    }

    /// Snapshot of the run so far.  Does not consume the runner: the fleet
    /// scheduler keeps stepping replicas after reading interim outcomes.
    pub fn outcome(&self) -> ScenarioOutcome {
        let mut recovery = self.recovery.clone();
        recovery.finish();
        let (arrived, completed, errors) = self.service.totals();
        ScenarioOutcome {
            healer: self.healer.name().to_string(),
            series: self.series.clone(),
            recovery,
            ticks: self.ticks_run,
            arrived,
            completed,
            errors,
            violation_fraction: self.service.violation_fraction(),
            fixes_initiated: self.fixes_initiated,
        }
    }

    /// Runs the scenario for `ticks` further ticks and returns the outcome
    /// together with the runner itself (so learned healer state can be
    /// reused).
    pub fn run(mut self, ticks: u64) -> (ScenarioOutcome, Self) {
        for _ in 0..ticks {
            self.step();
        }
        (self.outcome(), self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;
    use selfheal_faults::{FaultKind, FaultTarget, FixKind, InjectionPlanBuilder};
    use selfheal_workload::{ArrivalProcess, TraceGenerator, WorkloadMix};

    fn runner<H: Healer>(healer: H, plan: InjectionPlan) -> ScenarioRunner<H> {
        let config = ServiceConfig::tiny();
        let service = MultiTierService::new(config);
        let workload = TraceGenerator::new(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
            11,
        );
        ScenarioRunner::new(service, workload, plan, healer)
    }

    /// A trivial healer that always requests a full restart when a violation
    /// is confirmed and nothing is already in progress.
    struct RestartOnViolation {
        in_flight: bool,
    }

    impl Healer for RestartOnViolation {
        fn name(&self) -> &str {
            "restart_on_violation"
        }

        fn observe(&mut self, outcome: &TickOutcome) -> Vec<FixAction> {
            if !outcome.completed_fixes.is_empty() {
                self.in_flight = false;
            }
            if !outcome.violations.is_empty() && !self.in_flight {
                self.in_flight = true;
                vec![FixAction::untargeted(FixKind::FullServiceRestart)]
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn healthy_run_has_no_episodes() {
        let (outcome, _) = runner(NoHealing, InjectionPlan::empty()).run(80);
        assert_eq!(outcome.recovery.len(), 0);
        assert_eq!(outcome.violation_fraction, 0.0);
        assert_eq!(outcome.fixes_initiated, 0);
        assert!(outcome.goodput_fraction() > 0.99);
        assert_eq!(outcome.series.len(), 80);
        assert_eq!(outcome.ticks, 80);
    }

    #[test]
    fn unhealed_fault_leaves_an_open_ended_episode() {
        let plan = InjectionPlanBuilder::new(4, 3, 1)
            .inject(
                20,
                FaultKind::BottleneckedTier,
                FaultTarget::DatabaseTier,
                0.95,
            )
            .build();
        let (outcome, runner) = runner(NoHealing, plan).run(120);
        assert_eq!(outcome.recovery.len(), 1);
        assert_eq!(outcome.recovery.episodes()[0].recovery_ticks(), None);
        assert!(outcome.violation_fraction > 0.3);
        assert_eq!(runner.healer().name(), "no_healing");
    }

    #[test]
    fn restart_healer_recovers_and_is_recorded() {
        let plan = InjectionPlanBuilder::new(4, 3, 1)
            .inject(
                20,
                FaultKind::UnhandledException,
                FaultTarget::Ejb { index: 1 },
                0.9,
            )
            .build();
        let (outcome, _) = runner(RestartOnViolation { in_flight: false }, plan).run(600);
        assert!(outcome.fixes_initiated >= 1);
        assert_eq!(outcome.recovery.len(), 1);
        let ep = &outcome.recovery.episodes()[0];
        assert!(
            ep.recovery_ticks().is_some(),
            "restart must eventually recover the service"
        );
        assert!(ep.escalated);
        // The restart is slow: recovery takes at least the restart duration.
        assert!(ep.recovery_ticks().unwrap() >= 300);
    }

    #[test]
    fn series_capacity_limits_history() {
        let (outcome, _) = runner(NoHealing, InjectionPlan::empty())
            .with_series_capacity(10)
            .run(50);
        assert_eq!(outcome.series.len(), 10);
    }
}
