//! Fix actuation: applying repair actions to the running service.
//!
//! A fix is not instantaneous — Table 1's fixes range from a two-second EJB
//! microreboot to a multi-minute full service restart, and Figure 2 shows
//! human-escalated recoveries taking hours.  The actuator tracks fixes that
//! are *in progress*, charges their disruption against the affected tiers
//! every tick, and reports which fixes completed this tick so the service
//! can apply their effects (remove repaired faults, refresh statistics,
//! restore buffers, ...).

use crate::faults_runtime::SimTier;
use selfheal_faults::{FixAction, FixCost, FixId, FixKind};
use serde::{Deserialize, Serialize};

/// A fix currently being applied.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingFix {
    /// Unique id of this fix attempt.
    pub id: FixId,
    /// The action being applied.
    pub action: FixAction,
    /// The cost model in force for this attempt.
    pub cost: FixCost,
    /// Tick at which the fix was initiated.
    pub started_at: u64,
    /// Ticks of work remaining before the fix completes.
    pub remaining_ticks: u64,
}

/// A fix that completed this tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletedFix {
    /// Unique id of the fix attempt.
    pub id: FixId,
    /// The completed action.
    pub action: FixAction,
    /// Tick at which the fix was initiated.
    pub started_at: u64,
    /// Tick at which the fix completed.
    pub completed_at: u64,
}

/// Tracks in-progress fixes and their disruption.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FixActuator {
    pending: Vec<PendingFix>,
    next_fix_id: u64,
    total_started: u64,
    total_completed: u64,
}

impl FixActuator {
    /// Creates an idle actuator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts applying a fix at `tick` with its default cost model, returning
    /// the id of the attempt.
    pub fn start(&mut self, action: FixAction, tick: u64) -> FixId {
        self.start_with_cost(action, action.kind.default_cost(), tick)
    }

    /// Starts applying a fix with an explicit cost model.
    pub fn start_with_cost(&mut self, action: FixAction, cost: FixCost, tick: u64) -> FixId {
        let id = FixId(self.next_fix_id);
        self.next_fix_id += 1;
        self.total_started += 1;
        self.pending.push(PendingFix {
            id,
            action,
            cost,
            started_at: tick,
            // A zero-duration fix completes at the end of the same tick.
            remaining_ticks: cost.duration_ticks,
        });
        id
    }

    /// Fixes currently in progress.
    pub fn pending(&self) -> &[PendingFix] {
        &self.pending
    }

    /// Returns `true` if any fix is currently being applied.
    pub fn busy(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Total fix attempts started.
    pub fn total_started(&self) -> u64 {
        self.total_started
    }

    /// Total fix attempts completed.
    pub fn total_completed(&self) -> u64 {
        self.total_completed
    }

    /// The fraction of capacity available at `tier` this tick, given the
    /// disruption of all in-progress fixes (1.0 = undisturbed).
    pub fn available_fraction(&self, tier: SimTier) -> f64 {
        let mut available: f64 = 1.0;
        for fix in &self.pending {
            if fix_disrupts_tier(&fix.action, tier) {
                available *= 1.0 - fix.cost.disruption;
            }
        }
        available.clamp(0.0, 1.0)
    }

    /// Advances in-progress fixes by one tick (ending at `tick`) and returns
    /// the fixes that completed.
    pub fn advance_tick(&mut self, tick: u64) -> Vec<CompletedFix> {
        let mut completed = Vec::new();
        self.pending.retain_mut(|fix| {
            if fix.remaining_ticks == 0 {
                completed.push(CompletedFix {
                    id: fix.id,
                    action: fix.action,
                    started_at: fix.started_at,
                    completed_at: tick,
                });
                false
            } else {
                fix.remaining_ticks -= 1;
                if fix.remaining_ticks == 0 {
                    completed.push(CompletedFix {
                        id: fix.id,
                        action: fix.action,
                        started_at: fix.started_at,
                        completed_at: tick,
                    });
                    false
                } else {
                    true
                }
            }
        });
        self.total_completed += completed.len() as u64;
        completed
    }

    /// Abandons all in-progress fixes (used when a full restart supersedes
    /// narrower fixes).
    pub fn cancel_all(&mut self) {
        self.pending.clear();
    }
}

/// Which tiers a fix disrupts while it is being applied.
fn fix_disrupts_tier(action: &FixAction, tier: SimTier) -> bool {
    use selfheal_faults::FaultTarget;
    match action.kind {
        FixKind::FullServiceRestart => true,
        FixKind::NotifyAdministrator | FixKind::NoOp => false,
        _ => match &action.target {
            Some(target) => SimTier::of_target(target) == Some(tier),
            // Untargeted narrow fixes default to the database tier for
            // memory repartitioning and to the app tier otherwise.
            None => match action.kind {
                FixKind::RepartitionMemory | FixKind::UpdateStatistics | FixKind::RebuildIndex => {
                    tier == SimTier::Db
                }
                FixKind::RollbackConfiguration => tier == SimTier::App,
                _ => {
                    // Fall back to "whole service" semantics for anything
                    // else untargeted.
                    let _ = FaultTarget::WholeService;
                    true
                }
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_faults::FaultTarget;

    #[test]
    fn fixes_complete_after_their_duration() {
        let mut act = FixActuator::new();
        let action = FixAction::targeted(FixKind::MicrorebootEjb, FaultTarget::Ejb { index: 1 });
        act.start(action, 10); // duration 2 ticks
        assert!(act.busy());
        assert!(act.advance_tick(11).is_empty());
        let done = act.advance_tick(12);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].action, action);
        assert_eq!(done[0].started_at, 10);
        assert_eq!(done[0].completed_at, 12);
        assert!(!act.busy());
        assert_eq!(act.total_started(), 1);
        assert_eq!(act.total_completed(), 1);
    }

    #[test]
    fn zero_duration_fix_completes_on_the_next_advance() {
        let mut act = FixActuator::new();
        act.start_with_cost(
            FixAction::untargeted(FixKind::NoOp),
            FixCost::new(0, 0.0, 0.0),
            5,
        );
        let done = act.advance_tick(5);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn full_restart_disrupts_every_tier() {
        let mut act = FixActuator::new();
        act.start(FixAction::untargeted(FixKind::FullServiceRestart), 0);
        for tier in SimTier::ALL {
            assert!(act.available_fraction(tier) < 0.05, "{tier:?}");
        }
    }

    #[test]
    fn targeted_fix_disrupts_only_its_tier() {
        let mut act = FixActuator::new();
        act.start(
            FixAction::targeted(FixKind::RebootTier, FaultTarget::DatabaseTier),
            0,
        );
        assert!(act.available_fraction(SimTier::Db) < 0.5);
        assert_eq!(act.available_fraction(SimTier::Web), 1.0);
        assert_eq!(act.available_fraction(SimTier::App), 1.0);
    }

    #[test]
    fn notify_administrator_causes_no_disruption_but_takes_long() {
        let mut act = FixActuator::new();
        act.start(FixAction::untargeted(FixKind::NotifyAdministrator), 0);
        for tier in SimTier::ALL {
            assert_eq!(act.available_fraction(tier), 1.0);
        }
        assert!(act.pending()[0].remaining_ticks > 1000);
    }

    #[test]
    fn cancel_all_clears_pending_fixes() {
        let mut act = FixActuator::new();
        act.start(FixAction::untargeted(FixKind::FullServiceRestart), 0);
        act.cancel_all();
        assert!(!act.busy());
        assert!(act.advance_tick(1).is_empty());
    }

    #[test]
    fn fix_ids_are_unique_and_monotone() {
        let mut act = FixActuator::new();
        let a = act.start(FixAction::untargeted(FixKind::NoOp), 0);
        let b = act.start(FixAction::untargeted(FixKind::NoOp), 0);
        assert!(b.0 > a.0);
    }
}
