//! Buffer-pool working-set model.
//!
//! The buffer pool caches table pages.  Its miss rate follows a simple
//! working-set law: when the pool is at least as large as the combined
//! working set of the tables being accessed, misses are rare (cold misses
//! only); as the pool shrinks below the working set, the miss rate grows
//! toward 1.  Buffer contention (Table 1) and operator misconfiguration are
//! simulated by shrinking the pool; `RepartitionMemory` restores the
//! nominal allocation.

use serde::{Deserialize, Serialize};

/// Baseline (cold/compulsory) miss rate of a healthy, warm buffer pool.
const COLD_MISS_RATE: f64 = 0.02;

/// The buffer pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferPool {
    nominal_pages: u64,
    current_pages: u64,
    working_set_pages: u64,
    table_count: usize,
    /// Per-table access weight this tick (rows touched).
    tick_access_rows: Vec<f64>,
    tick_rows_read: f64,
    tick_rows_written: f64,
    tick_miss_weighted: f64,
    tick_access_weight: f64,
}

impl BufferPool {
    /// Creates a pool of `nominal_pages` pages serving `table_count` tables,
    /// each with a working set of `working_set_pages`.
    pub fn new(nominal_pages: u64, working_set_pages: u64, table_count: usize) -> Self {
        assert!(nominal_pages > 0, "buffer pool must have at least one page");
        assert!(table_count > 0, "buffer pool must serve at least one table");
        BufferPool {
            nominal_pages,
            current_pages: nominal_pages,
            working_set_pages: working_set_pages.max(1),
            table_count,
            tick_access_rows: vec![0.0; table_count],
            tick_rows_read: 0.0,
            tick_rows_written: 0.0,
            tick_miss_weighted: 0.0,
            tick_access_weight: 0.0,
        }
    }

    /// Nominal (configured) size in pages.
    pub fn nominal_pages(&self) -> u64 {
        self.nominal_pages
    }

    /// Current effective size in pages.
    pub fn current_pages(&self) -> u64 {
        self.current_pages
    }

    /// Shrinks the effective pool to `fraction` of nominal (fault effect).
    pub fn shrink_to_fraction(&mut self, fraction: f64) {
        let fraction = fraction.clamp(0.01, 1.0);
        self.current_pages = ((self.nominal_pages as f64) * fraction).max(1.0) as u64;
    }

    /// Restores the nominal allocation (the `RepartitionMemory` fix).
    pub fn restore_nominal(&mut self) {
        self.current_pages = self.nominal_pages;
    }

    /// Current miss rate given the set of tables recently accessed.
    ///
    /// The demanded working set is `working_set_pages` per actively accessed
    /// table; the miss rate interpolates between the cold-miss floor (pool ≥
    /// demand) and ~1.0 (pool ≪ demand).
    pub fn miss_rate(&self) -> f64 {
        let active_tables = self
            .tick_access_rows
            .iter()
            .filter(|r| **r > 0.0)
            .count()
            .max(1) as f64;
        let demand = active_tables * self.working_set_pages as f64;
        let available = self.current_pages as f64;
        if available >= demand {
            COLD_MISS_RATE
        } else {
            let shortfall = 1.0 - available / demand;
            (COLD_MISS_RATE + shortfall * (1.0 - COLD_MISS_RATE)).min(1.0)
        }
    }

    /// Records one access of `rows` rows against `table` and returns the
    /// miss rate charged to it.
    pub fn access(&mut self, table: usize, rows: f64) -> f64 {
        let table = table % self.table_count;
        self.tick_access_rows[table] += rows;
        let miss = self.miss_rate();
        self.tick_rows_read += rows;
        self.tick_miss_weighted += miss * rows;
        self.tick_access_weight += rows;
        miss
    }

    /// Records rows written (for the tick counters; writes also read pages,
    /// which is already captured by [`BufferPool::access`]).
    pub fn record_write(&mut self, rows: f64) {
        self.tick_rows_written += rows;
    }

    /// Ends the tick, returning `(rows_read, rows_written, mean_miss_rate)`
    /// and resetting the per-tick counters.
    pub fn finish_tick(&mut self) -> (f64, f64, f64) {
        let miss = if self.tick_access_weight > 0.0 {
            self.tick_miss_weighted / self.tick_access_weight
        } else {
            COLD_MISS_RATE
        };
        let result = (self.tick_rows_read, self.tick_rows_written, miss);
        self.tick_rows_read = 0.0;
        self.tick_rows_written = 0.0;
        self.tick_miss_weighted = 0.0;
        self.tick_access_weight = 0.0;
        for r in &mut self.tick_access_rows {
            *r = 0.0;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_pool_has_cold_miss_rate_only() {
        let mut pool = BufferPool::new(4000, 900, 4);
        let miss = pool.access(0, 100.0);
        assert!((miss - COLD_MISS_RATE).abs() < 1e-9);
        let (read, written, rate) = pool.finish_tick();
        assert_eq!(read, 100.0);
        assert_eq!(written, 0.0);
        assert!((rate - COLD_MISS_RATE).abs() < 1e-9);
    }

    #[test]
    fn shrinking_the_pool_raises_the_miss_rate() {
        let mut pool = BufferPool::new(4000, 900, 4);
        pool.access(0, 10.0);
        pool.access(1, 10.0);
        let healthy = pool.miss_rate();
        pool.shrink_to_fraction(0.1);
        let starved = pool.miss_rate();
        assert!(
            starved > healthy + 0.3,
            "starved {starved} vs healthy {healthy}"
        );
        pool.restore_nominal();
        assert!((pool.miss_rate() - healthy).abs() < 1e-9);
        assert_eq!(pool.current_pages(), pool.nominal_pages());
    }

    #[test]
    fn more_active_tables_demand_more_buffer() {
        let mut pool = BufferPool::new(2000, 900, 6);
        pool.access(0, 10.0);
        let one_table = pool.miss_rate();
        for t in 1..6 {
            pool.access(t, 10.0);
        }
        let six_tables = pool.miss_rate();
        assert!(six_tables > one_table);
    }

    #[test]
    fn tick_counters_reset_after_finish() {
        let mut pool = BufferPool::new(1000, 500, 2);
        pool.access(0, 50.0);
        pool.record_write(20.0);
        let (r, w, _) = pool.finish_tick();
        assert_eq!((r, w), (50.0, 20.0));
        let (r2, w2, rate2) = pool.finish_tick();
        assert_eq!((r2, w2), (0.0, 0.0));
        assert!((rate2 - COLD_MISS_RATE).abs() < 1e-9);
    }

    #[test]
    fn shrink_fraction_is_clamped() {
        let mut pool = BufferPool::new(1000, 500, 2);
        pool.shrink_to_fraction(-1.0);
        assert!(pool.current_pages() >= 10);
        pool.shrink_to_fraction(5.0);
        assert_eq!(pool.current_pages(), 1000);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_page_pool_is_rejected() {
        BufferPool::new(0, 10, 1);
    }
}
