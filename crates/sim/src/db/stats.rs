//! Per-table optimizer statistics and plan quality.
//!
//! Example 5 of the paper: "Database servers maintain statistics about
//! stored data in order to choose good execution plans for queries.  Unless
//! these statistics are updated in a timely fashion, they can become out of
//! date under heavy transactional workloads; causing failures due to
//! suboptimal query plans."  The fix pattern the paper suggests watches the
//! divergence between the optimizer's *estimated* and the *actual* number of
//! rows returned, and schedules a statistics update when they differ
//! significantly — so the misestimate factor is exposed as a metric.

use serde::{Deserialize, Serialize};

/// Extra work factor charged when an injected suboptimal-plan fault is
/// active, on top of any organic staleness.
const INJECTED_PLAN_PENALTY: f64 = 6.0;

/// Maximum organic misestimate factor from staleness alone.
const MAX_ORGANIC_PENALTY: f64 = 4.0;

/// Optimizer statistics for one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableStatistics {
    /// Writes applied since the statistics were last refreshed.
    writes_since_refresh: u64,
    /// Number of writes after which the statistics are fully stale.
    staleness_threshold: u64,
    /// How many times the statistics have been refreshed.
    refresh_count: u64,
}

impl TableStatistics {
    /// Creates fresh statistics with the given staleness threshold.
    pub fn new(staleness_threshold: u64) -> Self {
        TableStatistics {
            writes_since_refresh: 0,
            staleness_threshold: staleness_threshold.max(1),
            refresh_count: 0,
        }
    }

    /// Records `rows` written to the table.
    pub fn record_writes(&mut self, rows: u64) {
        self.writes_since_refresh = self.writes_since_refresh.saturating_add(rows);
    }

    /// Fraction of the staleness threshold consumed (0 = fresh, ≥1 = fully
    /// stale).
    pub fn staleness(&self) -> f64 {
        self.writes_since_refresh as f64 / self.staleness_threshold as f64
    }

    /// The factor by which queries against this table are misestimated (and
    /// therefore slowed down by bad plans).
    ///
    /// 1.0 means estimates are accurate.  Organic staleness ramps the factor
    /// linearly up to `MAX_ORGANIC_PENALTY`; an injected suboptimal-plan
    /// fault pins it at least at `INJECTED_PLAN_PENALTY`.
    pub fn misestimate_factor(&self, injected_fault: bool) -> f64 {
        let organic = 1.0 + (MAX_ORGANIC_PENALTY - 1.0) * self.staleness().min(1.0);
        if injected_fault {
            organic.max(INJECTED_PLAN_PENALTY)
        } else {
            organic
        }
    }

    /// Refreshes the statistics (the `UpdateStatistics` fix / `RUNSTATS`).
    pub fn refresh(&mut self) {
        self.writes_since_refresh = 0;
        self.refresh_count += 1;
    }

    /// How many times the statistics have been refreshed.
    pub fn refresh_count(&self) -> u64 {
        self.refresh_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_statistics_have_unit_factor() {
        let s = TableStatistics::new(100);
        assert_eq!(s.staleness(), 0.0);
        assert_eq!(s.misestimate_factor(false), 1.0);
    }

    #[test]
    fn staleness_grows_with_writes_and_saturates() {
        let mut s = TableStatistics::new(100);
        s.record_writes(50);
        assert!((s.staleness() - 0.5).abs() < 1e-12);
        let halfway = s.misestimate_factor(false);
        assert!(halfway > 1.0 && halfway < MAX_ORGANIC_PENALTY);
        s.record_writes(1_000);
        assert!(s.staleness() > 1.0);
        assert_eq!(s.misestimate_factor(false), MAX_ORGANIC_PENALTY);
    }

    #[test]
    fn injected_fault_dominates_organic_staleness() {
        let mut s = TableStatistics::new(100);
        assert_eq!(s.misestimate_factor(true), INJECTED_PLAN_PENALTY);
        s.record_writes(1_000);
        assert!(s.misestimate_factor(true) >= INJECTED_PLAN_PENALTY);
    }

    #[test]
    fn refresh_resets_staleness_and_counts() {
        let mut s = TableStatistics::new(10);
        s.record_writes(100);
        s.refresh();
        assert_eq!(s.staleness(), 0.0);
        assert_eq!(s.misestimate_factor(false), 1.0);
        assert_eq!(s.refresh_count(), 1);
    }

    #[test]
    fn zero_threshold_is_clamped() {
        let s = TableStatistics::new(0);
        assert_eq!(s.staleness(), 0.0);
    }
}
