//! Block/lock contention model.
//!
//! Table 1's "read/write contention on table block" failure is repaired by
//! repartitioning the table "to balance accesses across partitions".  The
//! lock manager models each table as a set of partitions; accesses pile onto
//! the hottest partition, and the wait time grows with the concurrent write
//! traffic hitting that partition.  Repartitioning increases the partition
//! count for the table, spreading the load.

use serde::{Deserialize, Serialize};

/// Milliseconds of wait charged per unit of concurrent conflicting work.
const WAIT_PER_CONFLICT_MS: f64 = 0.1;

/// Extra skew factor applied while an injected block-contention fault is
/// active (all accesses hammer one hot block).
const INJECTED_SKEW: f64 = 16.0;

/// The lock manager for all tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LockManager {
    /// Number of partitions per table (starts at 1; repartitioning raises it).
    partitions: Vec<u32>,
    /// Write rows seen per table this tick.
    tick_write_rows: Vec<f64>,
    /// Lock wait accumulated this tick (ms).
    tick_wait_ms: f64,
}

impl LockManager {
    /// Creates a lock manager for `table_count` tables, each with a single
    /// partition.
    pub fn new(table_count: usize) -> Self {
        assert!(table_count > 0, "lock manager needs at least one table");
        LockManager {
            partitions: vec![1; table_count],
            tick_write_rows: vec![0.0; table_count],
            tick_wait_ms: 0.0,
        }
    }

    /// Number of partitions of a table.
    pub fn partitions(&self, table: usize) -> u32 {
        self.partitions[table % self.partitions.len()]
    }

    /// Records one access and returns the lock wait (ms) it incurred.
    ///
    /// Reads only wait when there is concurrent write traffic on the same
    /// table; writes also conflict with each other.  The injected
    /// block-contention fault concentrates all traffic on one block,
    /// multiplying the conflict rate by `INJECTED_SKEW`.
    pub fn access(
        &mut self,
        table: usize,
        rows: f64,
        is_write: bool,
        contention_fault: bool,
    ) -> f64 {
        let idx = table % self.partitions.len();
        let partitions = self.partitions[idx] as f64;
        let concurrent_writes = self.tick_write_rows[idx];

        let skew = if contention_fault { INJECTED_SKEW } else { 1.0 };
        let conflicting = concurrent_writes * skew / partitions;
        let wait = if is_write {
            (conflicting + rows * 0.1 * skew / partitions) * WAIT_PER_CONFLICT_MS
        } else {
            conflicting * WAIT_PER_CONFLICT_MS * 0.5
        };

        if is_write {
            self.tick_write_rows[idx] += rows;
        }
        self.tick_wait_ms += wait;
        wait
    }

    /// Repartitions a table (the `RepartitionTable` fix), doubling its
    /// partition count (capped at 64).
    pub fn rebalance(&mut self, table: usize) {
        let idx = table % self.partitions.len();
        self.partitions[idx] = (self.partitions[idx] * 2).min(64);
    }

    /// Ends the tick, returning the accumulated lock wait (ms).
    pub fn finish_tick(&mut self) -> f64 {
        let wait = self.tick_wait_ms;
        self.tick_wait_ms = 0.0;
        for w in &mut self.tick_write_rows {
            *w = 0.0;
        }
        wait
    }

    /// Resets all state, including partition layouts (database restart).
    pub fn reset(&mut self) {
        for p in &mut self.partitions {
            *p = 1;
        }
        self.tick_wait_ms = 0.0;
        for w in &mut self.tick_write_rows {
            *w = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_without_writes_do_not_wait() {
        let mut lm = LockManager::new(2);
        assert_eq!(lm.access(0, 100.0, false, false), 0.0);
        assert_eq!(lm.finish_tick(), 0.0);
    }

    #[test]
    fn writes_conflict_with_prior_writes_in_the_same_tick() {
        let mut lm = LockManager::new(2);
        let first = lm.access(0, 10.0, true, false);
        let second = lm.access(0, 10.0, true, false);
        assert!(second > first, "later writes wait behind earlier ones");
        // A write to a different table does not conflict.
        let other_table = lm.access(1, 10.0, true, false);
        assert!(other_table <= first + 1e-9);
    }

    #[test]
    fn injected_contention_multiplies_waits_and_repartition_relieves_it() {
        let mut lm = LockManager::new(1);
        lm.access(0, 20.0, true, false);
        let normal = lm.access(0, 20.0, true, false);
        lm.finish_tick();

        lm.access(0, 20.0, true, true);
        let contended = lm.access(0, 20.0, true, true);
        assert!(
            contended > 3.0 * normal,
            "contended {contended} vs normal {normal}"
        );
        lm.finish_tick();

        for _ in 0..3 {
            lm.rebalance(0);
        }
        assert_eq!(lm.partitions(0), 8);
        lm.access(0, 20.0, true, true);
        let repartitioned = lm.access(0, 20.0, true, true);
        assert!(repartitioned < contended / 4.0);
    }

    #[test]
    fn partition_count_is_capped() {
        let mut lm = LockManager::new(1);
        for _ in 0..20 {
            lm.rebalance(0);
        }
        assert_eq!(lm.partitions(0), 64);
    }

    #[test]
    fn reset_restores_single_partitions() {
        let mut lm = LockManager::new(2);
        lm.rebalance(1);
        lm.access(1, 5.0, true, false);
        lm.reset();
        assert_eq!(lm.partitions(1), 1);
        assert_eq!(lm.finish_tick(), 0.0);
    }

    #[test]
    fn reads_wait_behind_concurrent_writes() {
        let mut lm = LockManager::new(1);
        lm.access(0, 50.0, true, false);
        let read_wait = lm.access(0, 10.0, false, false);
        assert!(read_wait > 0.0);
    }
}
