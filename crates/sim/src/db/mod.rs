//! Database-tier internals.
//!
//! The database tier is where several of Table 1's failure classes live:
//! suboptimal query plans from stale optimizer statistics, read/write
//! contention on table blocks, and contention for buffer memory.  To make
//! those failures (and their fixes) behave realistically, the simulator
//! models the pieces of a database engine they involve:
//!
//! * [`buffer::BufferPool`] — a working-set model of the buffer cache whose
//!   miss rate drives extra I/O demand; `RepartitionMemory` resets it.
//! * [`stats::TableStatistics`] — per-table optimizer statistics with a
//!   staleness counter driven by write traffic; `UpdateStatistics` refreshes
//!   them and restores good plans (Example 5 of the paper).
//! * [`locks::LockManager`] — block-contention model for read/write
//!   hot-spots; `RepartitionTable` spreads the accesses and removes the
//!   contention.
//! * [`DatabaseTier`] — glues the three together and charges each request's
//!   table accesses.

pub mod buffer;
pub mod locks;
pub mod stats;

pub use buffer::BufferPool;
pub use locks::LockManager;
pub use stats::TableStatistics;

use serde::{Deserialize, Serialize};

/// Aggregate database-tier counters produced for one tick.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DbTickCounters {
    /// Rows read this tick.
    pub rows_read: f64,
    /// Rows written this tick.
    pub rows_written: f64,
    /// Buffer miss rate observed this tick.
    pub buffer_miss_rate: f64,
    /// Milliseconds of lock wait accumulated this tick.
    pub lock_wait_ms: f64,
    /// Mean ratio of actual to optimizer-estimated rows across accesses
    /// this tick (1.0 = estimates accurate; grows as statistics go stale).
    pub plan_misestimate: f64,
    /// Extra database service demand (ms) caused by bad plans, misses, and
    /// lock waits this tick.
    pub extra_demand_ms: f64,
}

/// The simulated database engine state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatabaseTier {
    buffer: BufferPool,
    stats: Vec<TableStatistics>,
    locks: LockManager,
    table_count: usize,
    /// Row-weighted sum of the misestimate factors actually charged this
    /// tick (including injected plan faults), and the corresponding weight.
    tick_misestimate_weighted: f64,
    tick_misestimate_weight: f64,
}

/// Per-access outcome used by the service to attribute latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessCharge {
    /// Extra service demand in ms for this access beyond the nominal cost.
    pub extra_ms: f64,
    /// Lock wait in ms for this access.
    pub lock_wait_ms: f64,
}

impl DatabaseTier {
    /// Creates a database tier with `table_count` tables, a buffer pool of
    /// `buffer_pages`, a per-table working set of `working_set_pages`, and
    /// the given staleness threshold (writes before statistics go stale).
    pub fn new(
        table_count: usize,
        buffer_pages: u64,
        working_set_pages: u64,
        staleness_threshold_writes: u64,
    ) -> Self {
        assert!(table_count > 0, "database needs at least one table");
        DatabaseTier {
            buffer: BufferPool::new(buffer_pages, working_set_pages, table_count),
            stats: (0..table_count)
                .map(|_| TableStatistics::new(staleness_threshold_writes))
                .collect(),
            locks: LockManager::new(table_count),
            table_count,
            tick_misestimate_weighted: 0.0,
            tick_misestimate_weight: 0.0,
        }
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.table_count
    }

    /// The buffer pool.
    pub fn buffer(&self) -> &BufferPool {
        &self.buffer
    }

    /// Mutable access to the buffer pool (used by fault effects and fixes).
    pub fn buffer_mut(&mut self) -> &mut BufferPool {
        &mut self.buffer
    }

    /// Statistics of one table.
    pub fn table_stats(&self, table: usize) -> &TableStatistics {
        &self.stats[table]
    }

    /// Mutable statistics of one table.
    pub fn table_stats_mut(&mut self, table: usize) -> &mut TableStatistics {
        &mut self.stats[table]
    }

    /// The lock manager.
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// Mutable lock manager.
    pub fn locks_mut(&mut self) -> &mut LockManager {
        &mut self.locks
    }

    /// Charges one table access and returns the latency consequences.
    ///
    /// `plan_penalty_active` marks the table as suffering an injected
    /// suboptimal-plan fault (in addition to any organic staleness), and
    /// `contention_active` marks it as suffering injected block contention.
    pub fn charge_access(
        &mut self,
        table: usize,
        rows: f64,
        is_write: bool,
        nominal_ms: f64,
        plan_penalty_active: bool,
        contention_active: bool,
    ) -> AccessCharge {
        let table = table % self.table_count;

        // Buffer pool: misses add I/O time proportional to the rows touched.
        let miss_rate = self.buffer.access(table, rows);
        let miss_ms = nominal_ms * miss_rate * 2.0;

        // Plan quality: stale or sabotaged statistics inflate the work done.
        let stats = &mut self.stats[table];
        if is_write {
            stats.record_writes(rows.max(1.0) as u64);
        }
        let misestimate = stats.misestimate_factor(plan_penalty_active);
        let plan_ms = nominal_ms * (misestimate - 1.0).max(0.0);
        self.tick_misestimate_weighted += misestimate * rows.max(1.0);
        self.tick_misestimate_weight += rows.max(1.0);

        // Lock contention: writes (and injected block contention) queue.
        let lock_wait_ms = self.locks.access(table, rows, is_write, contention_active);

        AccessCharge {
            extra_ms: miss_ms + plan_ms,
            lock_wait_ms,
        }
    }

    /// Finishes a tick: rolls per-tick counters and returns them.
    pub fn finish_tick(&mut self) -> DbTickCounters {
        let (rows_read, rows_written, miss_rate) = self.buffer.finish_tick();
        let lock_wait_ms = self.locks.finish_tick();
        // The exposed plan-quality metric is the row-weighted misestimate of
        // the plans actually executed this tick (estimated-vs-actual rows,
        // the signal Example 5 of the paper watches); when the tick ran no
        // queries it falls back to the per-table statistics staleness.
        let plan_misestimate = if self.tick_misestimate_weight > 0.0 {
            self.tick_misestimate_weighted / self.tick_misestimate_weight
        } else if self.stats.is_empty() {
            1.0
        } else {
            self.stats
                .iter()
                .map(|s| s.misestimate_factor(false))
                .sum::<f64>()
                / self.stats.len() as f64
        };
        self.tick_misestimate_weighted = 0.0;
        self.tick_misestimate_weight = 0.0;
        DbTickCounters {
            rows_read,
            rows_written,
            buffer_miss_rate: miss_rate,
            lock_wait_ms,
            plan_misestimate,
            extra_demand_ms: 0.0,
        }
    }

    /// Applies the `UpdateStatistics` fix to one table.
    pub fn update_statistics(&mut self, table: usize) {
        let table = table % self.table_count;
        self.stats[table].refresh();
    }

    /// Applies the `RepartitionTable` fix to one table.
    pub fn repartition_table(&mut self, table: usize) {
        let table = table % self.table_count;
        self.locks.rebalance(table);
    }

    /// Applies the `RepartitionMemory` fix: restores the configured buffer
    /// allocation.
    pub fn repartition_memory(&mut self) {
        self.buffer.restore_nominal();
    }

    /// Full database restart: clears all transient state and refreshes all
    /// statistics.
    pub fn restart(&mut self) {
        self.buffer.restore_nominal();
        self.locks.reset();
        for s in &mut self.stats {
            s.refresh();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> DatabaseTier {
        DatabaseTier::new(3, 1200, 500, 1_000)
    }

    #[test]
    fn healthy_access_has_small_overhead() {
        let mut d = db();
        let charge = d.charge_access(0, 10.0, false, 5.0, false, false);
        assert!(charge.extra_ms < 5.0);
        assert_eq!(charge.lock_wait_ms, 0.0);
        let counters = d.finish_tick();
        assert_eq!(counters.rows_read, 10.0);
        assert_eq!(counters.rows_written, 0.0);
        assert!(counters.plan_misestimate >= 1.0);
    }

    #[test]
    fn plan_penalty_inflates_extra_time() {
        let mut d = db();
        let healthy = d.charge_access(1, 20.0, false, 10.0, false, false).extra_ms;
        let degraded = d.charge_access(1, 20.0, false, 10.0, true, false).extra_ms;
        assert!(
            degraded > healthy + 5.0,
            "degraded {degraded} vs healthy {healthy}"
        );
    }

    #[test]
    fn contention_adds_lock_wait_and_repartition_removes_it() {
        let mut d = db();
        // Two writes in the same tick: the second waits behind the first.
        d.charge_access(2, 10.0, true, 5.0, false, true);
        let contended = d
            .charge_access(2, 10.0, true, 5.0, false, true)
            .lock_wait_ms;
        assert!(contended > 0.0);
        d.finish_tick();
        // Repartition the table, then repeat the same access pattern.
        d.repartition_table(2);
        d.repartition_table(2);
        d.charge_access(2, 10.0, true, 5.0, false, true);
        let after = d
            .charge_access(2, 10.0, true, 5.0, false, true)
            .lock_wait_ms;
        assert!(after < contended, "after {after} vs contended {contended}");
    }

    #[test]
    fn organic_staleness_builds_with_writes_and_update_statistics_fixes_it() {
        let mut d = DatabaseTier::new(2, 1200, 500, 100);
        for _ in 0..200 {
            d.charge_access(0, 10.0, true, 2.0, false, false);
        }
        let stale = d.table_stats(0).misestimate_factor(false);
        assert!(stale > 1.0, "statistics should be stale, factor {stale}");
        d.update_statistics(0);
        assert_eq!(d.table_stats(0).misestimate_factor(false), 1.0);
    }

    #[test]
    fn restart_clears_all_degradation() {
        let mut d = DatabaseTier::new(2, 1200, 500, 10);
        d.buffer_mut().shrink_to_fraction(0.1);
        for _ in 0..50 {
            d.charge_access(0, 10.0, true, 2.0, false, true);
        }
        d.restart();
        assert_eq!(d.table_stats(0).misestimate_factor(false), 1.0);
        let charge = d.charge_access(0, 10.0, false, 5.0, false, false);
        assert!(charge.extra_ms < 5.0);
        assert_eq!(d.table_count(), 2);
    }
}
