//! The multitier service simulator: one tick of end-to-end behaviour.

use crate::actuator::{CompletedFix, FixActuator};
use crate::config::ServiceConfig;
use crate::db::DatabaseTier;
use crate::ejb::EjbGraph;
use crate::faults_runtime::{ActiveFaults, SimTier};
use crate::metrics::MetricsCatalog;
use crate::resource::TierResource;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selfheal_faults::{FaultId, FaultSpec, FaultTarget, FixAction, FixCatalog, FixId, FixKind};
use selfheal_telemetry::{Sample, Schema, Slo, SloMonitor, SloViolation};
use selfheal_workload::Request;

/// A fix that completed during a tick, together with the faults it repaired.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedFixReport {
    /// The fix attempt id.
    pub fix_id: FixId,
    /// The action that completed.
    pub action: FixAction,
    /// Tick at which the fix was initiated.
    pub started_at: u64,
    /// Tick at which the fix completed.
    pub completed_at: u64,
    /// Ids of the faults the fix actually repaired (ground truth; empty when
    /// the fix did not address any active fault).
    pub repaired_faults: Vec<FaultId>,
}

/// Everything observable about one simulation tick.
#[derive(Debug, Clone)]
pub struct TickOutcome {
    /// The tick that just completed.
    pub tick: u64,
    /// The metric sample emitted for the tick.
    pub sample: Sample,
    /// SLO violations confirmed during the tick.
    pub violations: Vec<SloViolation>,
    /// Requests that arrived.
    pub arrived: usize,
    /// Requests that completed successfully.
    pub completed: usize,
    /// Requests that failed (errors, timeouts, shed load).
    pub errors: usize,
    /// Fixes that finished being applied during the tick.
    pub completed_fixes: Vec<CompletedFixReport>,
}

/// The simulated three-tier service.
#[derive(Debug, Clone)]
pub struct MultiTierService {
    config: ServiceConfig,
    fix_catalog: FixCatalog,
    metrics: MetricsCatalog,
    graph: EjbGraph,
    web: TierResource,
    app: TierResource,
    db_resource: TierResource,
    db: DatabaseTier,
    faults: ActiveFaults,
    actuator: FixActuator,
    slo_monitor: SloMonitor,
    provision: [f64; 3],
    rng: StdRng,
    current_tick: u64,
    total_arrived: u64,
    total_completed: u64,
    total_errors: u64,
}

impl MultiTierService {
    /// Creates a service with the given configuration.
    pub fn new(config: ServiceConfig) -> Self {
        config.validate();
        let metrics = MetricsCatalog::build(&config);
        let slo_monitor = SloMonitor::new(
            vec![
                Slo::upper_bound("response_time", metrics.response_ms, config.slo_response_ms),
                Slo::upper_bound("error_rate", metrics.error_rate, config.slo_error_rate),
            ],
            config.slo_window,
            config.slo_confirm_after,
        );
        MultiTierService {
            graph: EjbGraph::new(config.ejb_count, config.table_count),
            web: TierResource::new("web", config.web_capacity_ms),
            app: TierResource::new("app", config.app_capacity_ms),
            db_resource: TierResource::new("db", config.db_capacity_ms),
            db: DatabaseTier::new(
                config.table_count,
                config.buffer_pool_pages,
                config.table_working_set_pages,
                config.staleness_threshold_writes,
            ),
            faults: ActiveFaults::new(),
            actuator: FixActuator::new(),
            slo_monitor,
            provision: [1.0; 3],
            rng: StdRng::seed_from_u64(config.seed),
            current_tick: 0,
            total_arrived: 0,
            total_completed: 0,
            total_errors: 0,
            metrics,
            fix_catalog: FixCatalog::standard(),
            config,
        }
    }

    /// The metric schema emitted by [`MultiTierService::tick`].
    pub fn schema(&self) -> &Schema {
        self.metrics.schema()
    }

    /// The metric-id catalogue (named handles into the schema).
    pub fn metrics(&self) -> &MetricsCatalog {
        &self.metrics
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The current tick (number of completed ticks).
    pub fn current_tick(&self) -> u64 {
        self.current_tick
    }

    /// The currently active faults (ground truth — healing policies must not
    /// read this; the benchmarks use it for scoring).
    pub fn active_faults(&self) -> &ActiveFaults {
        &self.faults
    }

    /// Returns `true` if any SLO is currently in confirmed violation.
    pub fn slo_violated(&self) -> bool {
        self.slo_monitor.any_violated()
    }

    /// Returns `true` if the SLO monitor considers the service recovered
    /// (no SLO currently trending toward violation).
    pub fn recovered(&self) -> bool {
        self.slo_monitor.recovered(1)
    }

    /// Fraction of ticks so far with at least one confirmed SLO violation.
    pub fn violation_fraction(&self) -> f64 {
        self.slo_monitor.violation_fraction()
    }

    /// Lifetime request counters: `(arrived, completed, errors)`.
    pub fn totals(&self) -> (u64, u64, u64) {
        (self.total_arrived, self.total_completed, self.total_errors)
    }

    /// Injects a fault, active from the next tick onward.
    pub fn inject(&mut self, fault: FaultSpec) {
        self.faults.activate(fault, self.current_tick);
    }

    /// Starts applying a fix.  A full service restart supersedes (cancels)
    /// any narrower fixes still in progress.
    pub fn apply_fix(&mut self, action: FixAction) -> FixId {
        if action.kind == FixKind::FullServiceRestart {
            self.actuator.cancel_all();
        }
        self.actuator.start(action, self.current_tick)
    }

    /// Returns `true` while any fix is still being applied.
    pub fn fix_in_progress(&self) -> bool {
        self.actuator.busy()
    }

    /// Simulates one tick with the given arrived requests.
    pub fn tick(&mut self, requests: &[Request]) -> TickOutcome {
        let tick = self.current_tick;

        // 1. Fixes that finish this tick take effect before traffic is served.
        let completed = self.actuator.advance_tick(tick);
        let completed_fixes: Vec<CompletedFixReport> = completed
            .into_iter()
            .map(|c| self.apply_completed_fix(c))
            .collect();

        // 2. Capacity available this tick: provisioning × fault effects,
        //    degraded further by the disruption of in-progress fixes.
        let factors = [
            (SimTier::Web, self.faults.capacity_factor(SimTier::Web)),
            (SimTier::App, self.faults.capacity_factor(SimTier::App)),
            (SimTier::Db, self.faults.capacity_factor(SimTier::Db)),
        ];
        for (tier, fault_factor) in factors {
            let provision = self.provision[tier_index(tier)];
            let disruption = self.actuator.available_fraction(tier);
            let resource = self.resource_mut(tier);
            resource.set_capacity_factor(provision * fault_factor);
            resource.set_disruption(disruption);
        }

        // 3. Buffer-related faults shrink the effective buffer pool.
        if let Some(severity) = self.faults.buffer_fault_severity() {
            self.db
                .buffer_mut()
                .shrink_to_fraction(1.0 - 0.85 * severity);
        }

        // 4. Route every request through the tiers.
        let mut web_demand = 0.0;
        let mut app_demand = 0.0;
        let mut db_demand = 0.0;
        let mut extra_latency_total = 0.0;
        let mut errors = 0usize;
        let mut ejb_calls = vec![0.0; self.config.ejb_count];
        let mut ejb_errors = vec![0.0; self.config.ejb_count];
        let mut table_accesses = vec![0.0; self.config.table_count];

        let service_error_p = self.faults.service_error_probability();
        let network_extra = self.faults.network_extra_latency_ms();

        for request in requests {
            let demand = request.kind.demand();
            let path = self.graph.path(request.kind);

            // Per-EJB call accounting (invasive instrumentation).
            for (ejb, calls) in &path.ejb_calls {
                ejb_calls[*ejb] += *calls as f64;
            }

            // Does the request fail outright?
            let mut failed = self.rng.gen_bool(service_error_p.clamp(0.0, 1.0));
            let mut extra_latency = network_extra;
            for (ejb, _) in &path.ejb_calls {
                let p = self.faults.ejb_error_probability(*ejb);
                if p > 0.0 && self.rng.gen_bool(p.clamp(0.0, 1.0)) {
                    failed = true;
                    ejb_errors[*ejb] += 1.0;
                }
                extra_latency += self.faults.ejb_extra_latency_ms(*ejb);
            }

            // Database work: split the nominal DB demand across the accessed
            // tables proportionally to the rows each access touches.
            let total_rows: f64 = path.table_accesses.iter().map(|(_, r, _)| *r).sum();
            let mut request_db_ms = 0.0;
            let mut request_lock_ms = 0.0;
            for (table, rows, is_write) in &path.table_accesses {
                table_accesses[*table] += 1.0;
                let share = if total_rows > 0.0 {
                    rows / total_rows
                } else {
                    1.0
                };
                let nominal_ms = demand.db_ms * share;
                let charge = self.db.charge_access(
                    *table,
                    *rows,
                    *is_write,
                    nominal_ms,
                    self.faults.plan_fault(*table),
                    self.faults.contention_fault(*table),
                );
                if *is_write {
                    self.db.buffer_mut().record_write(*rows);
                }
                // Lock waits occupy a database worker/connection while the
                // request waits, so they consume tier capacity as well as
                // adding to the request's latency.
                request_db_ms += nominal_ms + charge.extra_ms + charge.lock_wait_ms;
                request_lock_ms += charge.lock_wait_ms;
            }

            // Failed requests abort partway through and consume roughly half
            // of their nominal demand.
            let scale = if failed { 0.5 } else { 1.0 };
            web_demand += demand.web_ms * scale;
            app_demand += demand.app_ms * scale;
            db_demand += request_db_ms * scale;
            extra_latency_total += extra_latency + request_lock_ms;
            if failed {
                errors += 1;
            }
        }

        // 5. Offer aggregate demand to the tiers.
        let web_tick = self.web.offer(web_demand);
        let app_tick = self.app.offer(app_demand);
        let db_tick = self.db_resource.offer(db_demand);

        // Overloaded tiers shed work: those requests count as errors.
        let arrived = requests.len();
        let shed_fraction = web_tick
            .shed_fraction
            .max(app_tick.shed_fraction)
            .max(db_tick.shed_fraction)
            .clamp(0.0, 1.0);
        let shed = ((arrived - errors) as f64 * shed_fraction).round() as usize;
        errors = (errors + shed).min(arrived);
        let completed_requests = arrived - errors;

        // 6. Mean end-to-end response time of the tick's requests.
        let mean_response_ms = if arrived > 0 {
            let n = arrived as f64;
            (web_demand / n) * web_tick.latency_multiplier
                + (app_demand / n) * app_tick.latency_multiplier
                + (db_demand / n) * db_tick.latency_multiplier
                + extra_latency_total / n
        } else {
            0.0
        };

        // 7. Emit the metric sample.
        let db_counters = self.db.finish_tick();
        let m = &self.metrics;
        let mut sample = Sample::zeroed(m.schema(), tick);
        sample.set(m.response_ms, mean_response_ms);
        sample.set(m.throughput, completed_requests as f64);
        sample.set(m.arrivals, arrived as f64);
        sample.set(
            m.error_rate,
            if arrived > 0 {
                errors as f64 / arrived as f64
            } else {
                0.0
            },
        );
        sample.set(m.web_util, web_tick.utilization);
        sample.set(m.app_util, app_tick.utilization);
        sample.set(m.db_util, db_tick.utilization);
        sample.set(m.web_queue_ms, web_tick.backlog_ms);
        sample.set(m.app_queue_ms, app_tick.backlog_ms);
        sample.set(m.db_queue_ms, db_tick.backlog_ms);
        sample.set(m.buffer_miss_rate, db_counters.buffer_miss_rate);
        sample.set(m.rows_read, db_counters.rows_read);
        sample.set(m.rows_written, db_counters.rows_written);
        sample.set(m.lock_wait_ms, db_counters.lock_wait_ms);
        sample.set(m.plan_misestimate, db_counters.plan_misestimate);
        for (i, calls) in ejb_calls.iter().enumerate() {
            sample.set(m.ejb_calls[i], *calls);
        }
        for (i, errs) in ejb_errors.iter().enumerate() {
            sample.set(m.ejb_errors[i], *errs);
        }
        for (j, accesses) in table_accesses.iter().enumerate() {
            sample.set(m.table_accesses[j], *accesses);
        }

        // 8. Failure detection.
        let violations = self.slo_monitor.observe(&sample);

        // 9. Bookkeeping.
        self.total_arrived += arrived as u64;
        self.total_completed += completed_requests as u64;
        self.total_errors += errors as u64;
        self.faults.advance_tick();
        self.current_tick += 1;

        TickOutcome {
            tick,
            sample,
            violations,
            arrived,
            completed: completed_requests,
            errors,
            completed_fixes,
        }
    }

    fn resource_mut(&mut self, tier: SimTier) -> &mut TierResource {
        match tier {
            SimTier::Web => &mut self.web,
            SimTier::App => &mut self.app,
            SimTier::Db => &mut self.db_resource,
        }
    }

    /// Applies the state changes of a fix that just completed and removes
    /// the faults it repairs.
    fn apply_completed_fix(&mut self, completed: CompletedFix) -> CompletedFixReport {
        let action = completed.action;
        // Side effects of the repair mechanism itself.
        match action.kind {
            FixKind::UpdateStatistics | FixKind::RebuildIndex => {
                if let Some(FaultTarget::Table { index }) = action.target {
                    self.db.update_statistics(index);
                } else {
                    for t in 0..self.config.table_count {
                        self.db.update_statistics(t);
                    }
                }
            }
            FixKind::RepartitionTable => {
                if let Some(FaultTarget::Table { index }) = action.target {
                    self.db.repartition_table(index);
                }
            }
            FixKind::RepartitionMemory | FixKind::RollbackConfiguration => {
                self.db.repartition_memory();
            }
            FixKind::ProvisionResources => {
                if let Some(target) = action.target {
                    if let Some(tier) = SimTier::of_target(&target) {
                        self.provision[tier_index(tier)] =
                            (self.provision[tier_index(tier)] * 1.6).min(4.0);
                    }
                }
            }
            FixKind::RebootTier => {
                if let Some(target) = action.target {
                    match SimTier::of_target(&target) {
                        Some(SimTier::Web) => self.web.flush(),
                        Some(SimTier::App) => self.app.flush(),
                        Some(SimTier::Db) => {
                            self.db_resource.flush();
                            self.db.restart();
                        }
                        None => {}
                    }
                }
            }
            FixKind::FullServiceRestart => {
                self.web.flush();
                self.app.flush();
                self.db_resource.flush();
                self.db.restart();
                self.slo_monitor.reset();
            }
            FixKind::NotifyAdministrator => {
                // The administrator eventually repairs whatever is wrong:
                // modelled as a full restart's worth of cleanup without the
                // automated side effects.
                self.db.restart();
            }
            _ => {}
        }

        let repaired_faults = if action.kind == FixKind::NotifyAdministrator {
            // Human intervention repairs everything, at human timescales.
            self.faults.clear()
        } else {
            self.faults.resolve_with_fix(&action, &self.fix_catalog)
        };

        CompletedFixReport {
            fix_id: completed.id,
            action,
            started_at: completed.started_at,
            completed_at: completed.completed_at,
            repaired_faults,
        }
    }
}

fn tier_index(tier: SimTier) -> usize {
    match tier {
        SimTier::Web => 0,
        SimTier::App => 1,
        SimTier::Db => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_faults::FaultKind;
    use selfheal_workload::{ArrivalProcess, TraceGenerator, WorkloadMix};

    fn workload() -> TraceGenerator {
        TraceGenerator::new(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
            7,
        )
    }

    fn run_ticks(
        service: &mut MultiTierService,
        gen: &mut TraceGenerator,
        n: u64,
    ) -> Vec<TickOutcome> {
        (0..n)
            .map(|_| {
                let t = service.current_tick();
                let requests = gen.tick(t);
                service.tick(&requests)
            })
            .collect()
    }

    #[test]
    fn healthy_service_meets_its_slos() {
        let mut service = MultiTierService::new(ServiceConfig::tiny());
        let mut gen = workload();
        let outcomes = run_ticks(&mut service, &mut gen, 60);
        assert!(!service.slo_violated());
        let last = outcomes.last().unwrap();
        assert!(last.errors == 0, "healthy service should not error");
        assert!(last.sample.get(service.metrics().response_ms) < service.config().slo_response_ms);
        let (arrived, completed, errors) = service.totals();
        assert_eq!(arrived, completed + errors);
        assert_eq!(service.violation_fraction(), 0.0);
    }

    #[test]
    fn database_bottleneck_violates_the_response_time_slo() {
        let mut service = MultiTierService::new(ServiceConfig::tiny());
        let mut gen = workload();
        run_ticks(&mut service, &mut gen, 20);
        service.inject(FaultSpec::new(
            FaultId(1),
            FaultKind::BottleneckedTier,
            FaultTarget::DatabaseTier,
            0.95,
        ));
        let outcomes = run_ticks(&mut service, &mut gen, 40);
        assert!(service.slo_violated(), "bottleneck must violate the SLO");
        let violated = outcomes.iter().any(|o| !o.violations.is_empty());
        assert!(violated);
        // The symptom is visible in the db utilization metric.
        let db_util = outcomes
            .last()
            .unwrap()
            .sample
            .get(service.metrics().db_util);
        assert!(db_util > 0.9, "db utilization {db_util}");
    }

    #[test]
    fn unhandled_exception_raises_the_error_rate_for_its_ejb() {
        let mut service = MultiTierService::new(ServiceConfig::tiny());
        let mut gen = workload();
        run_ticks(&mut service, &mut gen, 10);
        // EJB 1 is the QueryEngine used by browse/search requests.
        service.inject(FaultSpec::new(
            FaultId(2),
            FaultKind::UnhandledException,
            FaultTarget::Ejb { index: 1 },
            0.9,
        ));
        let outcomes = run_ticks(&mut service, &mut gen, 30);
        let last = outcomes.last().unwrap();
        let m = service.metrics();
        assert!(last.sample.get(m.error_rate) > 0.1);
        assert!(last.sample.get(m.ejb_errors[1]) > 0.0);
        assert_eq!(last.sample.get(m.ejb_errors[3]), 0.0);
        assert!(service.slo_violated());
    }

    #[test]
    fn targeted_microreboot_recovers_the_service() {
        let mut service = MultiTierService::new(ServiceConfig::tiny());
        let mut gen = workload();
        run_ticks(&mut service, &mut gen, 10);
        service.inject(FaultSpec::new(
            FaultId(3),
            FaultKind::UnhandledException,
            FaultTarget::Ejb { index: 1 },
            0.9,
        ));
        run_ticks(&mut service, &mut gen, 20);
        assert!(service.slo_violated());

        service.apply_fix(FixAction::targeted(
            FixKind::MicrorebootEjb,
            FaultTarget::Ejb { index: 1 },
        ));
        let outcomes = run_ticks(&mut service, &mut gen, 30);
        assert!(
            !service.slo_violated(),
            "microreboot should clear the violation"
        );
        assert!(service.active_faults().is_empty());
        let repaired: Vec<_> = outcomes
            .iter()
            .flat_map(|o| o.completed_fixes.iter())
            .filter(|f| !f.repaired_faults.is_empty())
            .collect();
        assert_eq!(repaired.len(), 1);
    }

    #[test]
    fn wrong_fix_does_not_repair_the_fault() {
        let mut service = MultiTierService::new(ServiceConfig::tiny());
        let mut gen = workload();
        run_ticks(&mut service, &mut gen, 10);
        service.inject(FaultSpec::new(
            FaultId(4),
            FaultKind::BufferContention,
            FaultTarget::DatabaseTier,
            0.9,
        ));
        run_ticks(&mut service, &mut gen, 15);
        service.apply_fix(FixAction::targeted(
            FixKind::MicrorebootEjb,
            FaultTarget::Ejb { index: 0 },
        ));
        run_ticks(&mut service, &mut gen, 15);
        assert_eq!(
            service.active_faults().len(),
            1,
            "fault must survive the wrong fix"
        );
    }

    #[test]
    fn full_restart_repairs_but_disrupts() {
        let mut service = MultiTierService::new(ServiceConfig::tiny());
        let mut gen = workload();
        run_ticks(&mut service, &mut gen, 10);
        service.inject(FaultSpec::new(
            FaultId(5),
            FaultKind::SoftwareAging,
            FaultTarget::AppTier,
            0.9,
        ));
        run_ticks(&mut service, &mut gen, 30);
        service.apply_fix(FixAction::untargeted(FixKind::FullServiceRestart));
        assert!(service.fix_in_progress());
        // While the restart runs the service completes little to no work.
        let during = run_ticks(&mut service, &mut gen, 5);
        let total_completed: usize = during.iter().map(|o| o.completed).sum();
        let total_arrived: usize = during.iter().map(|o| o.arrived).sum();
        assert!(
            (total_completed as f64) < 0.6 * total_arrived as f64,
            "restart should disrupt traffic: completed {total_completed} of {total_arrived}"
        );
        // After the restart's duration the fault is gone.
        run_ticks(&mut service, &mut gen, 400);
        assert!(service.active_faults().is_empty());
        assert!(!service.slo_violated());
    }

    #[test]
    fn suboptimal_plan_fault_shows_up_in_plan_metrics_and_stats_update_fixes_it() {
        let mut service = MultiTierService::new(ServiceConfig::tiny());
        let mut gen = workload();
        run_ticks(&mut service, &mut gen, 10);
        service.inject(FaultSpec::new(
            FaultId(6),
            FaultKind::SuboptimalQueryPlan,
            FaultTarget::Table { index: 0 },
            0.9,
        ));
        let during = run_ticks(&mut service, &mut gen, 20);
        let response_id = service.metrics().response_ms;
        let resp_during = during.last().unwrap().sample.get(response_id);
        service.apply_fix(FixAction::targeted(
            FixKind::UpdateStatistics,
            FaultTarget::Table { index: 0 },
        ));
        let after = run_ticks(&mut service, &mut gen, 40);
        assert!(service.active_faults().is_empty());
        let resp_after = after.last().unwrap().sample.get(response_id);
        assert!(
            resp_after < resp_during,
            "response time should improve after statistics update ({resp_after} vs {resp_during})"
        );
    }

    #[test]
    fn empty_tick_is_well_formed() {
        let mut service = MultiTierService::new(ServiceConfig::tiny());
        let outcome = service.tick(&[]);
        assert_eq!(outcome.arrived, 0);
        assert_eq!(outcome.completed, 0);
        assert_eq!(outcome.errors, 0);
        assert!(outcome.sample.is_finite());
        assert_eq!(outcome.sample.get(service.metrics().throughput), 0.0);
    }
}
