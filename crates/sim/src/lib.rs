//! # selfheal-sim
//!
//! A discrete-event simulator of a database-centric three-tier service
//! (web tier → EJB application tier → database tier), modeled on the RUBiS
//! auction site that *Toward Self-Healing Multitier Services* (Cook et al.,
//! ICDE 2007) uses as its running example.
//!
//! The paper's own evaluation ran "on a simulator for a multitier service
//! that generates time-series data corresponding to different failed and
//! working service states"; this crate is that simulator, built so the
//! learning and diagnosis layers can be evaluated end to end:
//!
//! * [`config::ServiceConfig`] — topology and capacity of the three tiers,
//!   the EJB components, and the database schema.
//! * [`resource::TierResource`] — the per-tier queueing/capacity model
//!   (utilization, backlog, latency inflation, overload).
//! * [`ejb`] — the EJB components of the application tier and the call graph
//!   mapping each request kind to the EJBs it invokes.
//! * [`db`] — the database tier internals: buffer pool, per-table optimizer
//!   statistics (with staleness), a cost-based plan-quality model, and a
//!   lock manager for block contention.
//! * [`faults_runtime::ActiveFaults`] — the set of currently active faults
//!   and how each one perturbs demand, capacity, error rates, and latency.
//! * [`actuator::FixActuator`] — applies [`selfheal_faults::FixAction`]s to
//!   the running service, charging the fix's duration and disruption, and
//!   removing the faults the fix actually repairs (per the ground-truth
//!   catalog).
//! * [`service::MultiTierService`] — one simulation tick: admit workload,
//!   route it through the tiers, apply fault effects, emit one metric
//!   [`selfheal_telemetry::Sample`].
//! * [`scenario::ScenarioRunner`] — drives the service over a workload, an
//!   injection plan, and a pluggable [`scenario::Healer`], recording SLO
//!   violations, failure episodes, and recovery times.
//! * [`statesgen::FailureStateGenerator`] — produces labelled
//!   (symptom-vector, correct-fix) datasets for the Figure 4 / Table 3
//!   synopsis experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod actuator;
pub mod config;
pub mod db;
pub mod ejb;
pub mod faults_runtime;
pub mod metrics;
pub mod recovery;
pub mod resource;
pub mod scenario;
pub mod seeds;
pub mod service;
pub mod statesgen;

pub use actuator::FixActuator;
pub use config::ServiceConfig;
pub use recovery::{FailureEpisode, RecoveryLog};
pub use scenario::{Healer, NoHealing, ScenarioOutcome, ScenarioRunner};
pub use seeds::{split_seed, SeedStream};
pub use service::{MultiTierService, TickOutcome};
pub use statesgen::{FailureState, FailureStateGenerator};
