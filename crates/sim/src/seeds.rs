//! Deterministic RNG stream splitting for fleets of replicas.
//!
//! Every source of randomness in a replica (the service's internal jitter,
//! the workload trace, the failure-state generator) is seeded from a single
//! 64-bit value.  A fleet needs each replica's streams to be (a) decorrelated
//! from its siblings and (b) a pure function of `(base_seed, replica_index)`
//! — never of thread scheduling or fleet size — so that replica `i` behaves
//! bit-identically whether it runs alone, in a fleet of 4, or in a fleet of
//! 64.
//!
//! [`split_seed`] provides that: a SplitMix64-style finalizer over the
//! `(base, index, stream)` triple.  Its avalanche behaviour means adjacent
//! replica indices land in unrelated regions of the generator's state space,
//! which plain `base + index` seeding does not guarantee.

/// Distinguishes the independent streams a single replica consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedStream {
    /// The simulated service's internal randomness (`ServiceConfig::seed`).
    Service,
    /// The workload trace generator.
    Workload,
    /// The fault source (stochastic demographic fault generation).
    Faults,
}

impl SeedStream {
    fn salt(self) -> u64 {
        match self {
            SeedStream::Service => 0x5E51_1CE5_0000_0001,
            SeedStream::Workload => 0x3A01_0AD5_0000_0002,
            SeedStream::Faults => 0xFA07_5EED_0000_0003,
        }
    }
}

/// Derives the seed for one stream of one replica from the fleet's base
/// seed.  Pure, stateless, and avalanche-mixed.
pub fn split_seed(base: u64, replica: u64, stream: SeedStream) -> u64 {
    let mut z = base
        .wrapping_add(replica.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(stream.salt());
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_deterministic() {
        assert_eq!(
            split_seed(42, 3, SeedStream::Workload),
            split_seed(42, 3, SeedStream::Workload)
        );
    }

    #[test]
    fn replicas_and_streams_decorrelate() {
        let mut seen = std::collections::HashSet::new();
        for replica in 0..64 {
            for stream in [
                SeedStream::Service,
                SeedStream::Workload,
                SeedStream::Faults,
            ] {
                assert!(
                    seen.insert(split_seed(7, replica, stream)),
                    "collision at replica {replica} {stream:?}"
                );
            }
        }
    }

    #[test]
    fn adjacent_replicas_differ_in_many_bits() {
        for replica in 0..16u64 {
            let a = split_seed(1, replica, SeedStream::Service);
            let b = split_seed(1, replica + 1, SeedStream::Service);
            let differing = (a ^ b).count_ones();
            assert!(
                differing >= 16,
                "only {differing} differing bits at replica {replica}"
            );
        }
    }
}
