//! Service topology and capacity configuration.

use selfheal_telemetry::SloTargets;
use serde::{Deserialize, Serialize};

/// Configuration of the simulated three-tier service.
///
/// Capacities are expressed in milliseconds of service time available per
/// tick (one tick ≈ one second of wall-clock service time); a tier with
/// `capacity_ms = 4000` behaves like four fully parallel workers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Number of EJB components in the application tier.
    pub ejb_count: usize,
    /// Number of tables in the database schema.
    pub table_count: usize,
    /// Web-tier capacity (ms of service per tick).
    pub web_capacity_ms: f64,
    /// Application-tier capacity (ms of service per tick).
    pub app_capacity_ms: f64,
    /// Database-tier capacity (ms of service per tick).
    pub db_capacity_ms: f64,
    /// Database buffer pool size, in pages.
    pub buffer_pool_pages: u64,
    /// Working-set size of each table, in pages (all tables use the same
    /// nominal working set; hot tables are modelled through access counts).
    pub table_working_set_pages: u64,
    /// Number of writes to a table after which its optimizer statistics are
    /// considered stale (drives the organic plan-quality degradation of
    /// Example 5 in the paper).
    pub staleness_threshold_writes: u64,
    /// Mean response-time SLO threshold (ms).
    pub slo_response_ms: f64,
    /// Error-rate SLO threshold (fraction of requests).
    pub slo_error_rate: f64,
    /// Throughput-floor SLO (requests per tick), applied only when offered
    /// load is above it.
    pub slo_throughput_floor: f64,
    /// Number of samples in the SLO evaluation window.
    pub slo_window: usize,
    /// Consecutive violating evaluations needed to confirm a failure.
    pub slo_confirm_after: u32,
    /// Seed for the service's internal randomness (latency jitter).
    pub seed: u64,
}

impl ServiceConfig {
    /// A small RUBiS-like service: 8 EJBs, 6 tables, capacities sized so the
    /// default workloads run at 10–40% utilization and leave headroom for
    /// faults to push individual tiers into saturation.
    pub fn rubis_default() -> Self {
        ServiceConfig {
            ejb_count: 8,
            table_count: 6,
            web_capacity_ms: 320.0,
            app_capacity_ms: 500.0,
            db_capacity_ms: 750.0,
            buffer_pool_pages: 6_000,
            table_working_set_pages: 900,
            staleness_threshold_writes: 50_000,
            slo_response_ms: 150.0,
            slo_error_rate: 0.05,
            slo_throughput_floor: 5.0,
            slo_window: 5,
            slo_confirm_after: 2,
            seed: 0xC0FFEE,
        }
    }

    /// A smaller, faster-to-simulate configuration used by unit tests.
    pub fn tiny() -> Self {
        ServiceConfig {
            ejb_count: 4,
            table_count: 3,
            buffer_pool_pages: 1_800,
            table_working_set_pages: 500,
            ..ServiceConfig::rubis_default()
        }
    }

    /// The SLO thresholds the healing layer cares about, bundled for healer
    /// constructors.
    pub fn slo_targets(&self) -> SloTargets {
        SloTargets::new(self.slo_response_ms, self.slo_error_rate)
    }

    /// Validates invariants, panicking with a descriptive message when the
    /// configuration is unusable.
    pub fn validate(&self) {
        assert!(self.ejb_count > 0, "service needs at least one EJB");
        assert!(self.table_count > 0, "service needs at least one table");
        assert!(self.web_capacity_ms > 0.0, "web capacity must be positive");
        assert!(self.app_capacity_ms > 0.0, "app capacity must be positive");
        assert!(self.db_capacity_ms > 0.0, "db capacity must be positive");
        assert!(self.buffer_pool_pages > 0, "buffer pool must have pages");
        assert!(self.slo_window > 0, "SLO window must be positive");
        assert!(
            self.slo_confirm_after > 0,
            "SLO confirmation count must be positive"
        );
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::rubis_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration_is_valid() {
        ServiceConfig::rubis_default().validate();
        ServiceConfig::tiny().validate();
        assert_eq!(ServiceConfig::default(), ServiceConfig::rubis_default());
    }

    #[test]
    fn tiny_is_smaller_than_default() {
        let tiny = ServiceConfig::tiny();
        let full = ServiceConfig::rubis_default();
        assert!(tiny.ejb_count < full.ejb_count);
        assert!(tiny.table_count < full.table_count);
    }

    #[test]
    #[should_panic(expected = "at least one EJB")]
    fn zero_ejbs_is_rejected() {
        ServiceConfig {
            ejb_count: 0,
            ..ServiceConfig::tiny()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "db capacity must be positive")]
    fn nonpositive_capacity_is_rejected() {
        ServiceConfig {
            db_capacity_ms: 0.0,
            ..ServiceConfig::tiny()
        }
        .validate();
    }
}
