//! The service's metric schema (the attributes `X1..Xn` of Section 4.2).

use crate::config::ServiceConfig;
use selfheal_telemetry::{
    InstrumentationCost, MetricDef, MetricId, MetricKind, Schema, SchemaBuilder, Tier,
};

/// The metric ids the simulator writes each tick, resolved once at startup.
#[derive(Debug, Clone)]
pub struct MetricsCatalog {
    schema: Schema,
    /// Mean end-to-end response time (ms).
    pub response_ms: MetricId,
    /// Requests completed this tick.
    pub throughput: MetricId,
    /// Requests arrived this tick.
    pub arrivals: MetricId,
    /// Fraction of requests that failed this tick.
    pub error_rate: MetricId,
    /// Per-tier utilization: web, app, db.
    pub web_util: MetricId,
    /// Application-tier utilization.
    pub app_util: MetricId,
    /// Database-tier utilization.
    pub db_util: MetricId,
    /// Per-tier queue backlog (ms): web, app, db.
    pub web_queue_ms: MetricId,
    /// Application-tier queue backlog (ms).
    pub app_queue_ms: MetricId,
    /// Database-tier queue backlog (ms).
    pub db_queue_ms: MetricId,
    /// Buffer-pool miss rate.
    pub buffer_miss_rate: MetricId,
    /// Rows read this tick.
    pub rows_read: MetricId,
    /// Rows written this tick.
    pub rows_written: MetricId,
    /// Lock wait accumulated this tick (ms).
    pub lock_wait_ms: MetricId,
    /// Mean optimizer misestimate factor (actual/estimated rows).
    pub plan_misestimate: MetricId,
    /// Per-EJB method invocation counts (invasive instrumentation).
    pub ejb_calls: Vec<MetricId>,
    /// Per-EJB error counts (invasive instrumentation).
    pub ejb_errors: Vec<MetricId>,
    /// Per-table access counts (invasive instrumentation).
    pub table_accesses: Vec<MetricId>,
}

impl MetricsCatalog {
    /// Builds the schema for a service with the given configuration.
    pub fn build(config: &ServiceConfig) -> Self {
        let mut b = SchemaBuilder::new()
            .metric_def(
                MetricDef::new("svc.response_ms", Tier::Service, MetricKind::LatencyMs)
                    .with_description("mean end-to-end response time of completed requests"),
            )
            .metric_def(
                MetricDef::new("svc.throughput", Tier::Service, MetricKind::Count)
                    .with_description("requests completed in the tick"),
            )
            .metric_def(
                MetricDef::new("svc.arrivals", Tier::Service, MetricKind::Count)
                    .with_description("requests that arrived in the tick"),
            )
            .metric_def(
                MetricDef::new("svc.error_rate", Tier::Service, MetricKind::Ratio)
                    .with_description("fraction of requests that failed in the tick"),
            )
            .metric("web.util", Tier::Web, MetricKind::Utilization)
            .metric("app.util", Tier::App, MetricKind::Utilization)
            .metric("db.util", Tier::Database, MetricKind::Utilization)
            .metric("web.queue_ms", Tier::Web, MetricKind::Gauge)
            .metric("app.queue_ms", Tier::App, MetricKind::Gauge)
            .metric("db.queue_ms", Tier::Database, MetricKind::Gauge)
            .metric("db.buffer_miss_rate", Tier::Database, MetricKind::Ratio)
            .metric("db.rows_read", Tier::Database, MetricKind::Count)
            .metric("db.rows_written", Tier::Database, MetricKind::Count)
            .metric("db.lock_wait_ms", Tier::Database, MetricKind::Gauge)
            .metric_def(
                MetricDef::new("db.plan_misestimate", Tier::Database, MetricKind::Gauge)
                    .with_cost(InstrumentationCost::Invasive)
                    .with_description("mean ratio of actual to estimated rows across query plans"),
            );

        for i in 0..config.ejb_count {
            b = b.metric_def(
                MetricDef::new(format!("app.ejb{i}_calls"), Tier::App, MetricKind::Count)
                    .with_cost(InstrumentationCost::Invasive)
                    .with_description(format!("method invocations of EJB {i}")),
            );
        }
        for i in 0..config.ejb_count {
            b = b.metric_def(
                MetricDef::new(format!("app.ejb{i}_errors"), Tier::App, MetricKind::Count)
                    .with_cost(InstrumentationCost::Invasive)
                    .with_description(format!("failed requests attributed to EJB {i}")),
            );
        }
        for j in 0..config.table_count {
            b = b.metric_def(
                MetricDef::new(
                    format!("db.table{j}_accesses"),
                    Tier::Database,
                    MetricKind::Count,
                )
                .with_cost(InstrumentationCost::Invasive)
                .with_description(format!("accesses to table {j}")),
            );
        }

        let schema = b.build();
        MetricsCatalog {
            response_ms: schema.expect_id("svc.response_ms"),
            throughput: schema.expect_id("svc.throughput"),
            arrivals: schema.expect_id("svc.arrivals"),
            error_rate: schema.expect_id("svc.error_rate"),
            web_util: schema.expect_id("web.util"),
            app_util: schema.expect_id("app.util"),
            db_util: schema.expect_id("db.util"),
            web_queue_ms: schema.expect_id("web.queue_ms"),
            app_queue_ms: schema.expect_id("app.queue_ms"),
            db_queue_ms: schema.expect_id("db.queue_ms"),
            buffer_miss_rate: schema.expect_id("db.buffer_miss_rate"),
            rows_read: schema.expect_id("db.rows_read"),
            rows_written: schema.expect_id("db.rows_written"),
            lock_wait_ms: schema.expect_id("db.lock_wait_ms"),
            plan_misestimate: schema.expect_id("db.plan_misestimate"),
            ejb_calls: (0..config.ejb_count)
                .map(|i| schema.expect_id(&format!("app.ejb{i}_calls")))
                .collect(),
            ejb_errors: (0..config.ejb_count)
                .map(|i| schema.expect_id(&format!("app.ejb{i}_errors")))
                .collect(),
            table_accesses: (0..config.table_count)
                .map(|j| schema.expect_id(&format!("db.table{j}_accesses")))
                .collect(),
            schema,
        }
    }

    /// The full schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_width_matches_topology() {
        let config = ServiceConfig::tiny();
        let catalog = MetricsCatalog::build(&config);
        let expected = 15 + 2 * config.ejb_count + config.table_count;
        assert_eq!(catalog.schema().len(), expected);
        assert_eq!(catalog.ejb_calls.len(), config.ejb_count);
        assert_eq!(catalog.ejb_errors.len(), config.ejb_count);
        assert_eq!(catalog.table_accesses.len(), config.table_count);
    }

    #[test]
    fn per_component_metrics_are_invasive() {
        let config = ServiceConfig::tiny();
        let catalog = MetricsCatalog::build(&config);
        let schema = catalog.schema();
        for id in catalog.ejb_calls.iter().chain(&catalog.table_accesses) {
            assert_eq!(schema.def(*id).cost, InstrumentationCost::Invasive);
        }
        assert_eq!(
            schema.def(catalog.response_ms).cost,
            InstrumentationCost::NonInvasive
        );
        assert_eq!(
            schema.def(catalog.web_util).cost,
            InstrumentationCost::NonInvasive
        );
    }

    #[test]
    fn metric_names_are_resolvable_by_name() {
        let catalog = MetricsCatalog::build(&ServiceConfig::rubis_default());
        let schema = catalog.schema();
        assert_eq!(schema.expect_id("svc.response_ms"), catalog.response_ms);
        assert_eq!(schema.expect_id("app.ejb0_calls"), catalog.ejb_calls[0]);
        assert_eq!(
            schema.expect_id("db.table5_accesses"),
            catalog.table_accesses[5]
        );
    }
}
