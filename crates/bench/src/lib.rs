//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
//! for the recorded results).
//!
//! Each `fig*` / `table*` function returns a
//! [`selfheal_telemetry::export::ResultTable`] so the binary front-ends can
//! print it and write it as CSV, and the Criterion benches can time the
//! underlying computation on reduced sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;

use selfheal_core::fixsym::FixSymEngine;
use selfheal_core::harness::{PolicyChoice, SelfHealingService};
use selfheal_core::synopsis::SynopsisKind;
use selfheal_faults::{
    injection::default_target, FailureCause, FaultId, FaultKind, FaultSpec, FaultTarget, FixAction,
    FixCatalog, FixKind, InjectionPlanBuilder, RecoveryTimeModel, ServiceProfile,
};
use selfheal_learn::Dataset;
use selfheal_sim::{FailureStateGenerator, MultiTierService, ServiceConfig};
use selfheal_telemetry::export::ResultTable;
use selfheal_workload::{ArrivalProcess, TraceGenerator, WorkloadMix};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters controlling experiment sizes, so the Criterion benches can run
/// reduced versions of the same code paths.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Number of failure states in the fixed test set (paper: 1000).
    pub test_states: usize,
    /// Maximum number of correct fixes to learn from (paper: up to ~100).
    pub max_correct_fixes: usize,
    /// Number of failures sampled per service profile for Figure 1.
    pub failures_per_profile: usize,
    /// Ticks per policy run for the Table 2 comparison.
    pub comparison_ticks: u64,
}

impl ExperimentScale {
    /// The full scale used by the `cargo run` binaries (matches the paper's
    /// test-set size).
    pub fn full() -> Self {
        ExperimentScale {
            test_states: 1000,
            max_correct_fixes: 100,
            failures_per_profile: 2000,
            comparison_ticks: 2500,
        }
    }

    /// A reduced scale for Criterion benches and smoke tests.
    pub fn quick() -> Self {
        ExperimentScale {
            test_states: 60,
            max_correct_fixes: 20,
            failures_per_profile: 200,
            comparison_ticks: 400,
        }
    }
}

/// The fault kinds used by the synopsis experiments: the Table 1 classes,
/// which are exactly the failures a production J2EE service keeps re-living.
pub fn synopsis_fault_kinds() -> Vec<FaultKind> {
    FaultKind::TABLE1.to_vec()
}

/// **Figure 1** — causes of failures in three large multitier services.
///
/// For each service archetype the configured cause mix is sampled
/// `failures_per_profile` times and the observed shares are reported; the
/// reproduced claim is the *shape*: operator error is the largest share in
/// every service, followed by software.
pub fn fig1_failure_causes(scale: ExperimentScale, seed: u64) -> ResultTable {
    let mut table = ResultTable::new(
        "Figure 1: causes of failures in three multitier services (fraction of failures)",
        FailureCause::ALL
            .iter()
            .map(|c| c.label().to_string())
            .collect(),
    );
    let mut rng = StdRng::seed_from_u64(seed);
    for profile in ServiceProfile::ALL {
        let mut counts = vec![0usize; FailureCause::ALL.len()];
        for _ in 0..scale.failures_per_profile {
            let (cause, _kind) = profile.sample_kind(&mut rng);
            let idx = FailureCause::ALL
                .iter()
                .position(|c| *c == cause)
                .expect("known cause");
            counts[idx] += 1;
        }
        let total = scale.failures_per_profile.max(1) as f64;
        table.push_row(
            profile.name(),
            counts.iter().map(|c| *c as f64 / total).collect(),
        );
    }
    table
}

/// **Figure 2** — time to recover from failures, by cause category.
///
/// Reports the mean *manual* recovery time (minutes) drawn from the
/// per-cause recovery model for each service archetype, alongside the mean
/// recovery time achieved by the automated FixSym+diagnosis hybrid on the
/// same cause (simulated, converted to minutes).  The reproduced claims:
/// operator-caused failures take the longest to recover manually, and
/// automated healing recovers orders of magnitude faster than the human
/// loop for the causes it can address.
pub fn fig2_recovery_time(scale: ExperimentScale, seed: u64) -> ResultTable {
    let model = RecoveryTimeModel::standard();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut table = ResultTable::new(
        "Figure 2: mean time to recover per failure cause (minutes)",
        vec![
            "operator".to_string(),
            "hardware".to_string(),
            "software".to_string(),
            "network".to_string(),
            "unknown".to_string(),
        ],
    );
    let samples = scale.failures_per_profile.max(10);
    for profile in ServiceProfile::ALL {
        let row: Vec<f64> = [
            FailureCause::Operator,
            FailureCause::Hardware,
            FailureCause::Software,
            FailureCause::Network,
            FailureCause::Unknown,
        ]
        .iter()
        .map(|cause| {
            (0..samples)
                .map(|_| model.sample_minutes(*cause, &mut rng))
                .sum::<f64>()
                / samples as f64
        })
        .collect();
        table.push_row(format!("{} (manual)", profile.name()), row);
    }

    // Automated self-healing comparison on the software causes the hybrid
    // policy can address: mean recovery ticks converted to minutes.
    let outcome = SelfHealingService::builder()
        .config(ServiceConfig::tiny())
        .injections(
            InjectionPlanBuilder::new(4, 3, 1)
                .inject(
                    60,
                    FaultKind::BufferContention,
                    FaultTarget::DatabaseTier,
                    0.9,
                )
                .inject(
                    400,
                    FaultKind::UnhandledException,
                    FaultTarget::Ejb { index: 1 },
                    0.9,
                )
                .inject(
                    740,
                    FaultKind::SuboptimalQueryPlan,
                    FaultTarget::Table { index: 0 },
                    0.9,
                )
                .build(),
        )
        .policy(PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor))
        .seed(seed)
        .run(1100);
    let automated_minutes = outcome
        .recovery
        .mean_recovery_ticks()
        .map(|t| t / 60.0)
        .unwrap_or(f64::NAN);
    table.push_row(
        "Automated (hybrid, software causes)",
        vec![f64::NAN, f64::NAN, automated_minutes, f64::NAN, f64::NAN],
    );
    table
}

/// **Table 1** — the failure ↔ candidate-fix matrix.
///
/// For every Table 1 failure class, injects the fault into a warmed-up
/// service, applies the cataloged preferred fix, and reports whether the
/// service recovered and how long it took; a deliberately wrong fix is shown
/// not to recover the service within the same horizon.
pub fn table1_fault_fix_matrix(seed: u64) -> ResultTable {
    let catalog = FixCatalog::standard();
    let mut table = ResultTable::new(
        "Table 1: failure classes, cataloged fixes, and observed recovery",
        vec![
            "recovered_with_catalog_fix".to_string(),
            "recovery_ticks".to_string(),
            "recovered_with_wrong_fix".to_string(),
        ],
    );
    for kind in FaultKind::TABLE1 {
        let fix = catalog.preferred_fix(kind);
        let (recovered, ticks) = run_fault_fix_trial(kind, Some(fix), seed);
        let wrong = wrong_fix_for(kind);
        let (wrong_recovered, _) = run_fault_fix_trial(kind, Some(wrong), seed);
        table.push_row(
            format!("{kind} -> {fix}"),
            vec![
                if recovered { 1.0 } else { 0.0 },
                ticks as f64,
                if wrong_recovered { 1.0 } else { 0.0 },
            ],
        );
    }
    table
}

fn wrong_fix_for(kind: FaultKind) -> FixKind {
    // A fix that the catalog does not list for the fault.
    match kind {
        FaultKind::SuboptimalQueryPlan => FixKind::MicrorebootEjb,
        _ => FixKind::UpdateStatistics,
    }
}

/// Injects `kind` into a warmed-up tiny service, optionally applies `fix`
/// (targeted at the faulty component), and returns whether the service
/// recovered (fault gone and SLOs compliant) and after how many ticks.
fn run_fault_fix_trial(kind: FaultKind, fix: Option<FixKind>, seed: u64) -> (bool, u64) {
    let config = ServiceConfig::tiny();
    let mut service = MultiTierService::new(config.clone());
    let mut workload = TraceGenerator::new(
        WorkloadMix::bidding(),
        ArrivalProcess::Constant { rate: 40.0 },
        seed,
    );
    for _ in 0..40 {
        let requests = workload.tick(service.current_tick());
        service.tick(&requests);
    }
    let target = default_target(kind, 1 % config.ejb_count);
    service.inject(FaultSpec::new(FaultId(1), kind, target, 0.9));
    for _ in 0..20 {
        let requests = workload.tick(service.current_tick());
        service.tick(&requests);
    }
    let fault_onset = service.current_tick();
    if let Some(fix_kind) = fix {
        let action = if fix_kind.needs_target() {
            FixAction::targeted(fix_kind, fix_target_for(kind, &target))
        } else {
            FixAction::untargeted(fix_kind)
        };
        service.apply_fix(action);
    }
    // Give the fix (and the service) up to 500 ticks to recover.
    let mut recovered_at = None;
    for _ in 0..500 {
        let requests = workload.tick(service.current_tick());
        service.tick(&requests);
        if service.active_faults().is_empty() && !service.slo_violated() && recovered_at.is_none() {
            recovered_at = Some(service.current_tick());
            break;
        }
    }
    match recovered_at {
        Some(t) => (true, t - fault_onset),
        None => (false, 500),
    }
}

fn fix_target_for(kind: FaultKind, fault_target: &FaultTarget) -> FaultTarget {
    match (kind, fault_target) {
        (FaultKind::SoftwareAging, _) => FaultTarget::AppTier,
        (_, t) => *t,
    }
}

/// **Table 2** — empirical comparison of the fix-identification approaches.
///
/// Runs the manual rule base, the three diagnosis-based approaches, FixSym,
/// and the hybrid on an identical recurring-failure scenario and reports:
/// episodes recovered, mean recovery time, mean fix attempts per episode,
/// escalation fraction, and the fraction of time spent in SLO violation.
pub fn table2_approach_comparison(scale: ExperimentScale, seed: u64) -> ResultTable {
    let mut table = ResultTable::new(
        "Table 2: empirical comparison of fix-identification approaches",
        vec![
            "episodes".to_string(),
            "recovered".to_string(),
            "mean_recovery_ticks".to_string(),
            "mean_fix_attempts".to_string(),
            "escalation_fraction".to_string(),
            "slo_violation_fraction".to_string(),
        ],
    );
    let policies = vec![
        PolicyChoice::None,
        PolicyChoice::ManualRules,
        PolicyChoice::AnomalyDetection,
        PolicyChoice::CorrelationAnalysis,
        PolicyChoice::BottleneckAnalysis,
        PolicyChoice::FixSym(SynopsisKind::NearestNeighbor),
        PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor),
    ];
    for policy in policies {
        let outcome = comparison_scenario(policy, scale, seed);
        let recovery = &outcome.recovery;
        let recovered = recovery
            .episodes()
            .iter()
            .filter(|e| e.recovery_ticks().is_some())
            .count();
        table.push_row(
            policy.label(),
            vec![
                recovery.len() as f64,
                recovered as f64,
                recovery.mean_recovery_ticks().unwrap_or(f64::NAN),
                recovery.mean_fix_attempts(),
                recovery.escalation_fraction(),
                outcome.violation_fraction,
            ],
        );
    }
    table
}

fn comparison_scenario(
    policy: PolicyChoice,
    scale: ExperimentScale,
    seed: u64,
) -> selfheal_sim::ScenarioOutcome {
    let config = ServiceConfig::tiny();
    // A recurring-failure scenario: the same three Table 1 failure classes
    // strike repeatedly, spaced far enough apart for recovery in between.
    let spacing = (scale.comparison_ticks / 6).max(200);
    let mut builder = InjectionPlanBuilder::new(config.ejb_count, config.table_count, 1);
    let kinds = [
        FaultKind::BufferContention,
        FaultKind::UnhandledException,
        FaultKind::SuboptimalQueryPlan,
    ];
    let mut at = 80u64;
    let mut i = 0usize;
    while at + 50 < scale.comparison_ticks {
        let kind = kinds[i % kinds.len()];
        builder = builder.inject_default(at, kind);
        at += spacing;
        i += 1;
    }
    SelfHealingService::builder()
        .config(config)
        .injections(builder.build())
        .policy(policy)
        .seed(seed)
        .run(scale.comparison_ticks)
}

/// A point of the Figure 4 learning curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynopsisCurvePoint {
    /// Number of failures fixed successfully so far (training samples).
    pub correct_fixes: usize,
    /// Accuracy of the current synopsis on the fixed test set.
    pub accuracy: f64,
}

/// The full result of running FixSym with one synopsis kind.
#[derive(Debug, Clone)]
pub struct SynopsisRun {
    /// Which synopsis was used.
    pub kind: SynopsisKind,
    /// Accuracy learning curve (Figure 4).
    pub curve: Vec<SynopsisCurvePoint>,
    /// Wall-clock seconds spent training up to 50 correct fixes (Table 3).
    pub seconds_to_50: f64,
    /// Deterministic model-fitting operations up to 50 correct fixes.
    pub ops_to_50: u64,
    /// Accuracy at 50 correct fixes (Table 3).
    pub accuracy_at_50: f64,
}

/// **Figure 4 / Table 3** — synopsis comparison inside FixSym.
///
/// Generates a fixed test set of failure states from the simulator, then
/// feeds FixSym a stream of further failure states; after every successful
/// fix the current synopsis is evaluated on the test set.  Reproduced
/// claims: the ensemble (AdaBoost) synopsis reaches high accuracy with the
/// fewest correct fixes but costs one to two orders of magnitude more to
/// train than nearest neighbor / k-means; k-means plateaus lowest.
pub fn synopsis_comparison(scale: ExperimentScale, seed: u64) -> Vec<SynopsisRun> {
    let kinds = synopsis_fault_kinds();
    let mut generator = FailureStateGenerator::standard(ServiceConfig::tiny(), seed);
    let (_, test_set) = generator.generate_dataset(scale.test_states, &kinds);
    // Pre-generate the training stream so every synopsis sees the identical
    // sequence of failures.
    let (train_states, _) = generator.generate_dataset(scale.max_correct_fixes * 2, &kinds);

    SynopsisKind::paper_set()
        .into_iter()
        .map(|kind| run_one_synopsis(kind, &train_states, &test_set, scale))
        .collect()
}

fn run_one_synopsis(
    kind: SynopsisKind,
    train_states: &[selfheal_sim::FailureState],
    test_set: &Dataset,
    scale: ExperimentScale,
) -> SynopsisRun {
    let mut engine = FixSymEngine::new(kind);
    let mut curve = Vec::new();
    let mut seconds_to_50 = f64::NAN;
    let mut ops_to_50 = 0u64;
    let mut accuracy_at_50 = f64::NAN;
    let started = Instant::now();

    for state in train_states {
        if engine.synopsis().correct_fixes_learned() >= scale.max_correct_fixes {
            break;
        }
        let correct = state.correct_fix;
        engine.run_episode(&state.symptoms, |fix| fix == correct);
        let fixes = engine.synopsis().correct_fixes_learned();
        let accuracy = engine.synopsis().accuracy_on(test_set);
        curve.push(SynopsisCurvePoint {
            correct_fixes: fixes,
            accuracy,
        });
        if fixes >= 50 && seconds_to_50.is_nan() {
            seconds_to_50 = started.elapsed().as_secs_f64();
            ops_to_50 = engine.synopsis().training_ops();
            accuracy_at_50 = accuracy;
        }
    }
    // Runs smaller than 50 correct fixes (quick scale) report their final
    // state instead.
    if seconds_to_50.is_nan() {
        seconds_to_50 = started.elapsed().as_secs_f64();
        ops_to_50 = engine.synopsis().training_ops();
        accuracy_at_50 = curve.last().map(|p| p.accuracy).unwrap_or(0.0);
    }
    SynopsisRun {
        kind,
        curve,
        seconds_to_50,
        ops_to_50,
        accuracy_at_50,
    }
}

/// Renders the Figure 4 learning curves as a result table (one row per
/// checkpoint per synopsis).
pub fn fig4_table(runs: &[SynopsisRun]) -> ResultTable {
    let mut table = ResultTable::new(
        "Figure 4: synopsis accuracy vs number of correct fixes",
        vec!["correct_fixes".to_string(), "accuracy".to_string()],
    );
    for run in runs {
        for point in &run.curve {
            table.push_row(
                run.kind.label(),
                vec![point.correct_fixes as f64, point.accuracy],
            );
        }
    }
    table
}

/// Renders the Table 3 comparison (time to generate vs accuracy at 50
/// correct fixes).
pub fn table3_table(runs: &[SynopsisRun]) -> ResultTable {
    let mut table = ResultTable::new(
        "Table 3: synopsis time-to-generate vs accuracy at 50 correct fixes",
        vec![
            "wall_seconds_to_50".to_string(),
            "training_ops_to_50".to_string(),
            "accuracy_at_50".to_string(),
        ],
    );
    for run in runs {
        table.push_row(
            run.kind.label(),
            vec![run.seconds_to_50, run.ops_to_50 as f64, run.accuracy_at_50],
        );
    }
    table
}

/// Writes a result table to `results/<name>.csv` relative to the workspace
/// root (best effort) and prints it to stdout.
pub fn emit(table: &ResultTable, name: &str) {
    println!("{}", table.to_text());
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.csv"));
        if let Err(err) = std::fs::write(&path, table.to_csv()) {
            eprintln!("warning: could not write {}: {err}", path.display());
        } else {
            println!("(written to {})", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shares_sum_to_one_and_operator_dominates() {
        // Sampling is cheap, so use enough failures that the smallest
        // operator-vs-runner-up margin (0.33 vs 0.25) is many sigma wide and
        // the dominance assertion cannot flake.
        let scale = ExperimentScale {
            failures_per_profile: 4000,
            ..ExperimentScale::quick()
        };
        let table = fig1_failure_causes(scale, 1);
        assert_eq!(table.rows().len(), 3);
        for (_, row) in table.rows() {
            let total: f64 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            let operator = row[0];
            for other in &row[1..] {
                assert!(operator >= *other, "operator share must dominate");
            }
        }
    }

    #[test]
    fn fig2_manual_operator_recovery_is_slowest() {
        let table = fig2_recovery_time(ExperimentScale::quick(), 2);
        for (label, row) in table.rows().iter().take(3) {
            assert!(label.contains("manual"));
            let operator = row[0];
            assert!(operator > row[1], "operator slower than hardware");
            assert!(operator > row[2], "operator slower than software");
        }
    }

    #[test]
    fn table1_catalog_fixes_recover_and_wrong_fixes_do_not() {
        let table = table1_fault_fix_matrix(3);
        assert_eq!(table.rows().len(), FaultKind::TABLE1.len());
        for (label, row) in table.rows() {
            assert_eq!(row[0], 1.0, "{label}: catalog fix must recover the service");
            assert_eq!(
                row[2], 0.0,
                "{label}: the wrong fix must not recover the service"
            );
        }
    }

    #[test]
    fn synopsis_comparison_quick_run_produces_curves_for_all_kinds() {
        let runs = synopsis_comparison(ExperimentScale::quick(), 4);
        assert_eq!(runs.len(), 3);
        for run in &runs {
            assert!(!run.curve.is_empty());
            assert!(run.accuracy_at_50 >= 0.0 && run.accuracy_at_50 <= 1.0);
        }
        let fig4 = fig4_table(&runs);
        assert!(!fig4.rows().is_empty());
        let table3 = table3_table(&runs);
        assert_eq!(table3.rows().len(), 3);
    }
}
