//! Fleet-scaling experiments: replicas-vs-throughput curves and the
//! shared-vs-isolated cold-start recovery comparison.
//!
//! Used by the `fleet_scaling` binary (full scale, JSON output) and the
//! `fleet_scaling` Criterion bench (reduced scale).

use selfheal_core::harness::{
    EventChoice, FaultChoice, LearnerChoice, PolicyChoice, ReactiveChoice, WorkloadChoice,
};
use selfheal_core::snapshot::SynopsisSnapshot;
use selfheal_core::synopsis::{Learner, SynopsisKind};
use selfheal_faults::{FaultKind, FaultTarget, InjectionPlanBuilder, ServiceProfile, StormSpec};
use selfheal_fleet::events::ReplicaAction;
use selfheal_fleet::reactive::REACTIVE_PERIOD;
use selfheal_fleet::{ExecutionMode, FleetConfig, FleetOutcome, LearningTopology};
use selfheal_sim::ServiceConfig;
use selfheal_workload::{ArrivalProcess, WorkloadMix};

/// One point of the replicas-vs-throughput curve.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Fleet size.
    pub replicas: usize,
    /// Ticks each replica simulated.
    pub ticks_per_replica: u64,
    /// Wall-clock seconds for the parallel (worker-thread) engine.
    pub parallel_wall_s: f64,
    /// Wall-clock seconds for the sequential tick-interleaver.
    pub sequential_wall_s: f64,
    /// Simulated ticks per second achieved by the parallel engine.
    pub parallel_throughput: f64,
}

impl ScalingPoint {
    /// Sequential wall-clock over parallel wall-clock.
    pub fn speedup(&self) -> f64 {
        if self.parallel_wall_s <= 0.0 {
            f64::INFINITY
        } else {
            self.sequential_wall_s / self.parallel_wall_s
        }
    }
}

/// The fleet every scaling measurement runs: the tiny service under a
/// constant bidding load, a mid-run buffer-contention fault per replica,
/// and FixSym healing against one fleet-shared synopsis — i.e. the whole
/// subsystem under test, not an idle loop.
fn scaling_fleet(replicas: usize, ticks: u64, seed: u64) -> FleetConfig {
    FleetConfig::builder()
        .service(ServiceConfig::tiny())
        .synthetic_workload(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
        )
        .replicas(replicas)
        .ticks(ticks)
        .base_seed(seed)
        .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
        .topology(LearningTopology::shared())
        .injections(
            InjectionPlanBuilder::new(4, 3, 1)
                .inject(
                    ticks / 10,
                    FaultKind::BufferContention,
                    FaultTarget::DatabaseTier,
                    0.9,
                )
                .build(),
        )
        // The scaling runs only need aggregate counters, not full metric
        // history; a small ring keeps 32 × 5000-tick fleets lean.
        .series_capacity(512)
        // The curve measures replica-simulation throughput, not epoch-sync
        // overhead: a wide slice amortizes the scheduler's per-epoch
        // barrier (5000 ticks -> ~78 barriers instead of 5000) while the
        // store gate still keeps the run deterministic.
        .slice(64)
}

/// The synthetic workload the smoke fleet runs — and the one its
/// record/replay quickstart captures to a JSON-lines trace.
pub fn smoke_workload() -> WorkloadChoice {
    WorkloadChoice::synthetic(
        WorkloadMix::bidding(),
        ArrivalProcess::Constant { rate: 40.0 },
    )
}

/// A small FixSym fleet (tiny service, one mid-run buffer-contention fault,
/// isolated learning) under an arbitrary workload choice — the config the
/// `fleet_scaling` binary's `--smoke` / `--record` / `--replay` modes run,
/// sized so CI can afford it.
pub fn smoke_fleet(
    replicas: usize,
    ticks: u64,
    seed: u64,
    workload: WorkloadChoice,
) -> FleetConfig {
    FleetConfig::builder()
        .service(ServiceConfig::tiny())
        .workload(workload)
        .replicas(replicas)
        .ticks(ticks)
        .base_seed(seed)
        .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
        .injections(
            InjectionPlanBuilder::new(4, 3, 1)
                .inject(
                    ticks / 4,
                    FaultKind::BufferContention,
                    FaultTarget::DatabaseTier,
                    0.9,
                )
                .build(),
        )
        .series_capacity(512)
}

/// Measures one fleet size in both execution modes.
pub fn scaling_point(replicas: usize, ticks: u64, seed: u64) -> ScalingPoint {
    let parallel = scaling_fleet(replicas, ticks, seed)
        .mode(ExecutionMode::Parallel { threads: None })
        .run();
    let sequential = scaling_fleet(replicas, ticks, seed)
        .mode(ExecutionMode::Sequential)
        .run();
    ScalingPoint {
        replicas,
        ticks_per_replica: ticks,
        parallel_wall_s: parallel.wall().as_secs_f64(),
        sequential_wall_s: sequential.wall().as_secs_f64(),
        parallel_throughput: parallel.throughput_ticks_per_sec(),
    }
}

/// Measures every fleet size in `replica_counts`.
pub fn scaling_curve(replica_counts: &[usize], ticks: u64, seed: u64) -> Vec<ScalingPoint> {
    replica_counts
        .iter()
        .map(|&r| scaling_point(r, ticks, seed))
        .collect()
}

/// Shared-vs-isolated cold-start comparison.
///
/// `warm` statistics cover replicas 1..N — the replicas whose fault arrives
/// only after replica 0 (and each predecessor) has already healed the same
/// signature.  With a shared synopsis those replicas should need fewer fix
/// attempts and recover at least as fast as with isolated synopses.
#[derive(Debug, Clone, Copy)]
pub struct ColdStartReport {
    /// Mean fix attempts in the injected episode, warm replicas, shared.
    pub shared_warm_attempts: f64,
    /// Mean recovery ticks of the injected episode, warm replicas, shared.
    pub shared_warm_recovery: f64,
    /// Escalations across the whole shared fleet.
    pub shared_escalations: u64,
    /// Mean fix attempts in the injected episode, warm replicas, isolated.
    pub isolated_warm_attempts: f64,
    /// Mean recovery ticks of the injected episode, warm replicas, isolated.
    pub isolated_warm_recovery: f64,
    /// Escalations across the whole isolated fleet.
    pub isolated_escalations: u64,
}

/// Stagger interval between successive replicas' injections, in ticks —
/// long enough for the predecessor to heal and for the shared batch to
/// drain before the next replica's fault lands.
const STAGGER_TICKS: u64 = 500;

fn cold_start_fleet(replicas: usize, seed: u64, topology: LearningTopology) -> FleetOutcome {
    let ticks = 100 + STAGGER_TICKS * replicas as u64 + 400;
    FleetConfig::builder()
        .service(ServiceConfig::tiny())
        .synthetic_workload(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
        )
        .replicas(replicas)
        .ticks(ticks)
        .base_seed(seed)
        .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
        .topology(topology)
        // Tick-interleaved execution so "replica r's fault happens after
        // replica r-1 healed" holds by construction, independent of thread
        // scheduling.
        .mode(ExecutionMode::Sequential)
        .injections_per_replica(move |replica| {
            InjectionPlanBuilder::new(4, 3, 1)
                .inject(
                    100 + STAGGER_TICKS * replica as u64,
                    FaultKind::BufferContention,
                    FaultTarget::DatabaseTier,
                    0.9,
                )
                .build()
        })
        .run()
}

/// Mean fix attempts and recovery ticks of the injected episode over warm
/// replicas (1..N), plus fleet-wide escalations.
fn warm_stats(outcome: &FleetOutcome) -> (f64, f64, u64) {
    let mut attempts = Vec::new();
    let mut recoveries = Vec::new();
    let mut escalations = 0u64;
    for replica in outcome.replicas() {
        let episodes = replica.outcome.recovery.episodes();
        escalations += episodes.iter().filter(|e| e.escalated).count() as u64;
        if replica.replica == 0 {
            continue;
        }
        // First injected (ground-truth-labelled) episode of the warm replica.
        if let Some(episode) = episodes
            .iter()
            .find(|e| e.primary_fault() == Some(FaultKind::BufferContention))
        {
            attempts.push(episode.fixes_attempted.len() as f64);
            if let Some(ticks) = episode.recovery_ticks() {
                recoveries.push(ticks as f64);
            }
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    (mean(&attempts), mean(&recoveries), escalations)
}

/// Mean fix attempts and mean recovery ticks of the injected
/// (ground-truth-labelled) episode over every replica that saw one —
/// the recovery metric the warm-start comparison reports.
pub fn mean_injected_stats(outcome: &FleetOutcome) -> (f64, f64) {
    let mut attempts = Vec::new();
    let mut recoveries = Vec::new();
    for replica in outcome.replicas() {
        if let Some(episode) = replica
            .outcome
            .recovery
            .episodes()
            .iter()
            .find(|e| e.primary_fault() == Some(FaultKind::BufferContention))
        {
            attempts.push(episode.fixes_attempted.len() as f64);
            if let Some(ticks) = episode.recovery_ticks() {
                recoveries.push(ticks as f64);
            }
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    (mean(&attempts), mean(&recoveries))
}

/// Warm-vs-cold recovery comparison: the same fleet run twice at the same
/// seed, once from an empty synopsis store and once warm-started from the
/// cold run's saved snapshot.
///
/// Every replica of the warm fleet should fix the injected fault in fewer
/// attempts — the fleet remembers across process boundaries what the cold
/// fleet had to discover by trial and error.
#[derive(Debug, Clone, Copy)]
pub struct WarmStartReport {
    /// Outcomes recorded in the snapshot the warm fleet loaded.
    pub saved_examples: usize,
    /// Successful fixes known to a freshly restored store *before* its
    /// first tick (the CI warm-start smoke asserts this is nonzero).
    pub preloaded_fixes: usize,
    /// Mean fix attempts for the injected episode, cold fleet.
    pub cold_mean_attempts: f64,
    /// Mean fix attempts for the injected episode, warm fleet.
    pub warm_mean_attempts: f64,
    /// Mean recovery ticks for the injected episode, cold fleet.
    pub cold_mean_recovery: f64,
    /// Mean recovery ticks for the injected episode, warm fleet.
    pub warm_mean_recovery: f64,
}

impl WarmStartReport {
    /// The acceptance predicate: warm recovery takes strictly fewer mean
    /// fix attempts than cold.
    pub fn warm_is_faster(&self) -> bool {
        self.warm_mean_attempts < self.cold_mean_attempts
    }
}

fn warm_start_fleet(
    replicas: usize,
    seed: u64,
    learner: LearnerChoice,
    snapshot: Option<SynopsisSnapshot>,
) -> FleetOutcome {
    let mut config = FleetConfig::builder()
        .service(ServiceConfig::tiny())
        .synthetic_workload(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
        )
        .replicas(replicas)
        .base_seed(seed)
        .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
        .learner(learner)
        // Deterministic execution so warm vs cold differ only through the
        // loaded experience.
        .mode(ExecutionMode::Sequential)
        .series_capacity(512)
        .injections(
            InjectionPlanBuilder::new(4, 3, 1)
                .inject(
                    150,
                    FaultKind::BufferContention,
                    FaultTarget::DatabaseTier,
                    0.9,
                )
                .build(),
        );
    if let Some(snapshot) = snapshot {
        config = config.warm_start(snapshot);
    }
    // Healed-outcome experiment: run one healing tail past the stimulus
    // horizon rather than a hand-tuned 600 ticks.
    config.run_to_quiescence()
}

/// Runs the warm-vs-cold experiment with the given (shared) learner recipe:
/// cold run → snapshot the store → warm run from the snapshot.
///
/// # Panics
/// Panics when `learner` is [`LearnerChoice::Private`] (a per-replica store
/// leaves nothing fleet-wide to snapshot).
pub fn warm_start_comparison(
    replicas: usize,
    seed: u64,
    learner: LearnerChoice,
) -> WarmStartReport {
    let cold = warm_start_fleet(replicas, seed, learner, None);
    let snapshot = cold
        .store()
        .expect("warm-start comparison needs a shared learner")
        .snapshot();

    // What a restored store knows before the first tick.
    let mut probe = learner.build_store(SynopsisKind::NearestNeighbor);
    probe.restore(&snapshot);
    let preloaded_fixes = probe.correct_fixes_learned();

    let saved_examples = snapshot.len();
    let warm = warm_start_fleet(replicas, seed, learner, Some(snapshot));
    let (cold_mean_attempts, cold_mean_recovery) = mean_injected_stats(&cold);
    let (warm_mean_attempts, warm_mean_recovery) = mean_injected_stats(&warm);
    WarmStartReport {
        saved_examples,
        preloaded_fixes,
        cold_mean_attempts,
        warm_mean_attempts,
        cold_mean_recovery,
        warm_mean_recovery,
    }
}

/// The storm-recovery experiment's failure class.
pub const STORM_KIND: FaultKind = FaultKind::BufferContention;
/// Tick at which the scout replica (replica 0) meets the signature alone.
pub const STORM_SCOUT_TICK: u64 = 80;
/// Tick at which the storm hits half the fleet at once.
pub const STORM_TICK: u64 = 400;
/// Fraction of the fleet the storm hits.
pub const STORM_FRACTION: f64 = 0.5;

/// Shared-vs-isolated recovery under a correlated fault storm.
///
/// The scenario: replica 0 (the *scout*, never a storm victim under the
/// Bresenham spread) meets the failure signature alone at
/// [`STORM_SCOUT_TICK`]; at [`STORM_TICK`] the same failure hits
/// [`STORM_FRACTION`] of the fleet simultaneously.  With one shared store
/// the victims should reach for the scout's proven fix on (close to) the
/// first attempt; isolated victims each rediscover it by trial and error.
#[derive(Debug, Clone, Copy)]
pub struct StormRecoveryReport {
    /// Number of storm victims.
    pub victims: usize,
    /// Victims whose storm episode was found in the shared run (a victim
    /// whose injection never produced a labelled episode is missing).
    pub shared_matched_episodes: usize,
    /// Mean fix attempts over the victims' storm episodes, shared store.
    pub shared_mean_attempts: f64,
    /// Mean recovery ticks over the victims' storm episodes, shared store.
    pub shared_mean_recovery: f64,
    /// Episodes still open when the shared fleet quiesced (0 = recovered).
    pub shared_open_episodes: usize,
    /// Victims whose storm episode was found in the isolated run.
    pub isolated_matched_episodes: usize,
    /// Mean fix attempts over the victims' storm episodes, isolated.
    pub isolated_mean_attempts: f64,
    /// Mean recovery ticks over the victims' storm episodes, isolated.
    pub isolated_mean_recovery: f64,
    /// Episodes still open when the isolated fleet quiesced.
    pub isolated_open_episodes: usize,
}

impl StormRecoveryReport {
    /// The CI gate: every victim actually opened a storm episode (the storm
    /// was not a silent no-op) and the shared run healed all of them.
    pub fn recovered(&self) -> bool {
        self.shared_matched_episodes == self.victims
            && self.victims > 0
            && self.shared_open_episodes == 0
    }

    /// The acceptance predicate: shared learning recovers from the storm
    /// faster (strictly fewer mean recovery ticks) and in no more attempts
    /// than isolated learning.
    pub fn shared_recovers_faster(&self) -> bool {
        self.shared_mean_recovery < self.isolated_mean_recovery
            && self.shared_mean_attempts <= self.isolated_mean_attempts
    }
}

/// The storm fleet: tiny service, constant bidding load, a scout injection
/// on replica 0, and a 50% [`EventChoice::storm`] — run through the
/// tick-sliced parallel scheduler (slice 1), which the store gate makes
/// deterministic for shared learners.
pub fn storm_fleet(replicas: usize, seed: u64, learner: LearnerChoice, slice: u64) -> FleetConfig {
    FleetConfig::builder()
        .service(ServiceConfig::tiny())
        .synthetic_workload(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
        )
        .replicas(replicas)
        .ticks(STORM_TICK + 600)
        .base_seed(seed)
        .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
        .learner(learner)
        .slice(slice)
        .mode(ExecutionMode::Parallel { threads: None })
        .series_capacity(512)
        .injections_per_replica(|replica| {
            if replica == 0 {
                InjectionPlanBuilder::new(4, 3, 1)
                    .inject(STORM_SCOUT_TICK, STORM_KIND, FaultTarget::DatabaseTier, 0.9)
                    .build()
            } else {
                selfheal_faults::InjectionPlan::empty()
            }
        })
        .event(EventChoice::storm(STORM_TICK, STORM_KIND, STORM_FRACTION))
}

/// Mean fix attempts, mean recovery ticks, matched-episode count, and
/// open-episode count over the storm victims' labelled episodes.
fn storm_victim_stats(outcome: &FleetOutcome, victims: &[usize]) -> (f64, f64, usize, usize) {
    let mut attempts = Vec::new();
    let mut recoveries = Vec::new();
    let mut matched = 0usize;
    let mut open = 0usize;
    for replica in outcome.replicas() {
        if !victims.contains(&replica.replica) {
            continue;
        }
        if let Some(episode) = replica
            .outcome
            .recovery
            .episodes()
            .iter()
            .find(|e| e.primary_fault() == Some(STORM_KIND))
        {
            matched += 1;
            attempts.push(episode.fixes_attempted.len() as f64);
            match episode.recovery_ticks() {
                Some(ticks) => recoveries.push(ticks as f64),
                None => open += 1,
            }
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    (mean(&attempts), mean(&recoveries), matched, open)
}

/// Runs the storm fleet with a shared (batch-1 locked) store and with
/// isolated per-replica stores, and compares the victims' recovery.
pub fn storm_recovery_comparison(replicas: usize, seed: u64, slice: u64) -> StormRecoveryReport {
    let victims = StormSpec::new(STORM_KIND, 0.9, STORM_FRACTION).victims(replicas);
    // Batch 1 so the scout's experience is published the moment it is
    // recorded — the comparison then measures sharing, not drain timing.
    let shared = storm_fleet(replicas, seed, LearnerChoice::Locked { batch: 1 }, slice).run();
    let isolated = storm_fleet(replicas, seed, LearnerChoice::Private, slice).run();
    let (shared_mean_attempts, shared_mean_recovery, shared_matched_episodes, shared_open_episodes) =
        storm_victim_stats(&shared, &victims);
    let (
        isolated_mean_attempts,
        isolated_mean_recovery,
        isolated_matched_episodes,
        isolated_open_episodes,
    ) = storm_victim_stats(&isolated, &victims);
    StormRecoveryReport {
        victims: victims.len(),
        shared_matched_episodes,
        shared_mean_attempts,
        shared_mean_recovery,
        shared_open_episodes,
        isolated_matched_episodes,
        isolated_mean_attempts,
        isolated_mean_recovery,
        isolated_open_episodes,
    }
}

/// The adversarial-recovery experiment's failure class — what the reactive
/// adversary injects into the weakest replica at every epoch barrier.
pub const ADVERSARY_KIND: FaultKind = FaultKind::BufferContention;
/// Tick of the scout injection: the *last* replica (never the weakest under
/// the low-id tie-break while the fleet is healthy) meets the signature
/// alone and, with a shared store, publishes the proven fix before the
/// adversary's first strike.  Past the service's warm-up ramp, so the
/// symptoms the scout records match what steady-state victims will report.
pub const ADVERSARY_SCOUT_TICK: u64 = 80;
/// First tick (an epoch barrier) at which the adversary may strike — late
/// enough that the scout's episode has healed in both learning topologies,
/// so strikes open *fresh* episodes on the healthy fleet.
pub const ADVERSARY_START: u64 = 256;
/// Tick (exclusive) after which the adversary stands down — barriers at
/// 256, 320, …, 512 give five strikes.
pub const ADVERSARY_UNTIL: u64 = 576;

/// The adversarial fleet: the tiny service under constant bidding load, a
/// scout injection on the last replica, and a reactive
/// [`ReactiveChoice::adversary`] striking the currently-weakest replica at
/// every epoch barrier in `[ADVERSARY_START, ADVERSARY_UNTIL)`.
///
/// The dynamics this sets up: while the fleet is healthy the low-id
/// tie-break aims the first strike at replica 0; the strike opens an
/// episode, which makes replica 0 *the* weakest, so the adversary keeps
/// piling on until the replica heals — the worst case for a learner that
/// has not yet seen the fix.  With a shared store the scout's fix transfers
/// and each strike is cleared on the first attempt; isolated victims
/// rediscover it under fire.
///
/// Sequential by default (callers chain `.mode(..)` for the parallel
/// fingerprint gate); run it via `run_to_quiescence()` — the stimulus
/// horizon is finite, so the fleet stops one healing tail after the last
/// possible strike instead of at a hand-tuned tick count.
pub fn adversarial_fleet(
    replicas: usize,
    seed: u64,
    learner: LearnerChoice,
    slice: u64,
) -> FleetConfig {
    let scout = replicas.saturating_sub(1);
    FleetConfig::builder()
        .service(ServiceConfig::tiny())
        .synthetic_workload(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
        )
        .replicas(replicas)
        .base_seed(seed)
        .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
        .learner(learner)
        .slice(slice)
        .mode(ExecutionMode::Sequential)
        .series_capacity(512)
        .injections_per_replica(move |replica| {
            if replica == scout {
                InjectionPlanBuilder::new(4, 3, 1)
                    .inject(
                        ADVERSARY_SCOUT_TICK,
                        ADVERSARY_KIND,
                        FaultTarget::DatabaseTier,
                        0.9,
                    )
                    .build()
            } else {
                selfheal_faults::InjectionPlan::empty()
            }
        })
        .reactive(ReactiveChoice::adversary(
            ADVERSARY_KIND,
            0.9,
            ADVERSARY_START,
            ADVERSARY_UNTIL,
        ))
}

/// Shared-vs-isolated recovery under adversarial weakest-replica targeting.
///
/// Each run carries its own strike log (the adversary reacts to that run's
/// health, so shared and isolated fleets are hit where *they* are weak);
/// strikes are attributed to the episode on the target replica whose
/// detection falls inside the strike's epoch window and whose primary fault
/// matches the injected class.
#[derive(Debug, Clone, Copy)]
pub struct AdversarialRecoveryReport {
    /// Adversary strikes landed in the shared run.
    pub shared_strikes: usize,
    /// Shared-run strikes matched to a labelled episode.
    pub shared_matched: usize,
    /// Mean fix attempts over matched episodes, shared store.
    pub shared_mean_attempts: f64,
    /// Mean recovery ticks over matched episodes, shared store.
    pub shared_mean_recovery: f64,
    /// Matched episodes still open when the shared fleet quiesced.
    pub shared_open_episodes: usize,
    /// Adversary strikes landed in the isolated run.
    pub isolated_strikes: usize,
    /// Isolated-run strikes matched to a labelled episode.
    pub isolated_matched: usize,
    /// Mean fix attempts over matched episodes, isolated stores.
    pub isolated_mean_attempts: f64,
    /// Mean recovery ticks over matched episodes, isolated stores.
    pub isolated_mean_recovery: f64,
    /// Matched episodes still open when the isolated fleet quiesced.
    pub isolated_open_episodes: usize,
}

impl AdversarialRecoveryReport {
    /// The CI gate: both adversaries actually struck, strikes were
    /// attributable in both runs, and every attributed episode healed
    /// before quiesce (the auto-quiesce horizon left enough healing tail).
    pub fn struck_and_recovered(&self) -> bool {
        self.shared_strikes > 0
            && self.isolated_strikes > 0
            && self.shared_matched > 0
            && self.isolated_matched > 0
            && self.shared_open_episodes == 0
            && self.isolated_open_episodes == 0
    }

    /// The acceptance predicate: under weakest-replica targeting, victims
    /// backed by the shared store recover strictly faster and in no more
    /// attempts than isolated victims.
    pub fn shared_recovers_faster(&self) -> bool {
        self.shared_mean_recovery < self.isolated_mean_recovery
            && self.shared_mean_attempts <= self.isolated_mean_attempts
    }
}

/// Strike count, matched count, open-matched count, and mean attempts /
/// mean recovery over the episodes attributable to reactive injections in
/// `outcome`'s strike log.  A strike that lands while its victim is already
/// mid-episode merges into that episode (the pile-on case) and is counted
/// as a strike but not matched; a strike on a healthy replica opens a fresh
/// episode inside its epoch window with the injected class as primary.
pub fn reactive_strike_stats(outcome: &FleetOutcome) -> (usize, usize, usize, f64, f64) {
    let mut strikes = 0usize;
    let mut matched = 0usize;
    let mut open = 0usize;
    let mut attempts = Vec::new();
    let mut recoveries = Vec::new();
    for record in outcome.reactive_log() {
        let ReplicaAction::Inject(spec) = &record.action else {
            continue;
        };
        strikes += 1;
        let Some(replica) = outcome
            .replicas()
            .iter()
            .find(|r| r.replica == record.replica)
        else {
            continue;
        };
        if let Some(episode) = replica.outcome.recovery.episodes().iter().find(|e| {
            e.detected_at >= record.tick
                && e.detected_at < record.tick + REACTIVE_PERIOD
                && e.primary_fault() == Some(spec.kind)
        }) {
            matched += 1;
            attempts.push(episode.fixes_attempted.len() as f64);
            match episode.recovery_ticks() {
                Some(ticks) => recoveries.push(ticks as f64),
                None => open += 1,
            }
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    (strikes, matched, open, mean(&attempts), mean(&recoveries))
}

/// Runs the adversarial fleet with a shared (batch-1 locked) store and with
/// isolated per-replica stores, both to quiescence, and compares how fast
/// the targeted victims recover.
pub fn adversarial_recovery_comparison(replicas: usize, seed: u64) -> AdversarialRecoveryReport {
    let shared = adversarial_fleet(replicas, seed, LearnerChoice::Locked { batch: 1 }, 64)
        .run_to_quiescence();
    let isolated =
        adversarial_fleet(replicas, seed, LearnerChoice::Private, 64).run_to_quiescence();
    let (
        shared_strikes,
        shared_matched,
        shared_open_episodes,
        shared_mean_attempts,
        shared_mean_recovery,
    ) = reactive_strike_stats(&shared);
    let (
        isolated_strikes,
        isolated_matched,
        isolated_open_episodes,
        isolated_mean_attempts,
        isolated_mean_recovery,
    ) = reactive_strike_stats(&isolated);
    AdversarialRecoveryReport {
        shared_strikes,
        shared_matched,
        shared_mean_attempts,
        shared_mean_recovery,
        shared_open_episodes,
        isolated_strikes,
        isolated_matched,
        isolated_mean_attempts,
        isolated_mean_recovery,
        isolated_open_episodes,
    }
}

/// The fault-seasons fleet: demographic generation whose rate switches
/// between calm (0), moderate, and stormy seasons every 128 ticks on a
/// schedule shared by the whole fleet — correlated bad *weeks* without
/// correlated faults.  Active for the first half of the run.
pub fn seasons_fleet(replicas: usize, ticks: u64, seed: u64, slice: u64) -> FleetConfig {
    let active = ticks / 2;
    FleetConfig::builder()
        .service(ServiceConfig::tiny())
        .synthetic_workload(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
        )
        .replicas(replicas)
        .ticks(ticks)
        .base_seed(seed)
        .policy(PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor))
        .learner(LearnerChoice::Locked { batch: 1 })
        .slice(slice)
        .mode(ExecutionMode::Sequential)
        .series_capacity(512)
        .faults(
            FaultChoice::seasons(ServiceProfile::Online, vec![0.0, 0.02, 0.06], 128)
                .active_for(active),
        )
}

/// The cascade experiment's failure class.
pub const CASCADE_KIND: FaultKind = FaultKind::BufferContention;
/// Tick of the scout injection that seeds the cascade — close enough to the
/// first epoch barrier (64) that the episode is still open when the cascade
/// engine first looks.
pub const CASCADE_SCOUT_TICK: u64 = 50;

/// The cascade fleet: a scout injection opens an episode on replica 0 just
/// before the first epoch barrier; a [`ReactiveChoice::cascade`] then
/// propagates correlated faults along the ring dependency (0 → 1 → 2 → …)
/// as each newly failing replica is observed, up to `budget` propagations.
pub fn cascade_fleet(
    replicas: usize,
    seed: u64,
    learner: LearnerChoice,
    budget: usize,
    slice: u64,
) -> FleetConfig {
    FleetConfig::builder()
        .service(ServiceConfig::tiny())
        .synthetic_workload(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
        )
        .replicas(replicas)
        .base_seed(seed)
        .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
        .learner(learner)
        .slice(slice)
        .mode(ExecutionMode::Sequential)
        .series_capacity(512)
        .injections_per_replica(|replica| {
            if replica == 0 {
                InjectionPlanBuilder::new(4, 3, 1)
                    .inject(
                        CASCADE_SCOUT_TICK,
                        CASCADE_KIND,
                        FaultTarget::DatabaseTier,
                        0.9,
                    )
                    .build()
            } else {
                selfheal_faults::InjectionPlan::empty()
            }
        })
        .reactive(ReactiveChoice::cascade(CASCADE_KIND, 0.9, budget, 512))
}

/// Cascade propagations actually landed in an outcome's strike log.
pub fn cascade_injections(outcome: &FleetOutcome) -> usize {
    outcome
        .reactive_log()
        .iter()
        .filter(|r| matches!(r.action, ReplicaAction::Inject(_)))
        .count()
}

/// Fraction of a mix run's ticks during which demographic faults may fire;
/// the remaining tail is quiet so the healer can drain every open episode
/// before quiesce.
pub const MIX_ACTIVE_FRACTION: f64 = 0.5;

/// The demographic-mix fleet: the tiny service under constant bidding
/// load, faults generated stochastically from a [`ServiceProfile`]'s cause
/// mix at `rate` per tick over the first [`MIX_ACTIVE_FRACTION`] of the
/// run, healed by the FixSym+diagnosis hybrid (signature learning alone
/// cannot cover first-contact operator/hardware classes).
pub fn mix_fleet(
    replicas: usize,
    ticks: u64,
    seed: u64,
    profile: ServiceProfile,
    rate: f64,
    slice: u64,
) -> FleetConfig {
    let config = ServiceConfig::tiny();
    let active = (ticks as f64 * MIX_ACTIVE_FRACTION) as u64;
    FleetConfig::builder()
        .service(config.clone())
        .synthetic_workload(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
        )
        .replicas(replicas)
        .ticks(ticks)
        .base_seed(seed)
        .policy(PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor))
        .learner(LearnerChoice::Locked { batch: 1 })
        .slice(slice)
        .series_capacity(512)
        .faults(FaultChoice::mix_for(profile, rate, &config).active_for(active))
}

/// Episodes still open (no recovery tick) across every replica of a fleet —
/// the "did the run quiesce healed" check mix and sweep smokes gate on.
pub fn open_episodes(outcome: &FleetOutcome) -> usize {
    outcome
        .replicas()
        .iter()
        .flat_map(|r| r.outcome.recovery.episodes())
        .filter(|e| e.recovery_ticks().is_none())
        .count()
}

/// Open episodes that are attributable to an actual fault (a primary
/// failure class was diagnosed).  Long runs grow a tail of spontaneous
/// SLO-flap episodes with no fault behind them — a flap that opens a tick
/// or two before quiesce is noise, not an unhealed fault, so
/// horizon-sensitive gates (seasons, cascade, auto-quiesced runs) count
/// only the attributable remainder.
pub fn open_fault_episodes(outcome: &FleetOutcome) -> usize {
    outcome
        .replicas()
        .iter()
        .flat_map(|r| r.outcome.recovery.episodes())
        .filter(|e| e.recovery_ticks().is_none() && e.primary_fault().is_some())
        .count()
}

/// Distinct primary failure classes across every episode of a fleet — how
/// much of the catalog a demographic or sweep run actually exercised.
pub fn distinct_fault_kinds(outcome: &FleetOutcome) -> usize {
    let kinds: std::collections::HashSet<FaultKind> = outcome
        .replicas()
        .iter()
        .flat_map(|r| r.outcome.recovery.episodes())
        .filter_map(|e| e.primary_fault())
        .collect();
    kinds.len()
}

/// Gated-vs-ungated shared-learning throughput.
///
/// Both runs use the same parallel fleet with one lock-shared store; the
/// gated run serializes store access into the sequential round-robin order
/// (reproducible fingerprints), the ungated run lets replicas hit the store
/// the moment they need it (maximum parallel throughput, thread-scheduling-
/// dependent drain order).  See `FleetConfig::ungated` for the trade-off.
#[derive(Debug, Clone, Copy)]
pub struct GateReport {
    /// Fleet size of both runs.
    pub replicas: usize,
    /// Ticks per replica.
    pub ticks_per_replica: u64,
    /// Wall-clock seconds with the store gate on (the default).
    pub gated_wall_s: f64,
    /// Wall-clock seconds with the gate off.
    pub ungated_wall_s: f64,
    /// Simulated ticks per second, gated.
    pub gated_throughput: f64,
    /// Simulated ticks per second, ungated.
    pub ungated_throughput: f64,
}

impl GateReport {
    /// Gated wall-clock over ungated wall-clock: how much reproducibility
    /// costs under this workload.
    pub fn ungated_speedup(&self) -> f64 {
        if self.ungated_wall_s <= 0.0 {
            f64::INFINITY
        } else {
            self.gated_wall_s / self.ungated_wall_s
        }
    }
}

/// Measures the store-gate cost: the scaling fleet (shared learner, every
/// replica healing a mid-run fault) run gated and ungated on parallel
/// workers at slice 1 — the gate's worst case, a barrier-adjacent wait per
/// tick.
pub fn gate_throughput_comparison(replicas: usize, ticks: u64, seed: u64) -> GateReport {
    let fleet = || {
        FleetConfig::builder()
            .service(ServiceConfig::tiny())
            .synthetic_workload(
                WorkloadMix::bidding(),
                ArrivalProcess::Constant { rate: 40.0 },
            )
            .replicas(replicas)
            .ticks(ticks)
            .base_seed(seed)
            .policy(PolicyChoice::FixSym(SynopsisKind::NearestNeighbor))
            .topology(LearningTopology::shared())
            .injections(
                InjectionPlanBuilder::new(4, 3, 1)
                    .inject(
                        ticks / 10,
                        FaultKind::BufferContention,
                        FaultTarget::DatabaseTier,
                        0.9,
                    )
                    .build(),
            )
            .series_capacity(512)
            .mode(ExecutionMode::Parallel { threads: None })
    };
    // Warm-up: one untimed run per mode first.  The original measurement
    // ran gated-then-ungated cold, so the gated run paid the process's
    // one-time costs (page faults, allocator pool growth, thread-pool
    // spin-up) and the "ungated speedup" came out *below* 1 — the gate
    // itself is nearly free at these scales, and the ordering artifact
    // dominated the signal.
    let _ = fleet().run();
    let _ = fleet().ungated().run();
    // Best of three per mode, like `run_bench_ticks`: the two walls are
    // compared against each other, so one noisy draw on either side skews
    // the ratio; the minimum is the scheduler-noise-free capability.
    const SAMPLES: usize = 3;
    let gated = (0..SAMPLES)
        .map(|_| fleet().run())
        .min_by_key(|run| run.wall())
        .expect("at least one sample");
    let ungated = (0..SAMPLES)
        .map(|_| fleet().ungated().run())
        .min_by_key(|run| run.wall())
        .expect("at least one sample");
    GateReport {
        replicas,
        ticks_per_replica: ticks,
        gated_wall_s: gated.wall().as_secs_f64(),
        ungated_wall_s: ungated.wall().as_secs_f64(),
        gated_throughput: gated.throughput_ticks_per_sec(),
        ungated_throughput: ungated.throughput_ticks_per_sec(),
    }
}

/// Runs the staggered-fault fleet under both learning topologies.
pub fn cold_start_comparison(replicas: usize, seed: u64) -> ColdStartReport {
    let shared = cold_start_fleet(replicas, seed, LearningTopology::shared());
    let isolated = cold_start_fleet(replicas, seed, LearningTopology::Isolated);
    let (shared_warm_attempts, shared_warm_recovery, shared_escalations) = warm_stats(&shared);
    let (isolated_warm_attempts, isolated_warm_recovery, isolated_escalations) =
        warm_stats(&isolated);
    ColdStartReport {
        shared_warm_attempts,
        shared_warm_recovery,
        shared_escalations,
        isolated_warm_attempts,
        isolated_warm_recovery,
        isolated_escalations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_point_measures_both_modes() {
        let point = scaling_point(2, 60, 7);
        assert_eq!(point.replicas, 2);
        assert!(point.parallel_wall_s > 0.0);
        assert!(point.sequential_wall_s > 0.0);
        assert!(point.parallel_throughput > 0.0);
        assert!(point.speedup() > 0.0);
    }

    #[test]
    fn warm_start_beats_cold_at_the_same_seed() {
        let report = warm_start_comparison(3, 42, LearnerChoice::locked());
        assert!(report.saved_examples >= 1, "cold fleet recorded experience");
        assert!(
            report.preloaded_fixes >= 1,
            "restored store knows fixes before the first tick"
        );
        assert!(
            report.warm_is_faster(),
            "warm {} vs cold {} mean attempts",
            report.warm_mean_attempts,
            report.cold_mean_attempts
        );
    }

    #[test]
    fn storm_victims_recover_faster_with_shared_learning() {
        let report = storm_recovery_comparison(6, 42, 1);
        assert_eq!(report.victims, 3, "50% of 6 replicas");
        assert!(report.recovered(), "shared storm run must quiesce healed");
        assert!(
            report.shared_recovers_faster(),
            "shared {:.1} ticks / {:.1} attempts vs isolated {:.1} / {:.1}",
            report.shared_mean_recovery,
            report.shared_mean_attempts,
            report.isolated_mean_recovery,
            report.isolated_mean_attempts,
        );
    }

    #[test]
    fn mix_fleet_quiesces_healed_and_reproduces_sequentially() {
        let fleet = || mix_fleet(3, 600, 42, ServiceProfile::Online, 0.02, 1);
        let sequential = fleet().mode(ExecutionMode::Sequential).run();
        assert!(sequential.is_complete());
        assert!(
            sequential.total_episodes() >= 1,
            "a 0.02-rate mix over 300 active ticks must fault somewhere"
        );
        assert_eq!(
            open_episodes(&sequential),
            0,
            "every demographic fault heals before quiesce"
        );
        let parallel = fleet()
            .mode(ExecutionMode::Parallel { threads: Some(3) })
            .run();
        assert_eq!(
            parallel.fingerprints(),
            sequential.fingerprints(),
            "mix runs are worker-count invariant"
        );
    }

    #[test]
    fn adversary_strikes_land_and_shared_learning_recovers_faster() {
        let report = adversarial_recovery_comparison(6, 42);
        assert!(
            report.struck_and_recovered(),
            "strikes shared {} (matched {}) / isolated {} (matched {}), open {} / {}",
            report.shared_strikes,
            report.shared_matched,
            report.isolated_strikes,
            report.isolated_matched,
            report.shared_open_episodes,
            report.isolated_open_episodes,
        );
        assert!(
            report.shared_recovers_faster(),
            "shared {:.1} ticks / {:.1} attempts vs isolated {:.1} / {:.1}",
            report.shared_mean_recovery,
            report.shared_mean_attempts,
            report.isolated_mean_recovery,
            report.isolated_mean_attempts,
        );
    }

    #[test]
    fn cascade_propagates_and_quiesces_healed() {
        let outcome = cascade_fleet(4, 42, LearnerChoice::locked(), 3, 64).run_to_quiescence();
        let propagated = cascade_injections(&outcome);
        assert!(
            (1..=3).contains(&propagated),
            "scout episode must seed 1..=budget propagations, got {propagated}"
        );
        let (strikes, matched, open, _, _) = reactive_strike_stats(&outcome);
        assert_eq!(strikes, propagated);
        assert!(
            matched >= 1,
            "at least one propagation opens an attributable episode"
        );
        assert_eq!(open, 0, "every attributed cascade episode heals");
    }

    #[test]
    fn seasons_fleet_faults_in_stormy_seasons_and_quiesces() {
        let outcome = seasons_fleet(3, 1024, 42, 64).run();
        assert!(
            outcome.total_episodes() >= 1,
            "a 0.06-rate stormy season must fault somewhere"
        );
        assert_eq!(open_fault_episodes(&outcome), 0);
    }

    #[test]
    fn gate_comparison_measures_both_modes() {
        let report = gate_throughput_comparison(3, 120, 7);
        assert_eq!(report.replicas, 3);
        assert!(report.gated_wall_s > 0.0);
        assert!(report.ungated_wall_s > 0.0);
        assert!(report.gated_throughput > 0.0);
        assert!(report.ungated_throughput > 0.0);
        assert!(report.ungated_speedup() > 0.0);
    }

    #[test]
    fn cold_start_warm_replicas_benefit_from_sharing() {
        let report = cold_start_comparison(4, 11);
        assert!(
            report.isolated_warm_attempts > 0.0,
            "warm replicas must have episodes"
        );
        assert!(
            report.shared_warm_attempts <= report.isolated_warm_attempts,
            "shared {} vs isolated {}",
            report.shared_warm_attempts,
            report.isolated_warm_attempts
        );
        assert!(
            report.shared_warm_recovery <= report.isolated_warm_recovery,
            "shared {} vs isolated {}",
            report.shared_warm_recovery,
            report.isolated_warm_recovery
        );
    }
}
