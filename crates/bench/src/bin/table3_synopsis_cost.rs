//! Regenerates Table 3: synopsis time-to-generate vs accuracy at 50 correct fixes.
use selfheal_bench::{emit, synopsis_comparison, table3_table, ExperimentScale};

fn main() {
    let runs = synopsis_comparison(ExperimentScale::full(), 5);
    emit(&table3_table(&runs), "table3_synopsis_cost");
}
