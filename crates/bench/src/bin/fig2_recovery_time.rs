//! Regenerates Figure 2: time to recover from failures, by cause category.
use selfheal_bench::{emit, fig2_recovery_time, ExperimentScale};

fn main() {
    let table = fig2_recovery_time(ExperimentScale::full(), 2);
    emit(&table, "fig2_recovery_time");
}
