//! Regenerates Figure 4 (synopsis accuracy vs correct fixes) and, from the
//! same runs, Table 3 (time-to-generate vs accuracy at 50 correct fixes).
use selfheal_bench::{emit, fig4_table, synopsis_comparison, table3_table, ExperimentScale};

fn main() {
    let runs = synopsis_comparison(ExperimentScale::full(), 5);
    emit(&fig4_table(&runs), "fig4_synopsis_accuracy");
    emit(&table3_table(&runs), "table3_synopsis_cost");
}
