//! Regenerates Figure 1: causes of failures in three large multitier services.
use selfheal_bench::{emit, fig1_failure_causes, ExperimentScale};

fn main() {
    let table = fig1_failure_causes(ExperimentScale::full(), 1);
    emit(&table, "fig1_failure_causes");
}
