//! Fleet scaling benchmark: replicas-vs-throughput and shared-vs-isolated
//! cold-start recovery, emitted as JSON for the bench trajectory.
//!
//! Two experiments:
//!
//! 1. **Scaling** — fleets of 1..=32 replicas × 5000 ticks each, run once
//!    through the parallel engine (worker threads) and once through the
//!    sequential tick-interleaver, reporting wall-clock, throughput, and the
//!    parallel speedup.  The >2× speedup claim is only meaningful on 4+
//!    cores; the JSON records the core count so single-core CI runs are
//!    interpreted correctly.
//! 2. **Cold start** — the same staggered fault hitting every replica in
//!    turn, once with one fleet-shared synopsis and once with isolated
//!    per-replica synopses.  Replicas whose fault arrives *after* another
//!    replica has healed it should recover in fewer attempts (and no more
//!    ticks) when the synopsis is shared.

use selfheal_bench::fleet::{cold_start_comparison, scaling_curve, ColdStartReport, ScalingPoint};
use std::fmt::Write as _;

fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "null".to_string()
    }
}

fn scaling_json(points: &[ScalingPoint]) -> String {
    let mut out = String::from("[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"replicas\": {}, \"ticks_per_replica\": {}, \"parallel_wall_s\": {}, \
             \"sequential_wall_s\": {}, \"speedup\": {}, \"parallel_throughput_ticks_per_s\": {}}}",
            p.replicas,
            p.ticks_per_replica,
            json_f64(p.parallel_wall_s),
            json_f64(p.sequential_wall_s),
            json_f64(p.speedup()),
            json_f64(p.parallel_throughput)
        );
    }
    out.push_str("\n  ]");
    out
}

fn cold_start_json(report: &ColdStartReport) -> String {
    let side = |label: &str, attempts: f64, recovery: f64, escalations: u64| {
        format!(
            "\"{label}\": {{\"warm_mean_fix_attempts\": {}, \"warm_mean_recovery_ticks\": {}, \
             \"escalations\": {escalations}}}",
            json_f64(attempts),
            json_f64(recovery)
        )
    };
    format!(
        "{{\n    {},\n    {},\n    \"shared_recovery_leq_isolated\": {},\n    \
         \"shared_attempts_leq_isolated\": {}\n  }}",
        side(
            "shared",
            report.shared_warm_attempts,
            report.shared_warm_recovery,
            report.shared_escalations
        ),
        side(
            "isolated",
            report.isolated_warm_attempts,
            report.isolated_warm_recovery,
            report.isolated_escalations
        ),
        report.shared_warm_recovery <= report.isolated_warm_recovery,
        report.shared_warm_attempts <= report.isolated_warm_attempts,
    )
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let ticks = 5_000u64;
    let replica_counts = [1usize, 2, 4, 8, 16, 32];

    eprintln!("fleet_scaling: {cores} cores, {ticks} ticks/replica");
    let points = scaling_curve(&replica_counts, ticks, 42);
    for p in &points {
        eprintln!(
            "  replicas {:>2}: parallel {:>7.3}s  sequential {:>7.3}s  speedup {:>5.2}x  {:>9.0} ticks/s",
            p.replicas,
            p.parallel_wall_s,
            p.sequential_wall_s,
            p.speedup(),
            p.parallel_throughput
        );
    }
    let full = points.last().expect("at least one scaling point");

    eprintln!("fleet_scaling: cold-start comparison (shared vs isolated synopsis)");
    let cold = cold_start_comparison(8, 42);
    eprintln!(
        "  warm-replica mean fix attempts: shared {:.2} vs isolated {:.2}",
        cold.shared_warm_attempts, cold.isolated_warm_attempts
    );
    eprintln!(
        "  warm-replica mean recovery:     shared {:.1} vs isolated {:.1} ticks",
        cold.shared_warm_recovery, cold.isolated_warm_recovery
    );

    let json = format!(
        "{{\n  \"machine\": {{\"cores\": {cores}}},\n  \"scaling\": {},\n  \"acceptance\": \
         {{\"replicas\": {}, \"ticks_per_replica\": {}, \"speedup\": {}, \
         \"speedup_claim_applicable\": {}, \"speedup_above_2x\": {}}},\n  \"cold_start\": {}\n}}",
        scaling_json(&points),
        full.replicas,
        full.ticks_per_replica,
        json_f64(full.speedup()),
        cores >= 4,
        full.speedup() > 2.0,
        cold_start_json(&cold),
    );
    println!("{json}");

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("fleet_scaling.json");
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("(written to {})", path.display()),
            Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
        }
    }
}
