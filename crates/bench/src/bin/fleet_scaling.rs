//! Fleet scaling benchmark: replicas-vs-throughput and shared-vs-isolated
//! cold-start recovery, emitted as JSON for the bench trajectory.
//!
//! Two experiments:
//!
//! 1. **Scaling** — fleets of 1..=32 replicas × 5000 ticks each, run once
//!    through the parallel engine (worker threads) and once through the
//!    sequential tick-interleaver, reporting wall-clock, throughput, and the
//!    parallel speedup.  The >2× speedup claim is only meaningful on 4+
//!    cores; the JSON records the core count so single-core CI runs are
//!    interpreted correctly.
//! 2. **Cold start** — the same staggered fault hitting every replica in
//!    turn, once with one fleet-shared synopsis and once with isolated
//!    per-replica synopses.  Replicas whose fault arrives *after* another
//!    replica has healed it should recover in fewer attempts (and no more
//!    ticks) when the synopsis is shared.

//! ## CLI
//!
//! ```text
//! fleet_scaling                       # full-scale experiments (JSON to stdout + results/)
//! fleet_scaling --smoke               # reduced 4-replica pass for CI
//! fleet_scaling --record trace.jsonl  # capture replica 0's workload, then run the smoke fleet
//! fleet_scaling --replay trace.jsonl  # replay the trace across the fleet; verifies replica 0
//!                                     # is byte-identical to the synthetic run it recorded
//! fleet_scaling --replicas N --ticks T  # override the smoke fleet's size
//! fleet_scaling --save-synopsis s.jsonl # persist the fleet's learned synopsis after the run
//! fleet_scaling --load-synopsis s.jsonl # warm-start from a saved synopsis; verifies the
//!                                       # store knows fixes before the first tick and that
//!                                       # the warm run beats a cold run at the same seed
//! fleet_scaling --shards N            # learn through a k-means-sharded store (N shards)
//! fleet_scaling --smoke --storm       # 50%-of-fleet fault storm: exits nonzero unless the
//!                                     # storm run recovers, shared beats isolated, and the
//!                                     # tick-sliced parallel fingerprints match sequential
//! fleet_scaling --smoke --fault-mix online:0.02
//!                                     # demographic fault generation (CauseMix of the given
//!                                     # profile at the given per-tick rate): exits nonzero
//!                                     # unless the mix run quiesces healed and parallel
//!                                     # fingerprints match sequential
//! fleet_scaling --smoke --sweep       # one fault of every catalog class at a fixed cadence
//!                                     # (FixSym training coverage)
//! fleet_scaling --smoke --ungated     # skip the StoreGate serialization (throughput over
//!                                     # reproducibility; see FleetConfig::ungated)
//! fleet_scaling --slice N             # tick-slice width of the scheduler's epochs
//! fleet_scaling --events SPEC         # overlay events on the smoke fleet, e.g.
//!                                     # "storm@200:0.5,surge@100:3:40"
//! fleet_scaling --bench-ticks         # tick-throughput baseline (4 replicas x 2000 ticks,
//!                                     # both engines), written to BENCH_ticks.json at the
//!                                     # repo root as the reference for hot-path work; when a
//!                                     # committed baseline from the same core count exists,
//!                                     # exits nonzero if sequential ticks/s regressed >30%
//! fleet_scaling --smoke --adversary   # reactive adversary strikes the weakest replica at
//!                                     # every epoch barrier: exits nonzero unless shared
//!                                     # learning beats isolated under fire and parallel
//!                                     # fingerprints match sequential
//! fleet_scaling --smoke --seasons     # seeded calm/moderate/stormy fault seasons: exits
//!                                     # nonzero unless the run faults, quiesces healed, and
//!                                     # parallel fingerprints match sequential
//! fleet_scaling --smoke --cascade     # a scout failure propagates along the ring dependency
//!                                     # via the reactive cascade engine: exits nonzero unless
//!                                     # it propagates within budget, heals, and parallel
//!                                     # fingerprints match sequential
//! ```

use selfheal_bench::fleet::{
    adversarial_fleet, adversarial_recovery_comparison, cascade_fleet, cascade_injections,
    cold_start_comparison, distinct_fault_kinds, gate_throughput_comparison, mean_injected_stats,
    mix_fleet, open_episodes, open_fault_episodes, reactive_strike_stats, scaling_curve,
    scaling_point, seasons_fleet, smoke_fleet, smoke_workload, storm_fleet,
    storm_recovery_comparison, warm_start_comparison, AdversarialRecoveryReport, ColdStartReport,
    GateReport, ScalingPoint, StormRecoveryReport, WarmStartReport, ADVERSARY_START,
    ADVERSARY_UNTIL, STORM_FRACTION, STORM_TICK,
};
use selfheal_core::harness::{EventChoice, FaultChoice, LearnerChoice, WorkloadChoice};
use selfheal_core::snapshot::SynopsisSnapshot;
use selfheal_core::synopsis::{Learner, SynopsisKind};
use selfheal_faults::{CatalogSweep, FaultKind, ServiceProfile};
use selfheal_fleet::ExecutionMode;
use selfheal_sim::seeds::{split_seed, SeedStream};
use selfheal_workload::{RecordedTrace, ReplayMode};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::exit;

fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "null".to_string()
    }
}

fn scaling_json(points: &[ScalingPoint]) -> String {
    let mut out = String::from("[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"replicas\": {}, \"ticks_per_replica\": {}, \"parallel_wall_s\": {}, \
             \"sequential_wall_s\": {}, \"speedup\": {}, \"parallel_throughput_ticks_per_s\": {}}}",
            p.replicas,
            p.ticks_per_replica,
            json_f64(p.parallel_wall_s),
            json_f64(p.sequential_wall_s),
            json_f64(p.speedup()),
            json_f64(p.parallel_throughput)
        );
    }
    out.push_str("\n  ]");
    out
}

fn warm_start_json(report: &WarmStartReport) -> String {
    format!(
        "{{\"saved_examples\": {}, \"preloaded_fixes\": {}, \"warm_mean_fix_attempts\": {}, \
         \"warm_mean_recovery_ticks\": {}, \"cold_mean_fix_attempts\": {}, \
         \"cold_mean_recovery_ticks\": {}, \"warm_faster\": {}}}",
        report.saved_examples,
        report.preloaded_fixes,
        json_f64(report.warm_mean_attempts),
        json_f64(report.warm_mean_recovery),
        json_f64(report.cold_mean_attempts),
        json_f64(report.cold_mean_recovery),
        report.warm_is_faster(),
    )
}

fn storm_recovery_json(report: &StormRecoveryReport, fingerprints_match: Option<bool>) -> String {
    let side = |label: &str, attempts: f64, recovery: f64, matched: usize, open: usize| {
        format!(
            "\"{label}\": {{\"mean_fix_attempts\": {}, \"mean_recovery_ticks\": {}, \
             \"matched_episodes\": {matched}, \"open_episodes\": {open}}}",
            json_f64(attempts),
            json_f64(recovery)
        )
    };
    format!(
        "{{\n    \"storm_tick\": {STORM_TICK},\n    \"fraction\": {STORM_FRACTION},\n    \
         \"victims\": {},\n    {},\n    {},\n    \"recovered\": {},\n    \
         \"shared_recovers_faster\": {},\n    \"fingerprints_match_sequential\": {}\n  }}",
        report.victims,
        side(
            "shared",
            report.shared_mean_attempts,
            report.shared_mean_recovery,
            report.shared_matched_episodes,
            report.shared_open_episodes
        ),
        side(
            "isolated",
            report.isolated_mean_attempts,
            report.isolated_mean_recovery,
            report.isolated_matched_episodes,
            report.isolated_open_episodes
        ),
        report.recovered(),
        report.shared_recovers_faster(),
        fingerprints_match
            .map(|b| b.to_string())
            .unwrap_or_else(|| "null".to_string()),
    )
}

fn adversarial_recovery_json(
    report: &AdversarialRecoveryReport,
    fingerprints_match: Option<bool>,
) -> String {
    let side =
        |label: &str, strikes: usize, matched: usize, attempts: f64, recovery: f64, open: usize| {
            format!(
                "\"{label}\": {{\"strikes\": {strikes}, \"matched_episodes\": {matched}, \
             \"mean_fix_attempts\": {}, \"mean_recovery_ticks\": {}, \"open_episodes\": {open}}}",
                json_f64(attempts),
                json_f64(recovery)
            )
        };
    format!(
        "{{\n    \"window\": [{ADVERSARY_START}, {ADVERSARY_UNTIL}],\n    {},\n    {},\n    \
         \"struck_and_recovered\": {},\n    \"shared_recovers_faster\": {},\n    \
         \"fingerprints_match_sequential\": {}\n  }}",
        side(
            "shared",
            report.shared_strikes,
            report.shared_matched,
            report.shared_mean_attempts,
            report.shared_mean_recovery,
            report.shared_open_episodes
        ),
        side(
            "isolated",
            report.isolated_strikes,
            report.isolated_matched,
            report.isolated_mean_attempts,
            report.isolated_mean_recovery,
            report.isolated_open_episodes
        ),
        report.struck_and_recovered(),
        report.shared_recovers_faster(),
        fingerprints_match
            .map(|b| b.to_string())
            .unwrap_or_else(|| "null".to_string()),
    )
}

fn store_gate_json(report: &GateReport) -> String {
    format!(
        "{{\"replicas\": {}, \"ticks_per_replica\": {}, \"gated_wall_s\": {}, \
         \"ungated_wall_s\": {}, \"gated_throughput_ticks_per_s\": {}, \
         \"ungated_throughput_ticks_per_s\": {}, \"ungated_speedup\": {}, \
         \"note\": \"warmed up, best of 3 per mode; an earlier sub-1.0 speedup was a \
         cold-start ordering artifact (the gated run went first and paid the process's \
         one-time costs), not gate overhead\"}}",
        report.replicas,
        report.ticks_per_replica,
        json_f64(report.gated_wall_s),
        json_f64(report.ungated_wall_s),
        json_f64(report.gated_throughput),
        json_f64(report.ungated_throughput),
        json_f64(report.ungated_speedup()),
    )
}

fn cold_start_json(report: &ColdStartReport) -> String {
    let side = |label: &str, attempts: f64, recovery: f64, escalations: u64| {
        format!(
            "\"{label}\": {{\"warm_mean_fix_attempts\": {}, \"warm_mean_recovery_ticks\": {}, \
             \"escalations\": {escalations}}}",
            json_f64(attempts),
            json_f64(recovery)
        )
    };
    format!(
        "{{\n    {},\n    {},\n    \"shared_recovery_leq_isolated\": {},\n    \
         \"shared_attempts_leq_isolated\": {}\n  }}",
        side(
            "shared",
            report.shared_warm_attempts,
            report.shared_warm_recovery,
            report.shared_escalations
        ),
        side(
            "isolated",
            report.isolated_warm_attempts,
            report.isolated_warm_recovery,
            report.isolated_escalations
        ),
        report.shared_warm_recovery <= report.isolated_warm_recovery,
        report.shared_warm_attempts <= report.isolated_warm_attempts,
    )
}

/// Command-line options; anything beyond the full default run selects the
/// reduced smoke path.
struct Args {
    smoke: bool,
    record: Option<PathBuf>,
    replay: Option<PathBuf>,
    replicas: Option<usize>,
    ticks: Option<u64>,
    save_synopsis: Option<PathBuf>,
    load_synopsis: Option<PathBuf>,
    shards: Option<usize>,
    storm: bool,
    fault_mix: Option<(ServiceProfile, f64)>,
    sweep: bool,
    ungated: bool,
    slice: Option<u64>,
    events: Vec<EventChoice>,
    bench_ticks: bool,
    store_gate: bool,
    adversary: bool,
    seasons: bool,
    cascade: bool,
}

impl Args {
    /// Whether any flag asked for the reduced smoke path instead of the
    /// full-scale experiment suite.
    fn wants_smoke(&self) -> bool {
        self.smoke
            || self.record.is_some()
            || self.replay.is_some()
            || self.replicas.is_some()
            || self.ticks.is_some()
            || self.save_synopsis.is_some()
            || self.load_synopsis.is_some()
            || self.shards.is_some()
            || self.storm
            || self.fault_mix.is_some()
            || self.sweep
            || self.ungated
            || self.slice.is_some()
            || !self.events.is_empty()
            || self.adversary
            || self.seasons
            || self.cascade
    }

    /// The learner recipe the flags describe.  Persistence needs one
    /// fleet-wide store to save or restore, so `--save-synopsis` /
    /// `--load-synopsis` promote the default private learning to a locked
    /// store; `--shards N` selects the k-means-sharded store.
    fn learner(&self) -> LearnerChoice {
        match self.shards {
            Some(shards) if shards > 0 => LearnerChoice::sharded(shards),
            _ if self.save_synopsis.is_some() || self.load_synopsis.is_some() => {
                LearnerChoice::locked()
            }
            _ => LearnerChoice::Private,
        }
    }
}

/// Parses `--fault-mix PROFILE:RATE` (e.g. `online:0.02`).
fn parse_fault_mix(spec: &str) -> Result<(ServiceProfile, f64), String> {
    let (name, rate) = spec
        .split_once(':')
        .ok_or_else(|| format!("\"{spec}\": expected PROFILE:RATE, e.g. online:0.02"))?;
    let profile = ServiceProfile::ALL
        .into_iter()
        .find(|p| p.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            format!("\"{name}\": unknown profile (expected one of online, content, readmostly)")
        })?;
    let rate: f64 = rate
        .parse()
        .map_err(|_| format!("\"{rate}\" is not a rate"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("rate {rate} must be in [0, 1]"));
    }
    Ok((profile, rate))
}

/// Parses one `--events` element: `storm@TICK:FRACTION[:SEVERITY]` or
/// `surge@TICK:FACTOR:DURATION`.
fn parse_event(spec: &str) -> Result<EventChoice, String> {
    let (kind, rest) = spec
        .split_once('@')
        .ok_or_else(|| format!("\"{spec}\": expected kind@tick:..."))?;
    let parts: Vec<&str> = rest.split(':').collect();
    let num = |part: &str| -> Result<f64, String> {
        part.parse::<f64>()
            .map_err(|_| format!("\"{spec}\": \"{part}\" is not a number"))
    };
    match (kind, parts.as_slice()) {
        ("storm", [tick, fraction]) => Ok(EventChoice::storm(
            num(tick)? as u64,
            FaultKind::BufferContention,
            num(fraction)?,
        )),
        ("storm", [tick, fraction, severity]) => Ok(EventChoice::FaultStorm {
            at_tick: num(tick)? as u64,
            kind: FaultKind::BufferContention,
            severity: num(severity)?,
            fraction: num(fraction)?,
        }),
        ("surge", [tick, factor, duration]) => Ok(EventChoice::surge(
            num(tick)? as u64,
            num(duration)? as u64,
            num(factor)?,
        )),
        _ => Err(format!(
            "\"{spec}\": expected storm@TICK:FRACTION[:SEVERITY] or surge@TICK:FACTOR:DURATION"
        )),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        record: None,
        replay: None,
        replicas: None,
        ticks: None,
        save_synopsis: None,
        load_synopsis: None,
        shards: None,
        storm: false,
        fault_mix: None,
        sweep: false,
        ungated: false,
        slice: None,
        events: Vec::new(),
        bench_ticks: false,
        store_gate: false,
        adversary: false,
        seasons: false,
        cascade: false,
    };
    let mut argv = std::env::args().skip(1);
    let missing = |flag: &str| -> ! {
        eprintln!("fleet_scaling: {flag} needs a value");
        exit(2);
    };
    fn numeric<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
        let Some(value) = value else {
            eprintln!("fleet_scaling: {flag} needs a value");
            exit(2);
        };
        value.parse().unwrap_or_else(|_| {
            eprintln!("fleet_scaling: {flag} needs a number, got \"{value}\"");
            exit(2);
        })
    }
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--record" => {
                args.record = Some(PathBuf::from(
                    argv.next().unwrap_or_else(|| missing("--record")),
                ))
            }
            "--replay" => {
                args.replay = Some(PathBuf::from(
                    argv.next().unwrap_or_else(|| missing("--replay")),
                ))
            }
            "--replicas" => args.replicas = Some(numeric("--replicas", argv.next())),
            "--ticks" => args.ticks = Some(numeric("--ticks", argv.next())),
            "--save-synopsis" => {
                args.save_synopsis = Some(PathBuf::from(
                    argv.next().unwrap_or_else(|| missing("--save-synopsis")),
                ))
            }
            "--load-synopsis" => {
                args.load_synopsis = Some(PathBuf::from(
                    argv.next().unwrap_or_else(|| missing("--load-synopsis")),
                ))
            }
            "--shards" => args.shards = Some(numeric("--shards", argv.next())),
            "--storm" => args.storm = true,
            "--fault-mix" => {
                let spec = argv.next().unwrap_or_else(|| missing("--fault-mix"));
                match parse_fault_mix(&spec) {
                    Ok(mix) => args.fault_mix = Some(mix),
                    Err(err) => {
                        eprintln!("fleet_scaling: --fault-mix {err}");
                        exit(2);
                    }
                }
            }
            "--sweep" => args.sweep = true,
            "--ungated" => args.ungated = true,
            "--bench-ticks" => args.bench_ticks = true,
            "--store-gate" => args.store_gate = true,
            "--adversary" => args.adversary = true,
            "--seasons" => args.seasons = true,
            "--cascade" => args.cascade = true,
            "--slice" => args.slice = Some(numeric("--slice", argv.next())),
            "--events" => {
                let spec = argv.next().unwrap_or_else(|| missing("--events"));
                for part in spec.split(',').filter(|p| !p.is_empty()) {
                    match parse_event(part) {
                        Ok(event) => args.events.push(event),
                        Err(err) => {
                            eprintln!("fleet_scaling: --events {err}");
                            exit(2);
                        }
                    }
                }
            }
            other => {
                eprintln!(
                    "fleet_scaling: unknown argument {other}\n\
                     usage: fleet_scaling [--smoke] [--record PATH] [--replay PATH] \
                     [--replicas N] [--ticks T] [--save-synopsis PATH] \
                     [--load-synopsis PATH] [--shards N] [--storm] \
                     [--fault-mix PROFILE:RATE] [--sweep] [--ungated] [--slice W] \
                     [--events SPEC] [--bench-ticks] [--store-gate] [--adversary] \
                     [--seasons] [--cascade]"
                );
                exit(2);
            }
        }
    }
    args
}

/// Pulls `"cores"` and the sequential `"ticks_per_s"` out of a committed
/// `BENCH_ticks.json` without a JSON parser dependency: the file is written
/// by this binary, so the field order is known.
fn parse_bench_baseline(json: &str) -> Option<(usize, f64)> {
    let field = |hay: &str, key: &str| -> Option<f64> {
        let start = hay.find(key)? + key.len();
        let rest = hay[start..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    };
    let cores = field(json, "\"cores\":")? as usize;
    let sequential = json.split("\"sequential\":").nth(1)?;
    let ticks_per_s = field(sequential, "\"ticks_per_s\":")?;
    Some((cores, ticks_per_s))
}

/// Fraction of the committed baseline the fresh sequential throughput must
/// reach: a >30% drop fails the `--bench-ticks` run.
const BENCH_TICKS_FLOOR: f64 = 0.7;

/// The `--bench-ticks` baseline: 4 replicas × 2000 ticks through both
/// engines, emitted to stdout *and* written to `BENCH_ticks.json` at the
/// repo root — the committed ticks/s reference future hot-path work
/// compares against.  When a committed baseline from a machine with the
/// same core count exists, a sequential throughput more than 30% below it
/// exits nonzero (and leaves the baseline file untouched) so hot-path
/// regressions fail CI instead of silently re-baselining.
fn run_bench_ticks() {
    const REPLICAS: usize = 4;
    const TICKS: u64 = 2_000;
    // Best of three: transient machine load easily costs 30%+ on one
    // sample, so the gate compares peak capability, not one noisy draw.
    const SAMPLES: usize = 3;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "fleet_scaling: tick-throughput baseline ({REPLICAS} replicas x {TICKS} ticks, \
         {cores} cores, best of {SAMPLES})"
    );
    let point = (0..SAMPLES)
        .map(|_| scaling_point(REPLICAS, TICKS, 42))
        .min_by(|a, b| a.sequential_wall_s.total_cmp(&b.sequential_wall_s))
        .expect("at least one sample");
    let total_ticks = (REPLICAS as u64 * TICKS) as f64;
    let sequential_throughput = if point.sequential_wall_s > 0.0 {
        total_ticks / point.sequential_wall_s
    } else {
        f64::INFINITY
    };
    eprintln!(
        "  sequential {:>9.0} ticks/s ({:.3}s)   parallel {:>9.0} ticks/s ({:.3}s)   \
         speedup {:.2}x",
        sequential_throughput,
        point.sequential_wall_s,
        point.parallel_throughput,
        point.parallel_wall_s,
        point.speedup(),
    );
    let json = format!(
        "{{\n  \"bench\": \"fleet_ticks\",\n  \"machine\": {{\"cores\": {cores}}},\n  \
         \"replicas\": {REPLICAS},\n  \"ticks_per_replica\": {TICKS},\n  \
         \"sequential\": {{\"wall_s\": {}, \"ticks_per_s\": {}}},\n  \
         \"parallel\": {{\"wall_s\": {}, \"ticks_per_s\": {}}},\n  \"speedup\": {}\n}}\n",
        json_f64(point.sequential_wall_s),
        json_f64(sequential_throughput),
        json_f64(point.parallel_wall_s),
        json_f64(point.parallel_throughput),
        json_f64(point.speedup()),
    );
    print!("{json}");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_ticks.json");
    if let Ok(committed) = std::fs::read_to_string(&path) {
        match parse_bench_baseline(&committed) {
            Some((baseline_cores, baseline_seq)) if baseline_cores == cores => {
                let floor = baseline_seq * BENCH_TICKS_FLOOR;
                if sequential_throughput < floor {
                    eprintln!(
                        "fleet_scaling: sequential throughput regressed >30% below the \
                         committed baseline ({sequential_throughput:.0} ticks/s vs \
                         {baseline_seq:.0}; floor {floor:.0}) — baseline left untouched. \
                         To re-baseline deliberately, delete {} and rerun.",
                        path.display()
                    );
                    exit(1);
                }
                eprintln!(
                    "  regression gate: {sequential_throughput:.0} ticks/s >= {floor:.0} \
                     (70% of the committed {baseline_seq:.0})"
                );
            }
            Some((baseline_cores, _)) => eprintln!(
                "  regression gate skipped: baseline is from a {baseline_cores}-core machine, \
                 this one has {cores}"
            ),
            None => eprintln!(
                "  regression gate skipped: could not parse {}",
                path.display()
            ),
        }
    }
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("(written to {})", path.display()),
        Err(err) => {
            eprintln!("fleet_scaling: could not write {}: {err}", path.display());
            exit(1);
        }
    }
}

/// The `--store-gate` path: just the gated-vs-ungated comparison (same
/// 8×2000 shape as the full run's `store_gate` section), printed as that
/// section's JSON row.  Exists so the committed `results/fleet_scaling.json`
/// row can be regenerated — and anomalies like the original below-1.0
/// "speedup" investigated — without the multi-minute full suite.
fn run_store_gate() {
    eprintln!("fleet_scaling: store-gate cost (gated vs ungated, warmed up, best of 3)");
    let gate = gate_throughput_comparison(8, 2_000, 42);
    eprintln!(
        "  gated {:.3}s vs ungated {:.3}s ({:.2}x ungated speedup)",
        gate.gated_wall_s,
        gate.ungated_wall_s,
        gate.ungated_speedup(),
    );
    println!("{}", store_gate_json(&gate));
}

/// Per-replica failure details as a JSON array — `[]` on a clean run, so
/// downstream tooling can gate on emptiness instead of re-parsing stderr.
fn replica_errors_json(errors: &[selfheal_fleet::ReplicaError]) -> String {
    if errors.is_empty() {
        return "[]".to_string();
    }
    let mut out = String::from("[");
    for (i, error) in errors.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{{\"replica\": {}, \"message\": ", error.replica);
        selfheal_jsonl::push_json_string(&mut out, &error.message);
        out.push('}');
    }
    out.push(']');
    out
}

/// Reduced pass for CI and the record/replay quickstart: one scaling point
/// and a small cold-start comparison (so every JSON emitter runs), plus the
/// smoke fleet itself with optional trace capture/replay.
fn run_smoke(args: &Args) {
    let base_seed = 42u64;
    let replicas = args.replicas.unwrap_or(4).max(1);
    let mut ticks = args.ticks.unwrap_or(400).max(40);

    let workload = match &args.replay {
        Some(path) => {
            let trace = RecordedTrace::load(path).unwrap_or_else(|err| {
                eprintln!("fleet_scaling: cannot load {}: {err}", path.display());
                exit(1);
            });
            // A truncate-mode replay past the end of the trace would go
            // quiet (and fail the byte-identity check for the wrong
            // reason), so the run is clamped to the recorded length.
            if (trace.len() as u64) < ticks {
                eprintln!(
                    "fleet_scaling: trace holds {} ticks, clamping the run from {ticks}",
                    trace.len()
                );
                ticks = trace.len() as u64;
            }
            eprintln!(
                "fleet_scaling: replaying {} ticks / {} requests from {}",
                trace.len(),
                trace.total_requests(),
                path.display()
            );
            WorkloadChoice::replay(trace, ReplayMode::Truncate, 0)
        }
        None => smoke_workload(),
    };

    if let Some(path) = &args.record {
        let mut source =
            workload.source_for_replica(split_seed(base_seed, 0, SeedStream::Workload), 0);
        let trace = RecordedTrace::capture(source.as_mut(), ticks);
        if let Err(err) = trace.save(path) {
            eprintln!("fleet_scaling: cannot write {}: {err}", path.display());
            exit(1);
        }
        eprintln!(
            "fleet_scaling: recorded {} ticks / {} requests to {}",
            trace.len(),
            trace.total_requests(),
            path.display()
        );
    }

    // Warm start: restore the saved synopsis and verify the store knows
    // fixes *before* the first tick (the whole point of persistence).
    let learner = args.learner();
    let loaded: Option<(SynopsisSnapshot, usize)> = args.load_synopsis.as_ref().map(|path| {
        let snapshot = SynopsisSnapshot::load(path).unwrap_or_else(|err| {
            eprintln!("fleet_scaling: cannot load {}: {err}", path.display());
            exit(1);
        });
        let mut probe = learner.build_store(SynopsisKind::NearestNeighbor);
        probe.restore(&snapshot);
        let preloaded = probe.correct_fixes_learned();
        eprintln!(
            "fleet_scaling: loaded {} outcomes from {} -> {} correct fixes known before tick 0",
            snapshot.len(),
            path.display(),
            preloaded
        );
        (snapshot, preloaded)
    });

    let slice = args.slice.unwrap_or(1).max(1);
    // A sweep injects one fault of every catalog class: start a tenth into
    // the run and space the classes over the following 60%, leaving a tail
    // for the healer to drain the last classes.
    let sweep_choice = args.sweep.then(|| {
        let start = ticks / 10;
        let classes = CatalogSweep::kinds().len() as u64;
        let spacing = ((ticks * 6 / 10) / classes).max(1);
        FaultChoice::sweep(start, spacing)
    });
    eprintln!(
        "fleet_scaling: smoke fleet ({replicas} replicas x {ticks} ticks, {} learning, \
         slice {slice}{}{})",
        learner.label(),
        if args.sweep { ", catalog sweep" } else { "" },
        if args.ungated { ", ungated" } else { "" },
    );
    let mut fleet = smoke_fleet(replicas, ticks, base_seed, workload.clone())
        .learner(learner)
        .slice(slice)
        .events(args.events.iter().copied());
    if let Some(choice) = &sweep_choice {
        fleet = fleet.faults(choice.clone());
    }
    if args.ungated {
        fleet = fleet.ungated();
    }
    if let Some((snapshot, _)) = &loaded {
        fleet = fleet.warm_start(snapshot.clone());
    }
    // Persistence is incremental: the store streams every drained batch to
    // the file as the fleet runs, so even a killed run leaves a restorable
    // snapshot; by quiesce (the engine flushes inside the timed region) the
    // file is complete.
    if let Some(path) = &args.save_synopsis {
        fleet = fleet.persist_synopsis(path.clone());
    }
    let outcome = fleet.run();
    if !outcome.errors().is_empty() {
        eprintln!(
            "fleet_scaling: {} of {replicas} replicas died mid-run:",
            outcome.errors().len()
        );
        for error in outcome.errors() {
            eprintln!("  {error}");
        }
    }
    let fingerprints = outcome.fingerprints();

    if let Some(path) = &args.save_synopsis {
        let Some(store) = outcome.store() else {
            eprintln!("fleet_scaling: no fleet-wide store to save (private learning)");
            exit(1);
        };
        let snapshot = store.snapshot();
        let on_disk = match SynopsisSnapshot::load(path) {
            Ok(on_disk) => on_disk,
            Err(err) => {
                eprintln!("fleet_scaling: cannot re-load {}: {err}", path.display());
                exit(1);
            }
        };
        if on_disk.len() != snapshot.len() {
            eprintln!(
                "fleet_scaling: incremental log holds {} outcomes but the store holds {}",
                on_disk.len(),
                snapshot.len()
            );
            exit(1);
        }
        eprintln!(
            "fleet_scaling: streamed {} outcomes ({} successes) to {} (append-on-drain)",
            on_disk.len(),
            on_disk.positives(),
            path.display()
        );
    }

    // Warm-vs-cold: run the same fleet with and without the snapshot, both
    // tick-interleaved (sequential) so shared-store drain timing — and with
    // it the attempt counts the CI gate compares — cannot vary with thread
    // scheduling.
    let warm_cold: Option<WarmStartReport> = loaded.as_ref().map(|(snapshot, preloaded)| {
        let comparison_fleet = || {
            smoke_fleet(replicas, ticks, base_seed, workload.clone())
                .learner(learner)
                .mode(ExecutionMode::Sequential)
        };
        let cold = comparison_fleet().run();
        let warm = comparison_fleet().warm_start(snapshot.clone()).run();
        let (cold_mean_attempts, cold_mean_recovery) = mean_injected_stats(&cold);
        let (warm_mean_attempts, warm_mean_recovery) = mean_injected_stats(&warm);
        eprintln!(
            "  warm-start: {warm_mean_attempts:.2} mean fix attempts vs {cold_mean_attempts:.2} \
             cold ({preloaded} known fixes preloaded)"
        );
        WarmStartReport {
            saved_examples: snapshot.len(),
            preloaded_fixes: *preloaded,
            cold_mean_attempts,
            warm_mean_attempts,
            cold_mean_recovery,
            warm_mean_recovery,
        }
    });

    // A replayed trace must reproduce the synthetic run it was recorded
    // from: replica 0 (phase 0) is byte-identical by construction.
    let replay_identical = args.replay.as_ref().map(|_| {
        let synthetic = smoke_fleet(1, ticks, base_seed, smoke_workload()).run();
        let identical = fingerprints[0] == synthetic.fingerprints()[0];
        eprintln!(
            "  replica 0 fingerprint {:#018x} vs synthetic {:#018x} -> byte_identical={identical}",
            fingerprints[0],
            synthetic.fingerprints()[0]
        );
        identical
    });

    // The storm smoke: shared-vs-isolated recovery under a 50% fleet storm,
    // plus the scheduler's equivalence contract — tick-sliced parallel
    // execution must fingerprint-match the sequential interleave.
    let storm: Option<(StormRecoveryReport, bool)> = args.storm.then(|| {
        let storm_replicas = replicas.max(4);
        eprintln!(
            "fleet_scaling: storm smoke ({storm_replicas} replicas, {:.0}% hit at tick \
             {STORM_TICK}, slice {slice})",
            STORM_FRACTION * 100.0
        );
        let report = storm_recovery_comparison(storm_replicas, base_seed, slice);
        eprintln!(
            "  storm recovery: shared {:.2} attempts / {:.1} ticks vs isolated {:.2} / {:.1} \
             ({} victims, {} open episodes)",
            report.shared_mean_attempts,
            report.shared_mean_recovery,
            report.isolated_mean_attempts,
            report.isolated_mean_recovery,
            report.victims,
            report.shared_open_episodes,
        );
        let shared = LearnerChoice::Locked { batch: 1 };
        // Pin a multi-worker count: with `threads: None` a 1-core runner
        // would clamp to one worker and compare two identical
        // single-threaded sweeps, proving nothing about the store gate.
        let parallel = storm_fleet(storm_replicas, base_seed, shared, slice)
            .mode(ExecutionMode::Parallel { threads: Some(3) })
            .run();
        let sequential = storm_fleet(storm_replicas, base_seed, shared, slice)
            .mode(ExecutionMode::Sequential)
            .run();
        let fingerprints_match = parallel.fingerprints() == sequential.fingerprints();
        eprintln!(
            "  equivalence: tick-sliced parallel fingerprints {} the sequential interleave",
            if fingerprints_match {
                "match"
            } else {
                "DIVERGE from"
            }
        );
        (report, fingerprints_match)
    });

    // The demographic-mix smoke: faults drawn from a CauseMix at a
    // controlled rate (the paper's Section 4.2 active stimulation), run
    // once sequentially and once tick-sliced parallel.  Gates below require
    // the run to quiesce healed and the fingerprints to match.
    struct MixSmoke {
        profile: ServiceProfile,
        rate: f64,
        episodes: usize,
        open: usize,
        kinds: usize,
        fingerprints_match: bool,
    }
    let mix: Option<MixSmoke> = args.fault_mix.map(|(profile, rate)| {
        let mix_replicas = replicas.max(3);
        // The healing tail (the quiet half of the run) must outlast a full
        // escalation — a service restart alone takes ~300 ticks — so the
        // mix smoke refuses to run shorter than 800 ticks.
        let mix_ticks = ticks.max(800);
        eprintln!(
            "fleet_scaling: demographic-mix smoke ({mix_replicas} replicas x {mix_ticks} \
             ticks, {} mix at rate {rate}/tick, slice {slice})",
            profile.name()
        );
        let sequential = mix_fleet(mix_replicas, mix_ticks, base_seed, profile, rate, slice)
            .mode(ExecutionMode::Sequential)
            .run();
        let parallel = mix_fleet(mix_replicas, mix_ticks, base_seed, profile, rate, slice)
            .mode(ExecutionMode::Parallel { threads: Some(3) })
            .run();
        let episodes = sequential.total_episodes();
        let open = open_episodes(&sequential);
        let kinds = distinct_fault_kinds(&sequential);
        let fingerprints_match = parallel.fingerprints() == sequential.fingerprints();
        eprintln!(
            "  mix run: {episodes} episodes over {kinds} distinct failure classes, {open} \
             still open at quiesce; parallel fingerprints {} sequential",
            if fingerprints_match {
                "match"
            } else {
                "DIVERGE from"
            }
        );
        MixSmoke {
            profile,
            rate,
            episodes,
            open,
            kinds,
            fingerprints_match,
        }
    });

    // The adversarial smoke: a reactive adversary strikes the currently-
    // weakest replica at every epoch barrier, once against a shared store
    // and once against isolated stores, both auto-quiesced.  The equivalence
    // leg re-runs the shared fleet tick-sliced parallel: reactive actions
    // resolve at deterministic barriers, so the fingerprints must match.
    let adversary: Option<(AdversarialRecoveryReport, bool)> = args.adversary.then(|| {
        let n = replicas.max(6);
        eprintln!(
            "fleet_scaling: adversarial smoke ({n} replicas, strikes in \
             [{ADVERSARY_START}, {ADVERSARY_UNTIL}), auto-quiesce)"
        );
        let report = adversarial_recovery_comparison(n, base_seed);
        eprintln!(
            "  adversarial recovery: shared {:.2} attempts / {:.1} ticks over {} matched \
             strikes vs isolated {:.2} / {:.1} over {}",
            report.shared_mean_attempts,
            report.shared_mean_recovery,
            report.shared_matched,
            report.isolated_mean_attempts,
            report.isolated_mean_recovery,
            report.isolated_matched,
        );
        let shared = LearnerChoice::Locked { batch: 1 };
        let parallel = adversarial_fleet(n, base_seed, shared, 64)
            .mode(ExecutionMode::Parallel { threads: Some(3) })
            .run_to_quiescence();
        let sequential = adversarial_fleet(n, base_seed, shared, 64).run_to_quiescence();
        let fingerprints_match = parallel.fingerprints() == sequential.fingerprints();
        eprintln!(
            "  equivalence: reactive parallel fingerprints {} the sequential interleave",
            if fingerprints_match {
                "match"
            } else {
                "DIVERGE from"
            }
        );
        (report, fingerprints_match)
    });

    // The seasons smoke: seeded calm/moderate/stormy generation-rate
    // seasons, sequential vs tick-sliced parallel.
    struct SeasonsSmoke {
        episodes: usize,
        open: usize,
        fingerprints_match: bool,
    }
    let seasons: Option<SeasonsSmoke> = args.seasons.then(|| {
        let n = replicas.max(3);
        let season_ticks = ticks.max(1024);
        eprintln!(
            "fleet_scaling: seasons smoke ({n} replicas x {season_ticks} ticks, 128-tick \
             seasons over rates [0, 0.02, 0.06])"
        );
        let sequential = seasons_fleet(n, season_ticks, base_seed, 64).run();
        let parallel = seasons_fleet(n, season_ticks, base_seed, 64)
            .mode(ExecutionMode::Parallel { threads: Some(3) })
            .run();
        let episodes = sequential.total_episodes();
        let open = open_fault_episodes(&sequential);
        let fingerprints_match = parallel.fingerprints() == sequential.fingerprints();
        eprintln!(
            "  seasons run: {episodes} episodes, {open} still open at quiesce; parallel \
             fingerprints {} sequential",
            if fingerprints_match {
                "match"
            } else {
                "DIVERGE from"
            }
        );
        SeasonsSmoke {
            episodes,
            open,
            fingerprints_match,
        }
    });

    // The cascade smoke: a scout failure on replica 0 propagates along the
    // ring dependency through the reactive cascade engine.
    struct CascadeSmoke {
        budget: usize,
        propagated: usize,
        matched: usize,
        open: usize,
        fingerprints_match: bool,
    }
    let cascade: Option<CascadeSmoke> = args.cascade.then(|| {
        let n = replicas.max(4);
        let budget = 3usize;
        eprintln!("fleet_scaling: cascade smoke ({n} replicas, budget {budget}, auto-quiesce)");
        let sequential =
            cascade_fleet(n, base_seed, LearnerChoice::locked(), budget, 64).run_to_quiescence();
        let parallel = cascade_fleet(n, base_seed, LearnerChoice::locked(), budget, 64)
            .mode(ExecutionMode::Parallel { threads: Some(3) })
            .run_to_quiescence();
        let propagated = cascade_injections(&sequential);
        let (_, matched, open, _, _) = reactive_strike_stats(&sequential);
        let fingerprints_match = parallel.fingerprints() == sequential.fingerprints();
        eprintln!(
            "  cascade run: {propagated} propagations ({matched} attributable, {open} still \
             open); parallel fingerprints {} sequential",
            if fingerprints_match {
                "match"
            } else {
                "DIVERGE from"
            }
        );
        CascadeSmoke {
            budget,
            propagated,
            matched,
            open,
            fingerprints_match,
        }
    });

    eprintln!("fleet_scaling: smoke scaling point + cold start (JSON emitter check)");
    let points = scaling_curve(&[replicas], ticks, base_seed);
    let cold = cold_start_comparison(3, base_seed);

    let fingerprint_json = fingerprints
        .iter()
        .map(|f| format!("\"{f:#018x}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let smoke_warm_json = warm_cold
        .as_ref()
        .map(warm_start_json)
        .unwrap_or_else(|| "null".to_string());
    let storm_json = storm
        .as_ref()
        .map(|(report, fingerprints_match)| storm_recovery_json(report, Some(*fingerprints_match)))
        .unwrap_or_else(|| "null".to_string());
    let mix_json = mix
        .as_ref()
        .map(|m| {
            format!(
                "{{\"profile\": \"{}\", \"rate\": {}, \"episodes\": {}, \"open_episodes\": {}, \
                 \"distinct_fault_kinds\": {}, \"fingerprints_match_sequential\": {}}}",
                m.profile.name(),
                json_f64(m.rate),
                m.episodes,
                m.open,
                m.kinds,
                m.fingerprints_match,
            )
        })
        .unwrap_or_else(|| "null".to_string());
    let adversary_json = adversary
        .as_ref()
        .map(|(report, fingerprints_match)| {
            adversarial_recovery_json(report, Some(*fingerprints_match))
        })
        .unwrap_or_else(|| "null".to_string());
    let seasons_json = seasons
        .as_ref()
        .map(|s| {
            format!(
                "{{\"episodes\": {}, \"open_episodes\": {}, \
                 \"fingerprints_match_sequential\": {}}}",
                s.episodes, s.open, s.fingerprints_match,
            )
        })
        .unwrap_or_else(|| "null".to_string());
    let cascade_json = cascade
        .as_ref()
        .map(|c| {
            format!(
                "{{\"budget\": {}, \"propagations\": {}, \"matched_episodes\": {}, \
                 \"open_episodes\": {}, \"fingerprints_match_sequential\": {}}}",
                c.budget, c.propagated, c.matched, c.open, c.fingerprints_match,
            )
        })
        .unwrap_or_else(|| "null".to_string());
    let sweep_json = if args.sweep {
        format!(
            "{{\"classes\": {}, \"episodes\": {}, \"open_episodes\": {}, \
             \"distinct_fault_kinds\": {}}}",
            CatalogSweep::kinds().len(),
            outcome.total_episodes(),
            open_episodes(&outcome),
            distinct_fault_kinds(&outcome),
        )
    } else {
        "null".to_string()
    };
    let json = format!(
        "{{\n  \"mode\": \"smoke\",\n  \"replicas\": {replicas},\n  \"ticks\": {ticks},\n  \
         \"slice\": {slice},\n  \"gated\": {},\n  \
         \"workload\": \"{}\",\n  \"learner\": \"{}\",\n  \"goodput\": {},\n  \
         \"throughput_ticks_per_s\": {},\n  \
         \"total_fixes\": {},\n  \"episodes\": {},\n  \"replica_errors\": {},\n  \
         \"fingerprints\": [{fingerprint_json}],\n  \
         \"replay_byte_identical\": {},\n  \"warm_start\": {smoke_warm_json},\n  \
         \"storm_recovery\": {storm_json},\n  \
         \"adversarial_recovery\": {adversary_json},\n  \
         \"seasons\": {seasons_json},\n  \"cascade\": {cascade_json},\n  \
         \"fault_mix\": {mix_json},\n  \"sweep\": {sweep_json},\n  \
         \"scaling\": {},\n  \"cold_start\": {}\n}}",
        !args.ungated,
        workload.label(),
        learner.label(),
        json_f64(outcome.goodput_fraction()),
        json_f64(outcome.throughput_ticks_per_sec()),
        outcome.total_fixes_initiated(),
        outcome.total_episodes(),
        replica_errors_json(outcome.errors()),
        replay_identical
            .map(|b| b.to_string())
            .unwrap_or_else(|| "null".to_string()),
        scaling_json(&points),
        cold_start_json(&cold),
    );
    println!("{json}");

    if replay_identical == Some(false) {
        eprintln!("fleet_scaling: replay diverged from the synthetic run");
        exit(1);
    }
    if let Some((_, preloaded)) = &loaded {
        if *preloaded == 0 {
            eprintln!(
                "fleet_scaling: loaded synopsis taught the store nothing before the first tick"
            );
            exit(1);
        }
    }
    // Gate on regression (warm strictly worse), not on strict improvement:
    // when the cold run is already at the one-attempt floor, warm can only
    // tie, and a tie is success.
    if let Some(report) = &warm_cold {
        if report.cold_mean_attempts > 0.0 && report.warm_mean_attempts > report.cold_mean_attempts
        {
            eprintln!(
                "fleet_scaling: warm start regressed vs the cold run \
                 ({:.2} vs {:.2} mean fix attempts)",
                report.warm_mean_attempts, report.cold_mean_attempts
            );
            exit(1);
        }
    }
    // The storm gates: the storm run must heal everything it opened, shared
    // learning must beat isolated, and the tick-sliced parallel run must be
    // fingerprint-identical to the sequential interleave.
    if let Some((report, fingerprints_match)) = &storm {
        if !report.recovered() {
            eprintln!(
                "fleet_scaling: storm run did not recover ({} of {} victims opened an \
                 episode, {} still open at quiesce)",
                report.shared_matched_episodes, report.victims, report.shared_open_episodes
            );
            exit(1);
        }
        if !report.shared_recovers_faster() {
            eprintln!(
                "fleet_scaling: shared learning did not beat isolated under the storm \
                 ({:.1} vs {:.1} mean recovery ticks)",
                report.shared_mean_recovery, report.isolated_mean_recovery
            );
            exit(1);
        }
        if !fingerprints_match {
            eprintln!(
                "fleet_scaling: tick-sliced parallel fingerprints diverged from run_sequential"
            );
            exit(1);
        }
    }
    // The adversarial gates: both runs must land attributable strikes that
    // all heal, shared learning must beat isolated under targeted fire, and
    // the reactive parallel run must fingerprint-match sequential.
    if let Some((report, fingerprints_match)) = &adversary {
        if !report.struck_and_recovered() {
            eprintln!(
                "fleet_scaling: adversarial run did not strike-and-recover (shared {} strikes \
                 / {} matched / {} open; isolated {} / {} / {})",
                report.shared_strikes,
                report.shared_matched,
                report.shared_open_episodes,
                report.isolated_strikes,
                report.isolated_matched,
                report.isolated_open_episodes,
            );
            exit(1);
        }
        if !report.shared_recovers_faster() {
            eprintln!(
                "fleet_scaling: shared learning did not beat isolated under the adversary \
                 ({:.1} vs {:.1} mean recovery ticks)",
                report.shared_mean_recovery, report.isolated_mean_recovery
            );
            exit(1);
        }
        if !fingerprints_match {
            eprintln!(
                "fleet_scaling: adversarial parallel fingerprints diverged from run_sequential"
            );
            exit(1);
        }
    }
    // The seasons gates: the stormy seasons must fault, the run must
    // quiesce healed, and parallel must fingerprint-match sequential.
    if let Some(seasons) = &seasons {
        if seasons.episodes == 0 {
            eprintln!("fleet_scaling: the fault seasons injected nothing observable");
            exit(1);
        }
        if seasons.open > 0 {
            eprintln!(
                "fleet_scaling: seasons run did not quiesce healed ({} of {} episodes open)",
                seasons.open, seasons.episodes
            );
            exit(1);
        }
        if !seasons.fingerprints_match {
            eprintln!("fleet_scaling: seasons parallel fingerprints diverged from run_sequential");
            exit(1);
        }
    }
    // The cascade gates: the scout must seed 1..=budget propagations, at
    // least one must open an attributable episode, every attributed episode
    // must heal, and parallel must fingerprint-match sequential.
    if let Some(cascade) = &cascade {
        if cascade.propagated == 0 || cascade.propagated > cascade.budget {
            eprintln!(
                "fleet_scaling: cascade propagated {} times (expected 1..={})",
                cascade.propagated, cascade.budget
            );
            exit(1);
        }
        if cascade.matched == 0 || cascade.open > 0 {
            eprintln!(
                "fleet_scaling: cascade episodes not attributable or unhealed ({} matched, \
                 {} open)",
                cascade.matched, cascade.open
            );
            exit(1);
        }
        if !cascade.fingerprints_match {
            eprintln!("fleet_scaling: cascade parallel fingerprints diverged from run_sequential");
            exit(1);
        }
    }
    // The demographic-mix gates: the mix must actually fault, every episode
    // must heal before quiesce, and the parallel run must be
    // fingerprint-identical to the sequential interleave.
    if let Some(mix) = &mix {
        if mix.episodes == 0 {
            eprintln!(
                "fleet_scaling: the {} mix at rate {} injected nothing observable",
                mix.profile.name(),
                mix.rate
            );
            exit(1);
        }
        if mix.open > 0 {
            eprintln!(
                "fleet_scaling: mix run did not quiesce healed ({} of {} episodes still open)",
                mix.open, mix.episodes
            );
            exit(1);
        }
        if !mix.fingerprints_match {
            eprintln!("fleet_scaling: mix-run parallel fingerprints diverged from run_sequential");
            exit(1);
        }
    }
    // The sweep gates: the catalog sweep must actually manifest — episodes
    // across several distinct failure classes — or the training-coverage
    // run covered nothing.
    if args.sweep {
        let episodes = outcome.total_episodes();
        let kinds = distinct_fault_kinds(&outcome);
        if episodes == 0 || kinds < 2 {
            eprintln!(
                "fleet_scaling: catalog sweep produced {episodes} episodes over {kinds} \
                 distinct failure classes — training coverage is broken"
            );
            exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    if args.bench_ticks {
        run_bench_ticks();
        return;
    }
    if args.store_gate {
        run_store_gate();
        return;
    }
    if args.wants_smoke() {
        run_smoke(&args);
        return;
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let ticks = 5_000u64;
    let replica_counts = [1usize, 2, 4, 8, 16, 32];

    eprintln!("fleet_scaling: {cores} cores, {ticks} ticks/replica");
    let points = scaling_curve(&replica_counts, ticks, 42);
    for p in &points {
        eprintln!(
            "  replicas {:>2}: parallel {:>7.3}s  sequential {:>7.3}s  speedup {:>5.2}x  {:>9.0} ticks/s",
            p.replicas,
            p.parallel_wall_s,
            p.sequential_wall_s,
            p.speedup(),
            p.parallel_throughput
        );
    }
    let full = points.last().expect("at least one scaling point");

    eprintln!("fleet_scaling: cold-start comparison (shared vs isolated synopsis)");
    let cold = cold_start_comparison(8, 42);
    eprintln!(
        "  warm-replica mean fix attempts: shared {:.2} vs isolated {:.2}",
        cold.shared_warm_attempts, cold.isolated_warm_attempts
    );
    eprintln!(
        "  warm-replica mean recovery:     shared {:.1} vs isolated {:.1} ticks",
        cold.shared_warm_recovery, cold.isolated_warm_recovery
    );

    eprintln!("fleet_scaling: warm-start comparison (cold run vs snapshot-restored run)");
    let warm = warm_start_comparison(6, 42, LearnerChoice::locked());
    eprintln!(
        "  mean fix attempts: warm {:.2} vs cold {:.2} ({} outcomes saved, {} fixes preloaded)",
        warm.warm_mean_attempts, warm.cold_mean_attempts, warm.saved_examples, warm.preloaded_fixes
    );

    eprintln!("fleet_scaling: storm recovery (50% fleet storm, shared vs isolated learning)");
    let storm = storm_recovery_comparison(8, 42, 1);
    eprintln!(
        "  victims' mean recovery: shared {:.1} ticks / {:.2} attempts vs isolated {:.1} / {:.2}",
        storm.shared_mean_recovery,
        storm.shared_mean_attempts,
        storm.isolated_mean_recovery,
        storm.isolated_mean_attempts,
    );

    eprintln!(
        "fleet_scaling: adversarial recovery (weakest-replica targeting, shared vs isolated)"
    );
    let adversary = adversarial_recovery_comparison(6, 42);
    eprintln!(
        "  victims' mean recovery: shared {:.1} ticks / {:.2} attempts over {} matched strikes \
         vs isolated {:.1} / {:.2} over {}",
        adversary.shared_mean_recovery,
        adversary.shared_mean_attempts,
        adversary.shared_matched,
        adversary.isolated_mean_recovery,
        adversary.isolated_mean_attempts,
        adversary.isolated_matched,
    );

    eprintln!("fleet_scaling: store-gate cost (gated vs ungated shared-learning throughput)");
    let gate = gate_throughput_comparison(8, 2_000, 42);
    eprintln!(
        "  gated {:.3}s vs ungated {:.3}s ({:.2}x ungated speedup; ungated trades \
         reproducible fingerprints for throughput)",
        gate.gated_wall_s,
        gate.ungated_wall_s,
        gate.ungated_speedup(),
    );

    let json = format!(
        "{{\n  \"machine\": {{\"cores\": {cores}}},\n  \"scaling\": {},\n  \"acceptance\": \
         {{\"replicas\": {}, \"ticks_per_replica\": {}, \"speedup\": {}, \
         \"speedup_claim_applicable\": {}, \"speedup_above_2x\": {}}},\n  \"cold_start\": {},\n  \
         \"warm_start\": {},\n  \"storm_recovery\": {},\n  \"adversarial_recovery\": {},\n  \
         \"store_gate\": {}\n}}",
        scaling_json(&points),
        full.replicas,
        full.ticks_per_replica,
        json_f64(full.speedup()),
        cores >= 4,
        full.speedup() > 2.0,
        cold_start_json(&cold),
        warm_start_json(&warm),
        storm_recovery_json(&storm, None),
        adversarial_recovery_json(&adversary, None),
        store_gate_json(&gate),
    );
    println!("{json}");

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("fleet_scaling.json");
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("(written to {})", path.display()),
            Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
        }
    }
}
