//! Fleet scaling benchmark: replicas-vs-throughput and shared-vs-isolated
//! cold-start recovery, emitted as JSON for the bench trajectory.
//!
//! Two experiments:
//!
//! 1. **Scaling** — fleets of 1..=32 replicas × 5000 ticks each, run once
//!    through the parallel engine (worker threads) and once through the
//!    sequential tick-interleaver, reporting wall-clock, throughput, and the
//!    parallel speedup.  The >2× speedup claim is only meaningful on 4+
//!    cores; the JSON records the core count so single-core CI runs are
//!    interpreted correctly.
//! 2. **Cold start** — the same staggered fault hitting every replica in
//!    turn, once with one fleet-shared synopsis and once with isolated
//!    per-replica synopses.  Replicas whose fault arrives *after* another
//!    replica has healed it should recover in fewer attempts (and no more
//!    ticks) when the synopsis is shared.

//! ## CLI
//!
//! ```text
//! fleet_scaling                       # full-scale experiments (JSON to stdout + results/)
//! fleet_scaling --smoke               # reduced 4-replica pass for CI
//! fleet_scaling --record trace.jsonl  # capture replica 0's workload, then run the smoke fleet
//! fleet_scaling --replay trace.jsonl  # replay the trace across the fleet; verifies replica 0
//!                                     # is byte-identical to the synthetic run it recorded
//! fleet_scaling --replicas N --ticks T  # override the smoke fleet's size
//! fleet_scaling --save-synopsis s.jsonl # persist the fleet's learned synopsis after the run
//! fleet_scaling --load-synopsis s.jsonl # warm-start from a saved synopsis; verifies the
//!                                       # store knows fixes before the first tick and that
//!                                       # the warm run beats a cold run at the same seed
//! fleet_scaling --shards N            # learn through a k-means-sharded store (N shards)
//! ```

use selfheal_bench::fleet::{
    cold_start_comparison, mean_injected_stats, scaling_curve, smoke_fleet, smoke_workload,
    warm_start_comparison, ColdStartReport, ScalingPoint, WarmStartReport,
};
use selfheal_core::harness::{LearnerChoice, WorkloadChoice};
use selfheal_core::snapshot::SynopsisSnapshot;
use selfheal_core::synopsis::{Learner, SynopsisKind};
use selfheal_fleet::ExecutionMode;
use selfheal_sim::seeds::{split_seed, SeedStream};
use selfheal_workload::{RecordedTrace, ReplayMode};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::exit;

fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "null".to_string()
    }
}

fn scaling_json(points: &[ScalingPoint]) -> String {
    let mut out = String::from("[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"replicas\": {}, \"ticks_per_replica\": {}, \"parallel_wall_s\": {}, \
             \"sequential_wall_s\": {}, \"speedup\": {}, \"parallel_throughput_ticks_per_s\": {}}}",
            p.replicas,
            p.ticks_per_replica,
            json_f64(p.parallel_wall_s),
            json_f64(p.sequential_wall_s),
            json_f64(p.speedup()),
            json_f64(p.parallel_throughput)
        );
    }
    out.push_str("\n  ]");
    out
}

fn warm_start_json(report: &WarmStartReport) -> String {
    format!(
        "{{\"saved_examples\": {}, \"preloaded_fixes\": {}, \"warm_mean_fix_attempts\": {}, \
         \"warm_mean_recovery_ticks\": {}, \"cold_mean_fix_attempts\": {}, \
         \"cold_mean_recovery_ticks\": {}, \"warm_faster\": {}}}",
        report.saved_examples,
        report.preloaded_fixes,
        json_f64(report.warm_mean_attempts),
        json_f64(report.warm_mean_recovery),
        json_f64(report.cold_mean_attempts),
        json_f64(report.cold_mean_recovery),
        report.warm_is_faster(),
    )
}

fn cold_start_json(report: &ColdStartReport) -> String {
    let side = |label: &str, attempts: f64, recovery: f64, escalations: u64| {
        format!(
            "\"{label}\": {{\"warm_mean_fix_attempts\": {}, \"warm_mean_recovery_ticks\": {}, \
             \"escalations\": {escalations}}}",
            json_f64(attempts),
            json_f64(recovery)
        )
    };
    format!(
        "{{\n    {},\n    {},\n    \"shared_recovery_leq_isolated\": {},\n    \
         \"shared_attempts_leq_isolated\": {}\n  }}",
        side(
            "shared",
            report.shared_warm_attempts,
            report.shared_warm_recovery,
            report.shared_escalations
        ),
        side(
            "isolated",
            report.isolated_warm_attempts,
            report.isolated_warm_recovery,
            report.isolated_escalations
        ),
        report.shared_warm_recovery <= report.isolated_warm_recovery,
        report.shared_warm_attempts <= report.isolated_warm_attempts,
    )
}

/// Command-line options; anything beyond the full default run selects the
/// reduced smoke path.
struct Args {
    smoke: bool,
    record: Option<PathBuf>,
    replay: Option<PathBuf>,
    replicas: Option<usize>,
    ticks: Option<u64>,
    save_synopsis: Option<PathBuf>,
    load_synopsis: Option<PathBuf>,
    shards: Option<usize>,
}

impl Args {
    /// Whether any flag asked for the reduced smoke path instead of the
    /// full-scale experiment suite.
    fn wants_smoke(&self) -> bool {
        self.smoke
            || self.record.is_some()
            || self.replay.is_some()
            || self.replicas.is_some()
            || self.ticks.is_some()
            || self.save_synopsis.is_some()
            || self.load_synopsis.is_some()
            || self.shards.is_some()
    }

    /// The learner recipe the flags describe.  Persistence needs one
    /// fleet-wide store to save or restore, so `--save-synopsis` /
    /// `--load-synopsis` promote the default private learning to a locked
    /// store; `--shards N` selects the k-means-sharded store.
    fn learner(&self) -> LearnerChoice {
        match self.shards {
            Some(shards) if shards > 0 => LearnerChoice::sharded(shards),
            _ if self.save_synopsis.is_some() || self.load_synopsis.is_some() => {
                LearnerChoice::locked()
            }
            _ => LearnerChoice::Private,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        record: None,
        replay: None,
        replicas: None,
        ticks: None,
        save_synopsis: None,
        load_synopsis: None,
        shards: None,
    };
    let mut argv = std::env::args().skip(1);
    let missing = |flag: &str| -> ! {
        eprintln!("fleet_scaling: {flag} needs a value");
        exit(2);
    };
    fn numeric<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
        let Some(value) = value else {
            eprintln!("fleet_scaling: {flag} needs a value");
            exit(2);
        };
        value.parse().unwrap_or_else(|_| {
            eprintln!("fleet_scaling: {flag} needs a number, got \"{value}\"");
            exit(2);
        })
    }
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--record" => {
                args.record = Some(PathBuf::from(
                    argv.next().unwrap_or_else(|| missing("--record")),
                ))
            }
            "--replay" => {
                args.replay = Some(PathBuf::from(
                    argv.next().unwrap_or_else(|| missing("--replay")),
                ))
            }
            "--replicas" => args.replicas = Some(numeric("--replicas", argv.next())),
            "--ticks" => args.ticks = Some(numeric("--ticks", argv.next())),
            "--save-synopsis" => {
                args.save_synopsis = Some(PathBuf::from(
                    argv.next().unwrap_or_else(|| missing("--save-synopsis")),
                ))
            }
            "--load-synopsis" => {
                args.load_synopsis = Some(PathBuf::from(
                    argv.next().unwrap_or_else(|| missing("--load-synopsis")),
                ))
            }
            "--shards" => args.shards = Some(numeric("--shards", argv.next())),
            other => {
                eprintln!(
                    "fleet_scaling: unknown argument {other}\n\
                     usage: fleet_scaling [--smoke] [--record PATH] [--replay PATH] \
                     [--replicas N] [--ticks T] [--save-synopsis PATH] \
                     [--load-synopsis PATH] [--shards N]"
                );
                exit(2);
            }
        }
    }
    args
}

/// Reduced pass for CI and the record/replay quickstart: one scaling point
/// and a small cold-start comparison (so every JSON emitter runs), plus the
/// smoke fleet itself with optional trace capture/replay.
fn run_smoke(args: &Args) {
    let base_seed = 42u64;
    let replicas = args.replicas.unwrap_or(4).max(1);
    let mut ticks = args.ticks.unwrap_or(400).max(40);

    let workload = match &args.replay {
        Some(path) => {
            let trace = RecordedTrace::load(path).unwrap_or_else(|err| {
                eprintln!("fleet_scaling: cannot load {}: {err}", path.display());
                exit(1);
            });
            // A truncate-mode replay past the end of the trace would go
            // quiet (and fail the byte-identity check for the wrong
            // reason), so the run is clamped to the recorded length.
            if (trace.len() as u64) < ticks {
                eprintln!(
                    "fleet_scaling: trace holds {} ticks, clamping the run from {ticks}",
                    trace.len()
                );
                ticks = trace.len() as u64;
            }
            eprintln!(
                "fleet_scaling: replaying {} ticks / {} requests from {}",
                trace.len(),
                trace.total_requests(),
                path.display()
            );
            WorkloadChoice::replay(trace, ReplayMode::Truncate, 0)
        }
        None => smoke_workload(),
    };

    if let Some(path) = &args.record {
        let mut source =
            workload.source_for_replica(split_seed(base_seed, 0, SeedStream::Workload), 0);
        let trace = RecordedTrace::capture(source.as_mut(), ticks);
        if let Err(err) = trace.save(path) {
            eprintln!("fleet_scaling: cannot write {}: {err}", path.display());
            exit(1);
        }
        eprintln!(
            "fleet_scaling: recorded {} ticks / {} requests to {}",
            trace.len(),
            trace.total_requests(),
            path.display()
        );
    }

    // Warm start: restore the saved synopsis and verify the store knows
    // fixes *before* the first tick (the whole point of persistence).
    let learner = args.learner();
    let loaded: Option<(SynopsisSnapshot, usize)> = args.load_synopsis.as_ref().map(|path| {
        let snapshot = SynopsisSnapshot::load(path).unwrap_or_else(|err| {
            eprintln!("fleet_scaling: cannot load {}: {err}", path.display());
            exit(1);
        });
        let mut probe = learner.build_store(SynopsisKind::NearestNeighbor);
        probe.restore(&snapshot);
        let preloaded = probe.correct_fixes_learned();
        eprintln!(
            "fleet_scaling: loaded {} outcomes from {} -> {} correct fixes known before tick 0",
            snapshot.len(),
            path.display(),
            preloaded
        );
        (snapshot, preloaded)
    });

    eprintln!(
        "fleet_scaling: smoke fleet ({replicas} replicas x {ticks} ticks, {} learning)",
        learner.label()
    );
    let mut fleet = smoke_fleet(replicas, ticks, base_seed, workload.clone()).learner(learner);
    if let Some((snapshot, _)) = &loaded {
        fleet = fleet.warm_start(snapshot.clone());
    }
    let outcome = fleet.run();
    let fingerprints = outcome.fingerprints();

    if let Some(path) = &args.save_synopsis {
        let Some(store) = outcome.store() else {
            eprintln!("fleet_scaling: no fleet-wide store to save (private learning)");
            exit(1);
        };
        let snapshot = store.snapshot();
        if let Err(err) = snapshot.save(path) {
            eprintln!("fleet_scaling: cannot write {}: {err}", path.display());
            exit(1);
        }
        eprintln!(
            "fleet_scaling: saved {} outcomes ({} successes) to {}",
            snapshot.len(),
            snapshot.positives(),
            path.display()
        );
    }

    // Warm-vs-cold: run the same fleet with and without the snapshot, both
    // tick-interleaved (sequential) so shared-store drain timing — and with
    // it the attempt counts the CI gate compares — cannot vary with thread
    // scheduling.
    let warm_cold: Option<WarmStartReport> = loaded.as_ref().map(|(snapshot, preloaded)| {
        let comparison_fleet = || {
            smoke_fleet(replicas, ticks, base_seed, workload.clone())
                .learner(learner)
                .mode(ExecutionMode::Sequential)
        };
        let cold = comparison_fleet().run();
        let warm = comparison_fleet().warm_start(snapshot.clone()).run();
        let (cold_mean_attempts, cold_mean_recovery) = mean_injected_stats(&cold);
        let (warm_mean_attempts, warm_mean_recovery) = mean_injected_stats(&warm);
        eprintln!(
            "  warm-start: {warm_mean_attempts:.2} mean fix attempts vs {cold_mean_attempts:.2} \
             cold ({preloaded} known fixes preloaded)"
        );
        WarmStartReport {
            saved_examples: snapshot.len(),
            preloaded_fixes: *preloaded,
            cold_mean_attempts,
            warm_mean_attempts,
            cold_mean_recovery,
            warm_mean_recovery,
        }
    });

    // A replayed trace must reproduce the synthetic run it was recorded
    // from: replica 0 (phase 0) is byte-identical by construction.
    let replay_identical = args.replay.as_ref().map(|_| {
        let synthetic = smoke_fleet(1, ticks, base_seed, smoke_workload()).run();
        let identical = fingerprints[0] == synthetic.fingerprints()[0];
        eprintln!(
            "  replica 0 fingerprint {:#018x} vs synthetic {:#018x} -> byte_identical={identical}",
            fingerprints[0],
            synthetic.fingerprints()[0]
        );
        identical
    });

    eprintln!("fleet_scaling: smoke scaling point + cold start (JSON emitter check)");
    let points = scaling_curve(&[replicas], ticks, base_seed);
    let cold = cold_start_comparison(3, base_seed);

    let fingerprint_json = fingerprints
        .iter()
        .map(|f| format!("\"{f:#018x}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let smoke_warm_json = warm_cold
        .as_ref()
        .map(warm_start_json)
        .unwrap_or_else(|| "null".to_string());
    let json = format!(
        "{{\n  \"mode\": \"smoke\",\n  \"replicas\": {replicas},\n  \"ticks\": {ticks},\n  \
         \"workload\": \"{}\",\n  \"learner\": \"{}\",\n  \"goodput\": {},\n  \
         \"throughput_ticks_per_s\": {},\n  \
         \"total_fixes\": {},\n  \"episodes\": {},\n  \"fingerprints\": [{fingerprint_json}],\n  \
         \"replay_byte_identical\": {},\n  \"warm_start\": {smoke_warm_json},\n  \
         \"scaling\": {},\n  \"cold_start\": {}\n}}",
        workload.label(),
        learner.label(),
        json_f64(outcome.goodput_fraction()),
        json_f64(outcome.throughput_ticks_per_sec()),
        outcome.total_fixes_initiated(),
        outcome.total_episodes(),
        replay_identical
            .map(|b| b.to_string())
            .unwrap_or_else(|| "null".to_string()),
        scaling_json(&points),
        cold_start_json(&cold),
    );
    println!("{json}");

    if replay_identical == Some(false) {
        eprintln!("fleet_scaling: replay diverged from the synthetic run");
        exit(1);
    }
    if let Some((_, preloaded)) = &loaded {
        if *preloaded == 0 {
            eprintln!(
                "fleet_scaling: loaded synopsis taught the store nothing before the first tick"
            );
            exit(1);
        }
    }
    // Gate on regression (warm strictly worse), not on strict improvement:
    // when the cold run is already at the one-attempt floor, warm can only
    // tie, and a tie is success.
    if let Some(report) = &warm_cold {
        if report.cold_mean_attempts > 0.0 && report.warm_mean_attempts > report.cold_mean_attempts
        {
            eprintln!(
                "fleet_scaling: warm start regressed vs the cold run \
                 ({:.2} vs {:.2} mean fix attempts)",
                report.warm_mean_attempts, report.cold_mean_attempts
            );
            exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    if args.wants_smoke() {
        run_smoke(&args);
        return;
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let ticks = 5_000u64;
    let replica_counts = [1usize, 2, 4, 8, 16, 32];

    eprintln!("fleet_scaling: {cores} cores, {ticks} ticks/replica");
    let points = scaling_curve(&replica_counts, ticks, 42);
    for p in &points {
        eprintln!(
            "  replicas {:>2}: parallel {:>7.3}s  sequential {:>7.3}s  speedup {:>5.2}x  {:>9.0} ticks/s",
            p.replicas,
            p.parallel_wall_s,
            p.sequential_wall_s,
            p.speedup(),
            p.parallel_throughput
        );
    }
    let full = points.last().expect("at least one scaling point");

    eprintln!("fleet_scaling: cold-start comparison (shared vs isolated synopsis)");
    let cold = cold_start_comparison(8, 42);
    eprintln!(
        "  warm-replica mean fix attempts: shared {:.2} vs isolated {:.2}",
        cold.shared_warm_attempts, cold.isolated_warm_attempts
    );
    eprintln!(
        "  warm-replica mean recovery:     shared {:.1} vs isolated {:.1} ticks",
        cold.shared_warm_recovery, cold.isolated_warm_recovery
    );

    eprintln!("fleet_scaling: warm-start comparison (cold run vs snapshot-restored run)");
    let warm = warm_start_comparison(6, 42, LearnerChoice::locked());
    eprintln!(
        "  mean fix attempts: warm {:.2} vs cold {:.2} ({} outcomes saved, {} fixes preloaded)",
        warm.warm_mean_attempts, warm.cold_mean_attempts, warm.saved_examples, warm.preloaded_fixes
    );

    let json = format!(
        "{{\n  \"machine\": {{\"cores\": {cores}}},\n  \"scaling\": {},\n  \"acceptance\": \
         {{\"replicas\": {}, \"ticks_per_replica\": {}, \"speedup\": {}, \
         \"speedup_claim_applicable\": {}, \"speedup_above_2x\": {}}},\n  \"cold_start\": {},\n  \
         \"warm_start\": {}\n}}",
        scaling_json(&points),
        full.replicas,
        full.ticks_per_replica,
        json_f64(full.speedup()),
        cores >= 4,
        full.speedup() > 2.0,
        cold_start_json(&cold),
        warm_start_json(&warm),
    );
    println!("{json}");

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("fleet_scaling.json");
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("(written to {})", path.display()),
            Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
        }
    }
}
