//! Regenerates Table 1: the failure / candidate-fix matrix, validated on the simulator.
use selfheal_bench::{emit, table1_fault_fix_matrix};

fn main() {
    let table = table1_fault_fix_matrix(3);
    emit(&table, "table1_fault_fix_matrix");
}
