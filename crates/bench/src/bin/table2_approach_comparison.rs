//! Regenerates Table 2 as an empirical comparison: every fix-identification
//! approach runs on the same recurring-failure scenario.
use selfheal_bench::{emit, table2_approach_comparison, ExperimentScale};

fn main() {
    let table = table2_approach_comparison(ExperimentScale::full(), 4);
    emit(&table, "table2_approach_comparison");
}
