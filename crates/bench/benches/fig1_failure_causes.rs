//! Criterion bench for the Figure 1 failure-cause demographics.
use criterion::{criterion_group, criterion_main, Criterion};
use selfheal_bench::{fig1_failure_causes, ExperimentScale};

fn bench(c: &mut Criterion) {
    c.bench_function("fig1_failure_causes_quick", |b| {
        b.iter(|| fig1_failure_causes(ExperimentScale::quick(), 1))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
