//! Criterion bench for the fleet engine: parallel vs sequential execution
//! and shared vs isolated learning, at reduced scale.  The full 32-replica ×
//! 5000-tick run with JSON output lives in the `fleet_scaling` binary.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfheal_bench::fleet::{cold_start_comparison, scaling_point};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_scaling");
    group.sample_size(10);
    for replicas in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("both_modes_200_ticks", replicas),
            &replicas,
            |b, &replicas| b.iter(|| scaling_point(replicas, 200, 42)),
        );
    }
    group.bench_function("cold_start_comparison_4_replicas", |b| {
        b.iter(|| cold_start_comparison(4, 42))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
