//! Criterion benches for the multitier-service simulator (ticks per second).
use criterion::{criterion_group, criterion_main, Criterion};
use selfheal_faults::{FaultId, FaultKind, FaultSpec, FaultTarget};
use selfheal_sim::{MultiTierService, ServiceConfig};
use selfheal_workload::{ArrivalProcess, TraceGenerator, WorkloadMix};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    group.bench_function("healthy_tick_40rps", |b| {
        let mut service = MultiTierService::new(ServiceConfig::rubis_default());
        let mut workload = TraceGenerator::new(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
            1,
        );
        b.iter(|| {
            let requests = workload.tick(service.current_tick());
            service.tick(&requests)
        })
    });
    group.bench_function("faulty_tick_40rps", |b| {
        let mut service = MultiTierService::new(ServiceConfig::rubis_default());
        service.inject(FaultSpec::new(
            FaultId(1),
            FaultKind::BufferContention,
            FaultTarget::DatabaseTier,
            0.9,
        ));
        let mut workload = TraceGenerator::new(
            WorkloadMix::bidding(),
            ArrivalProcess::Constant { rate: 40.0 },
            2,
        );
        b.iter(|| {
            let requests = workload.tick(service.current_tick());
            service.tick(&requests)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
