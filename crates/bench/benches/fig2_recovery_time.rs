//! Criterion bench for the Figure 2 recovery-time model.
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_faults::{FailureCause, RecoveryTimeModel};

fn bench(c: &mut Criterion) {
    let model = RecoveryTimeModel::standard();
    c.bench_function("fig2_recovery_sampling", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            FailureCause::ALL
                .iter()
                .map(|cause| model.sample_minutes(*cause, &mut rng))
                .sum::<f64>()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
