//! Criterion bench for the Figure 4 / Table 3 synopsis comparison (reduced scale).
use criterion::{criterion_group, criterion_main, Criterion};
use selfheal_bench::{synopsis_comparison, ExperimentScale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_synopsis_comparison");
    group.sample_size(10);
    let scale = ExperimentScale {
        test_states: 20,
        max_correct_fixes: 8,
        failures_per_profile: 50,
        comparison_ticks: 200,
    };
    group.bench_function("reduced_scale", |b| {
        b.iter(|| synopsis_comparison(scale, 5))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
