//! Criterion bench isolating the per-synopsis training cost that Table 3 compares.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfheal_core::synopsis::{Synopsis, SynopsisKind};
use selfheal_faults::FixKind;

fn train(kind: SynopsisKind, n: usize) -> Synopsis {
    let mut synopsis = Synopsis::new(kind);
    let fixes = [
        FixKind::RepartitionMemory,
        FixKind::MicrorebootEjb,
        FixKind::UpdateStatistics,
    ];
    for i in 0..n {
        let class = i % 3;
        let mut symptoms = vec![1.0; 12];
        symptoms[class * 4] = 9.0 + (i % 5) as f64 * 0.1;
        synopsis.update(&symptoms, fixes[class], true);
    }
    synopsis
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_training_cost");
    group.sample_size(10);
    for kind in SynopsisKind::paper_set() {
        group.bench_with_input(
            BenchmarkId::new("50_correct_fixes", kind.label()),
            &kind,
            |b, kind| b.iter(|| train(*kind, 50)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
