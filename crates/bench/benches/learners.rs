//! Criterion benches for the from-scratch learners (fit + predict).
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selfheal_learn::{
    AdaBoost, Classifier, Dataset, Example, GaussianNaiveBayes, KMeans, NearestNeighbor,
};

fn blobs(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers = [(0.0, 0.0), (6.0, 6.0), (12.0, 0.0)];
    Dataset::from_examples(
        (0..n)
            .map(|i| {
                let (cx, cy) = centers[i % 3];
                Example::new(
                    vec![cx + rng.gen_range(-1.0..1.0), cy + rng.gen_range(-1.0..1.0)],
                    i % 3,
                )
            })
            .collect(),
    )
}

fn bench(c: &mut Criterion) {
    let train = blobs(300, 1);
    let probe = vec![6.1, 5.9];
    let mut group = c.benchmark_group("learners_fit");
    group.sample_size(20);
    group.bench_function("nearest_neighbor_fit", |b| {
        b.iter(|| {
            let mut m = NearestNeighbor::new();
            m.fit(&train);
            m.predict(&probe)
        })
    });
    group.bench_function("kmeans_fit", |b| {
        b.iter(|| {
            let mut m = KMeans::new();
            m.fit(&train);
            m.predict(&probe)
        })
    });
    group.bench_function("naive_bayes_fit", |b| {
        b.iter(|| {
            let mut m = GaussianNaiveBayes::new();
            m.fit(&train);
            m.predict(&probe)
        })
    });
    group.bench_function("adaboost60_fit", |b| {
        b.iter(|| {
            let mut m = AdaBoost::new(60);
            m.fit(&train);
            m.predict(&probe)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
