//! The supervisor: replica actors on worker threads, epoch barriers, and
//! bounded restart-with-backoff.
//!
//! Each replica is an *actor*: a dedicated OS thread owning an optional
//! [`ScenarioRunner`], driven over an mpsc request channel.  The supervisor
//! advances the whole fleet one epoch ([`DaemonConfig::slice`] ticks) at a
//! time: it sends every running actor an `Advance`, then collects one
//! report per actor — that collection *is* the epoch barrier, and it is the
//! only point where replicas are added, removed, reconfigured, restarted,
//! or queried.
//!
//! A panicking replica is not the end of the fleet (contrast the batch
//! scheduler, which retires panicked replicas as
//! [`ReplicaError`](selfheal_fleet::ReplicaError)s): the actor catches the
//! unwind, drops the poisoned runner, and reports the panic; the supervisor
//! schedules a rebuild after an exponential backoff, rebuilding the runner
//! from the replica's spec against the *still-alive* shared store — so the
//! replacement healer starts with everything the fleet has learned,
//! including whatever the doomed incarnation drained before dying.  After
//! [`DaemonConfig::max_restarts`] rebuilds the replica is retired as
//! failed, its last panic message kept for `STATUS`.

use crate::pool::PooledStore;
use crate::DaemonConfig;
use selfheal_core::harness::{FaultChoice, WorkloadChoice};
use selfheal_core::snapshot::SynopsisSnapshot;
use selfheal_core::store::{FixStats, SynopsisStore};
use selfheal_core::synopsis::Learner;
use selfheal_faults::injection::default_target;
use selfheal_faults::{FaultId, FaultKind, FaultSource, FaultSpec, FixKind};
use selfheal_fleet::reactive::REACTIVE_FAULT_ID_BASE;
use selfheal_fleet::scheduler::panic_message;
use selfheal_fleet::{FleetConfig, FleetEngine};
use selfheal_sim::scenario::Healer;
use selfheal_sim::seeds::{split_seed, SeedStream};
use selfheal_sim::ScenarioRunner;
use selfheal_telemetry::{FleetHealth, ReplicaHealth, ReplicaState};
use selfheal_workload::{ArrivalProcess, TraceSource};
use std::collections::BTreeMap;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::mpsc;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::thread;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What one supervised replica *is*, independent of any runner incarnation:
/// its identity, its fault recipe, and its workload recipe.  Restarts
/// rebuild runners from this.
#[derive(Debug, Clone)]
pub struct ReplicaSpec {
    /// Fleet-unique id (monotonically assigned, never reused) — also the
    /// replica index all RNG streams are split by.
    pub id: usize,
    /// Display label of the fault recipe.
    pub profile: String,
    /// The replica's declarative fault recipe.
    pub faults: FaultChoice,
    /// The replica's declarative workload recipe.
    pub workload: WorkloadChoice,
}

/// Requests the supervisor sends a replica actor.
enum ActorRequest {
    /// Install (or replace) the actor's runner.
    Install(Box<ScenarioRunner<Box<dyn Healer>>>),
    /// Advance the runner this many ticks, then report.
    Advance(u64),
    /// Swap the runner's fault source (RECONFIGURE / DRAIN).
    SetFaults(Box<dyn FaultSource>),
    /// Swap the runner's workload source (RECONFIGURE).
    SetWorkload(Box<dyn TraceSource>),
    /// Inject one fault directly into the live service (the adversary's
    /// strike); takes effect from the next tick the runner steps.
    Inject(FaultSpec),
    /// Report the runner's deterministic outcome fingerprint (0 when no
    /// runner is installed).  Computed on demand — tests and operators ask
    /// rarely, so epochs never pay for the outcome clone.
    Fingerprint(Sender<u64>),
    /// Exit the actor thread.
    Stop,
}

/// One epoch's report from a replica actor.
#[derive(Debug, Default)]
struct EpochReport {
    /// Runner ticks advanced so far (this incarnation).
    ticks: u64,
    /// Failure episodes closed so far (this incarnation).
    episodes: usize,
    /// 1 when the replica is currently inside a failure episode.
    open_episodes: usize,
    /// Fix attempts initiated so far (this incarnation).
    fixes_initiated: u64,
    /// Panic message, when the runner died this epoch.
    panic: Option<String>,
}

/// The actor body: owns the runner, steps it on demand, converts panics
/// into reports instead of thread death.
fn replica_actor(requests: Receiver<ActorRequest>, reports: Sender<EpochReport>) {
    let mut runner: Option<ScenarioRunner<Box<dyn Healer>>> = None;
    while let Ok(request) = requests.recv() {
        match request {
            ActorRequest::Install(replacement) => runner = Some(*replacement),
            ActorRequest::SetFaults(faults) => {
                if let Some(runner) = runner.as_mut() {
                    runner.set_faults(faults);
                }
            }
            ActorRequest::SetWorkload(workload) => {
                if let Some(runner) = runner.as_mut() {
                    runner.set_workload(workload);
                }
            }
            ActorRequest::Inject(spec) => {
                if let Some(runner) = runner.as_mut() {
                    runner.inject(spec);
                }
            }
            ActorRequest::Fingerprint(reply) => {
                let value = runner
                    .as_ref()
                    .map(|current| current.outcome().fingerprint())
                    .unwrap_or(0);
                let _ = reply.send(value);
            }
            ActorRequest::Stop => break,
            ActorRequest::Advance(ticks) => {
                let mut report = EpochReport::default();
                if let Some(current) = runner.as_mut() {
                    let stepped = catch_unwind(AssertUnwindSafe(|| {
                        for _ in 0..ticks {
                            current.step();
                        }
                    }));
                    match stepped {
                        Ok(()) => {
                            report.ticks = current.ticks_run();
                            report.episodes = current.recovery().len();
                            report.open_episodes = usize::from(current.recovery().in_episode());
                            report.fixes_initiated = current.fixes_initiated();
                        }
                        Err(payload) => {
                            // The runner may be mid-tick inconsistent; drop
                            // the whole incarnation.
                            runner = None;
                            report.panic = Some(panic_message(payload));
                        }
                    }
                }
                if reports.send(report).is_err() {
                    break;
                }
            }
        }
    }
}

/// A replica's lifecycle phase, as the supervisor sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Running,
    Restarting { resume_epoch: u64 },
    Failed,
}

/// Supervisor-side bookkeeping for one replica actor.
struct ReplicaEntry {
    spec: ReplicaSpec,
    phase: Phase,
    restarts: u32,
    /// Ticks accumulated by previous (dead) incarnations.
    ticks_prior: u64,
    health: ReplicaHealth,
    requests: Sender<ActorRequest>,
    reports: Receiver<EpochReport>,
    thread: Option<JoinHandle<()>>,
}

/// Owns the replica actors, the shared store, and the epoch clock — the
/// heart of the resident daemon (see the [module docs](self)).
pub struct Supervisor {
    config: DaemonConfig,
    engine: FleetEngine,
    store: Box<dyn SynopsisStore>,
    /// A handle to the daemon-wide cross-tenant pool, when this fleet opted
    /// in (`shared_pool = on`); `store` is then a [`PooledStore`] wrapping
    /// the private primary.
    pool: Option<Box<dyn SynopsisStore>>,
    /// The tenant name stamped into health records (`None` for standalone
    /// supervisors outside a tenant registry).
    label: Option<String>,
    entries: BTreeMap<usize, ReplicaEntry>,
    next_id: usize,
    epoch: u64,
    started: Instant,
    restored: usize,
    draining: bool,
    adversary: bool,
    adversary_strikes: u64,
    adversary_target: Option<usize>,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("epoch", &self.epoch)
            .field("replicas", &self.entries.keys().collect::<Vec<_>>())
            .field("restored", &self.restored)
            .field("draining", &self.draining)
            .field("adversary", &self.adversary)
            .finish_non_exhaustive()
    }
}

impl Supervisor {
    /// Builds the supervisor: validates the config (shared learning is
    /// mandatory), replays the [`DaemonConfig::store_path`] snapshot log
    /// when the file exists (crash-restart), and switches the store to
    /// incremental persistence.  No replicas yet — call
    /// [`add_replica`](Self::add_replica).
    pub fn new(config: DaemonConfig) -> Result<Supervisor, String> {
        Self::with_pool(config, None)
    }

    /// Like [`new`](Self::new), but optionally wraps the fleet's store in a
    /// [`PooledStore`] against a daemon-wide pool handle: the fleet's
    /// healers then mirror every recorded outcome into the pool and fall
    /// back to it on suggestion misses, while snapshots, the incremental
    /// log, and per-fix statistics keep reading the private primary only.
    /// Used by the tenant registry for `shared_pool = on` tenants.
    pub fn with_pool(
        config: DaemonConfig,
        pool: Option<Box<dyn SynopsisStore>>,
    ) -> Result<Supervisor, String> {
        if !config.policy.shares_learning() {
            return Err(format!(
                "the daemon requires a learning policy (got {}); try hybrid or fixsym",
                config.policy.label()
            ));
        }
        if !config.learner.is_shared() {
            return Err(format!(
                "the daemon requires a shared learner (got {}); try locked or sharded",
                config.learner.label()
            ));
        }
        let mut restored = 0;
        let mut fleet = FleetConfig::builder()
            .service(config.service.clone())
            .workload(config.workload.clone())
            .policy(config.policy)
            .learner(config.learner)
            .base_seed(config.base_seed)
            .slice(config.slice)
            .series_capacity(config.series_capacity)
            .faults(config.default_faults.clone());
        if let Some(path) = &config.store_path {
            if path.exists() {
                let snapshot = SynopsisSnapshot::load(path)
                    .map_err(|err| format!("cannot replay snapshot log {path:?}: {err}"))?;
                restored = snapshot.len();
                fleet = fleet.warm_start(snapshot);
            }
            fleet = fleet.persist_synopsis(path);
        }
        let engine = fleet.build();
        let store = engine
            .build_shared_store()
            .expect("validated: shared learner + learning policy");
        // Wrap *after* persistence is wired so the snapshot log stays a
        // pure per-fleet namespace; the pool never touches the file.
        let store: Box<dyn SynopsisStore> = match &pool {
            Some(pool) => Box::new(PooledStore::new(store, pool.clone_store())),
            None => store,
        };
        Ok(Supervisor {
            config,
            engine,
            store,
            pool,
            label: None,
            entries: BTreeMap::new(),
            next_id: 0,
            epoch: 0,
            started: Instant::now(),
            restored,
            draining: false,
            adversary: false,
            adversary_strikes: 0,
            adversary_target: None,
        })
    }

    /// Milliseconds since the supervisor was built (the heartbeat clock).
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Epochs completed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Examples replayed from the snapshot log at startup.
    pub fn restored_examples(&self) -> usize {
        self.restored
    }

    /// The incremental-persistence path, when one is configured.
    pub fn store_path(&self) -> Option<&Path> {
        self.config.store_path.as_deref()
    }

    /// The fleet-wide synopsis store (live: replicas keep teaching it).
    pub fn store(&self) -> &dyn SynopsisStore {
        self.store.as_ref()
    }

    /// A live handle to the fleet-wide store — shared stores hand back the
    /// same state, so records through the handle are visible to (and
    /// pooled exactly like) the fleet's own healers.
    pub fn store_handle(&self) -> Box<dyn SynopsisStore> {
        self.store.clone_store()
    }

    /// Stamps the tenant name this fleet serves; `health()` tags its
    /// records with it.
    pub fn set_label(&mut self, label: &str) {
        self.label = Some(label.to_string());
    }

    /// The tenant name stamped by [`set_label`](Self::set_label), if any.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// Whether this fleet participates in the cross-tenant shared pool.
    pub fn pooled(&self) -> bool {
        self.pool.is_some()
    }

    /// Successful-fix examples visible through the cross-tenant pool
    /// (`None` when the fleet is not pooled).
    pub fn pool_fixes_known(&self) -> Option<usize> {
        self.pool.as_ref().map(|pool| pool.correct_fixes_learned())
    }

    /// Per-fix statistics over the cross-tenant pool's experience (`None`
    /// when the fleet is not pooled).  Kept separate from
    /// [`fix_stats`](Self::fix_stats) so a tenant's own record never blurs
    /// with borrowed knowledge.
    pub fn pool_stats(&self) -> Option<Vec<FixStats>> {
        self.pool.as_ref().map(|pool| pool.fix_stats())
    }

    /// Each running replica's deterministic outcome fingerprint at the
    /// current barrier, ordered by id — the byte-identity surface the
    /// tenant-isolation tests compare against standalone fleets.
    pub fn fingerprints(&self) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        for (id, entry) in &self.entries {
            if entry.phase != Phase::Running {
                continue;
            }
            let (reply_tx, reply_rx) = mpsc::channel();
            if entry
                .requests
                .send(ActorRequest::Fingerprint(reply_tx))
                .is_err()
            {
                continue;
            }
            if let Ok(fingerprint) = reply_rx.recv_timeout(Duration::from_secs(60)) {
                out.push((*id, fingerprint));
            }
        }
        out
    }

    /// Number of supervised replicas (running, restarting, or failed).
    pub fn replica_count(&self) -> usize {
        self.entries.len()
    }

    /// `true` after [`drain`](Self::drain), until a replica is added.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// `true` while the fleet-wide adversary is enabled
    /// (`RECONFIGURE <id> adversary=on`).
    pub fn adversary_enabled(&self) -> bool {
        self.adversary
    }

    /// The replica the adversary struck at the most recent barrier.
    pub fn adversary_target(&self) -> Option<usize> {
        self.adversary_target
    }

    /// `true` when a drain was requested and every episode has closed —
    /// the daemon loop stops ticking then.
    pub fn is_drained(&self) -> bool {
        self.draining && self.total_open_episodes() == 0
    }

    /// Failure episodes currently open, summed over replicas.
    pub fn total_open_episodes(&self) -> usize {
        self.entries
            .values()
            .map(|entry| entry.health.open_episodes)
            .sum()
    }

    /// Per-replica health records, ordered by id.
    pub fn replica_health(&self) -> Vec<ReplicaHealth> {
        self.entries
            .values()
            .map(|entry| entry.health.clone())
            .collect()
    }

    /// The fleet-wide health roll-up at the current barrier — also the
    /// daemon's periodic JSON metrics line
    /// ([`FleetHealth::to_json_line`]).
    pub fn health(&self) -> FleetHealth {
        let mut health = FleetHealth {
            epoch: self.epoch,
            uptime_ms: self.uptime_ms(),
            fixes_known: self.store.correct_fixes_learned(),
            pending_updates: self.store.pending_updates(),
            adversary_target: self.adversary_target,
            tenant: self.label.clone(),
            ..FleetHealth::default()
        };
        health.absorb_replicas(self.entries.values().map(|entry| &entry.health));
        let secs = self.started.elapsed().as_secs_f64();
        health.ticks_per_sec = if secs > 0.0 {
            health.total_ticks as f64 / secs
        } else {
            0.0
        };
        health
    }

    /// The store's best fix for a failure signature (live query).
    pub fn suggest_fix(&self, symptoms: &[f64]) -> Option<(FixKind, f64)> {
        self.store.suggest(symptoms)
    }

    /// Per-fix success/failure statistics over the store's experience.
    pub fn fix_stats(&self) -> Vec<FixStats> {
        self.store.fix_stats()
    }

    /// Saves the store's full experience to a snapshot file; returns the
    /// example count written.
    pub fn snapshot_to(&self, path: &Path) -> io::Result<usize> {
        let snapshot = self.store.snapshot();
        snapshot.save(path)?;
        Ok(snapshot.len())
    }

    /// Adds a replica under a fault profile (see
    /// [`DaemonConfig::fault_profile`] for the accepted words) and installs
    /// its runner.  The replica warm-starts by construction: its healer is
    /// built against a handle of the shared store, so every fix the fleet
    /// has learned is already known to it.  Clears a pending drain.
    pub fn add_replica(&mut self, profile: &str) -> Result<usize, String> {
        let faults = self.config.fault_profile(profile)?;
        let id = self.next_id;
        let spec = ReplicaSpec {
            id,
            profile: faults.label(),
            faults,
            workload: self.config.workload.clone(),
        };
        self.spawn_replica(spec)?;
        self.next_id += 1;
        self.draining = false;
        Ok(id)
    }

    /// Stops and retires one replica.  Its id is never reused.
    pub fn remove_replica(&mut self, id: usize) -> Result<(), String> {
        let mut entry = self
            .entries
            .remove(&id)
            .ok_or_else(|| format!("no replica {id}"))?;
        let _ = entry.requests.send(ActorRequest::Stop);
        if let Some(thread) = entry.thread.take() {
            let _ = thread.join();
        }
        Ok(())
    }

    /// Live-updates one replica's input streams.  Keys:
    ///
    /// * `fault_rate=<f64>` — per-tick fault probability (the replica must
    ///   already run a demographic mix).
    /// * `fault_profile=<word>` — any [`DaemonConfig::fault_profile`] word.
    /// * `workload_rate=<f64>` — synthetic arrival rate.
    /// * `adversary=on|off` — toggles the *fleet-wide* adversarial chaos
    ///   engine (the id names which replica the command rode in on, but the
    ///   engine targets whichever replica is weakest at each barrier).
    ///
    /// The rebuilt source is seeded exactly as at construction
    /// ([`split_seed`] by replica id) and swapped into the live runner; the
    /// spec is updated so restarts keep the new recipe.  Returns a
    /// `key=value` description of what was applied.
    pub fn reconfigure(&mut self, id: usize, key: &str, value: &str) -> Result<String, String> {
        if !self.entries.contains_key(&id) {
            return Err(format!("no replica {id}"));
        }
        enum Change {
            Faults(FaultChoice),
            Workload(WorkloadChoice),
        }
        let change = match key {
            "adversary" => {
                let enable = match value {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("bad adversary value {other:?} (try on, off)")),
                };
                self.adversary = enable;
                if !enable {
                    self.adversary_target = None;
                }
                return Ok(format!("adversary={}", if enable { "on" } else { "off" }));
            }
            "fault_rate" => {
                let rate: f64 = value
                    .parse()
                    .map_err(|_| format!("bad fault rate {value:?}"))?;
                let mut faults = self.entries[&id].spec.faults.clone();
                match &mut faults {
                    FaultChoice::Mix { rate: current, .. } => *current = rate.clamp(0.0, 1.0),
                    _ => {
                        return Err(format!(
                            "replica {id} runs no demographic mix; set fault_profile first"
                        ))
                    }
                }
                Change::Faults(faults)
            }
            "fault_profile" => Change::Faults(self.config.fault_profile(value)?),
            "workload_rate" => {
                let rate: f64 = value
                    .parse()
                    .map_err(|_| format!("bad workload rate {value:?}"))?;
                let mut workload = self.entries[&id].spec.workload.clone();
                match &mut workload {
                    WorkloadChoice::Synthetic { arrivals, .. } => {
                        set_arrival_rate(arrivals, rate.max(0.0))
                    }
                    _ => {
                        return Err(format!(
                            "replica {id} runs a non-synthetic workload; \
                             workload_rate applies to synthetic arrivals only"
                        ))
                    }
                }
                Change::Workload(workload)
            }
            other => {
                return Err(format!(
                    "unknown key {other:?} (try fault_rate, fault_profile, workload_rate, \
                     adversary)"
                ))
            }
        };
        let base_seed = self.config.base_seed;
        let entry = self.entries.get_mut(&id).expect("checked above");
        match change {
            Change::Faults(choice) => {
                let source = choice.source_for_replica(
                    split_seed(base_seed, id as u64, SeedStream::Faults),
                    id as u64,
                );
                entry
                    .requests
                    .send(ActorRequest::SetFaults(source))
                    .map_err(|_| format!("replica {id}'s actor is gone"))?;
                entry.spec.profile = choice.label();
                entry.health.profile = entry.spec.profile.clone();
                entry.spec.faults = choice;
                Ok(format!("faults={}", entry.spec.profile))
            }
            Change::Workload(choice) => {
                let source = choice.source_for_replica(
                    split_seed(base_seed, id as u64, SeedStream::Workload),
                    id as u64,
                );
                entry
                    .requests
                    .send(ActorRequest::SetWorkload(source))
                    .map_err(|_| format!("replica {id}'s actor is gone"))?;
                entry.spec.workload = choice;
                Ok(format!("workload={}", entry.spec.workload.label()))
            }
        }
    }

    /// Stops fault injection fleet-wide: every replica's fault recipe is
    /// swapped for the quiet one, while ticking continues so open episodes
    /// heal out.  [`is_drained`](Self::is_drained) turns true once they
    /// have; [`add_replica`](Self::add_replica) resumes normal operation.
    pub fn drain(&mut self) {
        self.draining = true;
        let base_seed = self.config.base_seed;
        for (id, entry) in self.entries.iter_mut() {
            let choice = FaultChoice::default();
            let source = choice.source_for_replica(
                split_seed(base_seed, *id as u64, SeedStream::Faults),
                *id as u64,
            );
            let _ = entry.requests.send(ActorRequest::SetFaults(source));
            entry.spec.profile = choice.label();
            entry.health.profile = entry.spec.profile.clone();
            entry.spec.faults = choice;
        }
    }

    /// Advances every running replica one epoch ([`DaemonConfig::slice`]
    /// ticks) and collects their reports — the epoch barrier.  Replicas
    /// whose backoff expired are rebuilt first; replicas that panic during
    /// the epoch enter backoff (or retire at the restart cap).  Returns the
    /// number of replicas that advanced.
    pub fn advance_epoch(&mut self) -> usize {
        self.epoch += 1;

        // Rebuild replicas whose backoff expired.
        let due: Vec<usize> = self
            .entries
            .iter()
            .filter_map(|(id, entry)| match entry.phase {
                Phase::Restarting { resume_epoch } if resume_epoch <= self.epoch => Some(*id),
                _ => None,
            })
            .collect();
        for id in due {
            let spec = self.entries[&id].spec.clone();
            let runner = self.build_runner(&spec);
            let entry = self.entries.get_mut(&id).expect("due id exists");
            if entry
                .requests
                .send(ActorRequest::Install(Box::new(runner)))
                .is_ok()
            {
                entry.phase = Phase::Running;
                entry.health.state = ReplicaState::Running;
            } else {
                entry.phase = Phase::Failed;
                entry.health.state = ReplicaState::Failed;
                entry.health.last_error = Some("replica actor is gone".to_string());
            }
        }

        // The adversarial chaos engine: at every barrier while enabled,
        // strike the currently-weakest running replica (worst open-episode
        // count from the last barrier's health, ties toward the lowest id —
        // the same policy as the batch engine's `AdversarySource`).  The
        // strike is queued before the epoch's `Advance`, so it lands at the
        // first tick of the epoch it reacts to.
        self.adversary_target = None;
        if self.adversary {
            let weakest = self
                .entries
                .iter()
                .filter(|(_, entry)| entry.phase == Phase::Running)
                .max_by(|(a_id, a), (b_id, b)| {
                    (a.health.open_episodes, std::cmp::Reverse(**a_id))
                        .cmp(&(b.health.open_episodes, std::cmp::Reverse(**b_id)))
                })
                .map(|(id, _)| *id);
            if let Some(id) = weakest {
                let spec = FaultSpec::new(
                    FaultId(REACTIVE_FAULT_ID_BASE + self.adversary_strikes),
                    ADVERSARY_FAULT_KIND,
                    default_target(ADVERSARY_FAULT_KIND, 0),
                    ADVERSARY_FAULT_SEVERITY,
                );
                let entry = self.entries.get_mut(&id).expect("weakest id exists");
                if entry.requests.send(ActorRequest::Inject(spec)).is_ok() {
                    self.adversary_strikes += 1;
                    self.adversary_target = Some(id);
                }
            }
        }

        // Dispatch the epoch to every running actor...
        let slice = self.config.slice;
        let running: Vec<usize> = self
            .entries
            .iter()
            .filter(|(_, entry)| entry.phase == Phase::Running)
            .map(|(id, _)| *id)
            .collect();
        for id in &running {
            let entry = self.entries.get_mut(id).expect("running id exists");
            if entry.requests.send(ActorRequest::Advance(slice)).is_err() {
                entry.phase = Phase::Failed;
                entry.health.state = ReplicaState::Failed;
                entry.health.last_error = Some("replica actor is gone".to_string());
            }
        }

        // ...and collect one report per actor: the barrier itself.
        let now_ms = self.uptime_ms();
        let max_restarts = self.config.max_restarts;
        let backoff_epochs = self.config.backoff_epochs.max(1);
        let epoch = self.epoch;
        let mut advanced = 0;
        for id in running {
            let entry = self.entries.get_mut(&id).expect("running id exists");
            if entry.phase != Phase::Running {
                continue;
            }
            let report = match entry.reports.recv_timeout(Duration::from_secs(60)) {
                Ok(report) => report,
                Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                    entry.phase = Phase::Failed;
                    entry.health.state = ReplicaState::Failed;
                    entry.health.last_error = Some("replica actor unresponsive".to_string());
                    continue;
                }
            };
            entry.health.last_heartbeat_ms = now_ms;
            match report.panic {
                None => {
                    advanced += 1;
                    entry.health.ticks = entry.ticks_prior + report.ticks;
                    entry.health.episodes = report.episodes;
                    entry.health.open_episodes = report.open_episodes;
                    entry.health.fixes_initiated = report.fixes_initiated;
                }
                Some(message) => {
                    entry.ticks_prior = entry.health.ticks;
                    entry.health.open_episodes = 0;
                    entry.health.last_error = Some(message);
                    if entry.restarts >= max_restarts {
                        entry.phase = Phase::Failed;
                        entry.health.state = ReplicaState::Failed;
                    } else {
                        entry.restarts += 1;
                        entry.health.restarts = entry.restarts;
                        let doubling = (entry.restarts - 1).min(16);
                        let backoff = backoff_epochs.saturating_mul(1 << doubling);
                        entry.phase = Phase::Restarting {
                            resume_epoch: epoch + backoff,
                        };
                        entry.health.state = ReplicaState::Restarting;
                    }
                }
            }
        }
        advanced
    }

    /// Clean exit: stops every actor, then flushes the store (folding any
    /// queued updates into the model — and, with persistence on, into the
    /// snapshot log).
    pub fn shutdown(mut self) {
        self.stop_actors();
        self.store.flush();
    }

    /// Simulated `kill -9`: stops every actor *without* the final flush, so
    /// only experience already drained to the snapshot log survives —
    /// exactly what dying mid-run loses.  The crash-restart tests restart a
    /// supervisor from the same store path after this.
    pub fn abort(mut self) {
        self.stop_actors();
    }

    fn stop_actors(&mut self) {
        let ids: Vec<usize> = self.entries.keys().copied().collect();
        for id in ids {
            if let Some(mut entry) = self.entries.remove(&id) {
                let _ = entry.requests.send(ActorRequest::Stop);
                if let Some(thread) = entry.thread.take() {
                    let _ = thread.join();
                }
            }
        }
    }

    /// Builds one runner for `spec` — through the config's test factory
    /// when set, through the fleet engine's public replica surface
    /// otherwise.
    fn build_runner(&self, spec: &ReplicaSpec) -> ScenarioRunner<Box<dyn Healer>> {
        if let Some(factory) = &self.config.runner_factory {
            factory(spec, self.store.as_ref())
        } else {
            self.engine.replica_runner_with(
                spec.id,
                Some(&spec.faults),
                Some(&spec.workload),
                Some(self.store.as_ref()),
            )
        }
    }

    fn spawn_replica(&mut self, spec: ReplicaSpec) -> Result<(), String> {
        let (request_tx, request_rx) = mpsc::channel();
        let (report_tx, report_rx) = mpsc::channel();
        let thread = thread::Builder::new()
            .name(format!("replica-{}", spec.id))
            .spawn(move || replica_actor(request_rx, report_tx))
            .map_err(|err| format!("cannot spawn replica actor: {err}"))?;
        let runner = self.build_runner(&spec);
        request_tx
            .send(ActorRequest::Install(Box::new(runner)))
            .map_err(|_| "replica actor died at birth".to_string())?;
        let health = ReplicaHealth {
            id: spec.id,
            profile: spec.profile.clone(),
            state: ReplicaState::Running,
            ticks: 0,
            episodes: 0,
            open_episodes: 0,
            fixes_initiated: 0,
            restarts: 0,
            last_heartbeat_ms: self.uptime_ms(),
            last_error: None,
        };
        self.entries.insert(
            spec.id,
            ReplicaEntry {
                spec,
                phase: Phase::Running,
                restarts: 0,
                ticks_prior: 0,
                health,
                requests: request_tx,
                reports: report_rx,
                thread: Some(thread),
            },
        );
        Ok(())
    }
}

/// The failure class the daemon's adversary injects — the catalog's
/// cheapest-to-heal contention fault, so a live fleet under adversarial
/// load degrades rather than collapses.
const ADVERSARY_FAULT_KIND: FaultKind = FaultKind::BufferContention;
/// Severity of the daemon adversary's strikes.
const ADVERSARY_FAULT_SEVERITY: f64 = 0.9;

/// Updates the "rate" knob shared by every arrival model.
fn set_arrival_rate(arrivals: &mut ArrivalProcess, rate: f64) {
    match arrivals {
        ArrivalProcess::Constant { rate: current } | ArrivalProcess::Poisson { rate: current } => {
            *current = rate
        }
        ArrivalProcess::Diurnal { base, .. } | ArrivalProcess::Surge { base, .. } => *base = rate,
    }
}
