//! Multi-tenancy: named fleets sharing one daemon process.
//!
//! A tenant is one [`Supervisor`] — its own replicas, its own epoch clock,
//! its own [`SynopsisStore`] namespace,
//! and its own incremental snapshot log — addressed on the control plane by
//! `@<name>` scoping (see [`crate::protocol`]).  The registry owns every
//! tenant plus the daemon-wide *shared pool*: tenants created with
//! `shared_pool = on` mirror their learned fix outcomes into the pool and
//! fall back to it on suggestion misses (see [`crate::pool`]), so one
//! tenant's scouting transfers to another without ever entering the other's
//! namespace.
//!
//! ## Per-tenant persistence
//!
//! When the daemon template carries a
//! [`store_path`](crate::DaemonConfig::store_path) of `synopsis.jsonl`:
//!
//! * the `default` tenant keeps `synopsis.jsonl` itself (a single-tenant
//!   daemon's files are byte-compatible with earlier releases);
//! * tenant `scout` logs to the sibling `synopsis.scout.jsonl`;
//! * the tenant *set* is persisted to `synopsis.tenants.jsonl` — one JSON
//!   line per non-default tenant — rewritten on every `TENANT CREATE`/
//!   `DROP`.  A relaunch replays the manifest first, recreating each
//!   tenant, whose own constructor then replays its per-tenant log.  A
//!   `kill -9` therefore restores every tenant's synopsis, not just the
//!   default fleet's.
//!
//! `TENANT DROP` deletes the tenant's log file: a later tenant reusing the
//! name must start cold rather than inherit a stranger's experience.
//!
//! The pool itself is deliberately *not* persisted: it is a cache of
//! cross-tenant hints rebuilt from live traffic, and persisting it would
//! blur the per-tenant namespace isolation the snapshot logs guarantee.

use crate::{DaemonConfig, Supervisor};
use selfheal_core::store::{LockedStore, SynopsisStore};
use selfheal_jsonl::{push_json_string, JsonError, Scanner};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// The tenant every daemon starts with and unscoped commands address.
pub const DEFAULT_TENANT: &str = "default";

/// Upper bound on tenant-name length, in bytes.
pub const MAX_TENANT_NAME: usize = 32;

/// One named fleet inside the daemon.
pub struct Tenant {
    supervisor: Supervisor,
    shared_pool: bool,
}

impl Tenant {
    /// The tenant's fleet.
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// The tenant's fleet, mutably.
    pub fn supervisor_mut(&mut self) -> &mut Supervisor {
        &mut self.supervisor
    }

    /// Whether the tenant participates in the cross-tenant shared pool.
    pub fn shared_pool(&self) -> bool {
        self.shared_pool
    }
}

/// Owns every tenant fleet plus the daemon-wide shared pool (see the
/// [module docs](self)).
pub struct TenantRegistry {
    template: DaemonConfig,
    pool: Box<dyn SynopsisStore>,
    tenants: BTreeMap<String, Tenant>,
}

impl std::fmt::Debug for TenantRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantRegistry")
            .field("tenants", &self.tenants.keys().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

impl TenantRegistry {
    /// Builds the registry from the daemon's template config: creates the
    /// `default` tenant (inheriting the template's store path verbatim),
    /// then replays the tenant manifest when one exists, recreating every
    /// persisted tenant — each of which replays its own snapshot log.
    pub fn new(config: DaemonConfig) -> Result<TenantRegistry, String> {
        let kind = config.policy.synopsis_kind().ok_or_else(|| {
            format!(
                "the daemon requires a learning policy (got {}); try hybrid or fixsym",
                config.policy.label()
            )
        })?;
        let pool: Box<dyn SynopsisStore> = Box::new(LockedStore::with_batch(kind, 1));
        let mut registry = TenantRegistry {
            template: config,
            pool,
            tenants: BTreeMap::new(),
        };
        registry.insert(DEFAULT_TENANT, false)?;
        registry.restore_manifest()?;
        Ok(registry)
    }

    /// Creates a named tenant with zero replicas and rewrites the manifest.
    pub fn create(&mut self, name: &str, shared_pool: bool) -> Result<(), String> {
        self.insert(name, shared_pool)?;
        self.save_manifest()
            .map_err(|err| format!("tenant created but manifest write failed: {err}"))
    }

    /// Stops a tenant's replicas, deletes its snapshot log, and rewrites
    /// the manifest.  The `default` tenant cannot be dropped.
    pub fn drop_tenant(&mut self, name: &str) -> Result<(), String> {
        if name == DEFAULT_TENANT {
            return Err("the default tenant cannot be dropped".to_string());
        }
        let tenant = self
            .tenants
            .remove(name)
            .ok_or_else(|| format!("no tenant {name:?}"))?;
        let store_path = tenant.supervisor.store_path().map(Path::to_path_buf);
        tenant.supervisor.shutdown();
        if let Some(path) = store_path {
            let _ = fs::remove_file(path);
        }
        self.save_manifest()
            .map_err(|err| format!("tenant dropped but manifest write failed: {err}"))
    }

    /// Whether a tenant with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tenants.contains_key(name)
    }

    /// The named tenant.
    pub fn tenant(&self, name: &str) -> Option<&Tenant> {
        self.tenants.get(name)
    }

    /// The named tenant's fleet.
    pub fn supervisor(&self, name: &str) -> Option<&Supervisor> {
        self.tenants.get(name).map(|tenant| &tenant.supervisor)
    }

    /// The named tenant's fleet, mutably.
    pub fn supervisor_mut(&mut self, name: &str) -> Option<&mut Supervisor> {
        self.tenants
            .get_mut(name)
            .map(|tenant| &mut tenant.supervisor)
    }

    /// The `default` tenant's fleet (always present).
    pub fn default_supervisor(&self) -> &Supervisor {
        self.supervisor(DEFAULT_TENANT).expect("default tenant")
    }

    /// The `default` tenant's fleet, mutably (always present).
    pub fn default_supervisor_mut(&mut self) -> &mut Supervisor {
        self.supervisor_mut(DEFAULT_TENANT).expect("default tenant")
    }

    /// Tenant names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.tenants.keys().cloned().collect()
    }

    /// One human-readable summary line per tenant (`TENANT LIST`).
    pub fn list_lines(&self) -> Vec<String> {
        self.tenants
            .iter()
            .map(|(name, tenant)| {
                let supervisor = &tenant.supervisor;
                format!(
                    "tenant={name} shared_pool={} replicas={} epoch={} fixes_known={} \
                     restored_examples={}",
                    if tenant.shared_pool { "on" } else { "off" },
                    supervisor.replica_count(),
                    supervisor.epoch(),
                    supervisor.store().correct_fixes_learned(),
                    supervisor.restored_examples(),
                )
            })
            .collect()
    }

    /// Whether any tenant has replicas left to advance (the daemon loop
    /// sleeps otherwise).
    pub fn any_active(&self) -> bool {
        self.tenants
            .values()
            .any(|t| t.supervisor.replica_count() > 0 && !t.supervisor.is_drained())
    }

    /// Advances every active tenant one epoch; returns the total number of
    /// replicas that advanced.  Tenants tick independently — an empty or
    /// drained tenant's epoch clock stands still while its neighbors run.
    pub fn advance_all(&mut self) -> usize {
        let mut advanced = 0;
        for tenant in self.tenants.values_mut() {
            let supervisor = &mut tenant.supervisor;
            if supervisor.replica_count() == 0 || supervisor.is_drained() {
                continue;
            }
            advanced += supervisor.advance_epoch();
        }
        advanced
    }

    /// One tenant-tagged [`FleetHealth`](selfheal_telemetry::FleetHealth)
    /// JSON line per tenant that has replicas — the daemon's periodic
    /// metrics emission.
    pub fn health_lines(&self) -> Vec<String> {
        self.tenants
            .values()
            .filter(|tenant| tenant.supervisor.replica_count() > 0)
            .map(|tenant| tenant.supervisor.health().to_json_line())
            .collect()
    }

    /// Clean exit: shuts down every tenant (flushing each store and log),
    /// then the pool.
    pub fn shutdown(mut self) {
        let names: Vec<String> = self.tenants.keys().cloned().collect();
        for name in names {
            if let Some(tenant) = self.tenants.remove(&name) {
                tenant.supervisor.shutdown();
            }
        }
        self.pool.flush();
    }

    /// Simulated `kill -9`: stops every tenant's actors without final
    /// flushes, so only experience already drained to each snapshot log
    /// survives.
    pub fn abort(mut self) {
        let names: Vec<String> = self.tenants.keys().cloned().collect();
        for name in names {
            if let Some(tenant) = self.tenants.remove(&name) {
                tenant.supervisor.abort();
            }
        }
    }

    fn insert(&mut self, name: &str, shared_pool: bool) -> Result<(), String> {
        validate_name(name)?;
        if self.tenants.contains_key(name) {
            return Err(format!("tenant {name:?} already exists"));
        }
        let mut config = self.template.clone();
        config.store_path = self
            .template
            .store_path
            .as_ref()
            .map(|path| tenant_store_path(path, name));
        let pool_handle = shared_pool.then(|| self.pool.clone_store());
        let mut supervisor = Supervisor::with_pool(config, pool_handle)?;
        supervisor.set_label(name);
        self.tenants.insert(
            name.to_string(),
            Tenant {
                supervisor,
                shared_pool,
            },
        );
        Ok(())
    }

    fn manifest_path(&self) -> Option<PathBuf> {
        self.template
            .store_path
            .as_ref()
            .map(|path| sibling_path(path, "tenants"))
    }

    fn save_manifest(&self) -> std::io::Result<()> {
        let Some(path) = self.manifest_path() else {
            return Ok(());
        };
        let mut out = String::new();
        for (name, tenant) in &self.tenants {
            if name == DEFAULT_TENANT {
                continue;
            }
            out.push_str("{\"name\":");
            push_json_string(&mut out, name);
            out.push_str(",\"shared_pool\":");
            out.push_str(if tenant.shared_pool { "true" } else { "false" });
            out.push_str("}\n");
        }
        fs::write(path, out)
    }

    fn restore_manifest(&mut self) -> Result<(), String> {
        let Some(path) = self.manifest_path() else {
            return Ok(());
        };
        if !path.exists() {
            return Ok(());
        }
        let text = fs::read_to_string(&path)
            .map_err(|err| format!("cannot read tenant manifest {path:?}: {err}"))?;
        for line in text.lines().filter(|line| !line.trim().is_empty()) {
            let (name, shared_pool) = parse_manifest_line(line)
                .map_err(|err| format!("bad tenant manifest line {line:?}: {err}"))?;
            self.insert(&name, shared_pool)?;
        }
        Ok(())
    }
}

/// The snapshot-log path of one tenant, derived from the daemon's template
/// path: the `default` tenant keeps the template path itself, tenant `t`
/// gets the sibling `<stem>.<t>.<ext>`.
pub fn tenant_store_path(base: &Path, tenant: &str) -> PathBuf {
    if tenant == DEFAULT_TENANT {
        base.to_path_buf()
    } else {
        sibling_path(base, tenant)
    }
}

fn sibling_path(base: &Path, tag: &str) -> PathBuf {
    let stem = base
        .file_stem()
        .and_then(|stem| stem.to_str())
        .unwrap_or("store");
    let name = match base.extension().and_then(|ext| ext.to_str()) {
        Some(ext) => format!("{stem}.{tag}.{ext}"),
        None => format!("{stem}.{tag}"),
    };
    base.with_file_name(name)
}

fn validate_name(name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > MAX_TENANT_NAME {
        return Err(format!(
            "tenant names are 1..={MAX_TENANT_NAME} bytes, got {:?}",
            name.len()
        ));
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-' || b == b'_')
    {
        return Err(format!(
            "tenant name {name:?} has characters outside [a-z0-9_-]"
        ));
    }
    Ok(())
}

fn parse_manifest_line(line: &str) -> Result<(String, bool), String> {
    let fail = |err: JsonError| err.to_string();
    let mut scanner = Scanner::new(line);
    scanner.skip_ws();
    scanner.expect(b'{').map_err(fail)?;
    let mut name: Option<String> = None;
    let mut shared_pool: Option<bool> = None;
    loop {
        scanner.skip_ws();
        let key = scanner.parse_string().map_err(fail)?;
        scanner.skip_ws();
        scanner.expect(b':').map_err(fail)?;
        scanner.skip_ws();
        match key.as_ref() {
            "name" => name = Some(scanner.parse_string().map_err(fail)?.into_owned()),
            "shared_pool" => shared_pool = Some(scanner.parse_bool().map_err(fail)?),
            other => return Err(format!("unknown manifest key {other:?}")),
        }
        scanner.skip_ws();
        match scanner.peek() {
            Some(b',') => scanner.bump(),
            _ => break,
        }
    }
    scanner.expect(b'}').map_err(fail)?;
    scanner.finish().map_err(fail)?;
    match (name, shared_pool) {
        (Some(name), Some(shared_pool)) => Ok((name, shared_pool)),
        _ => Err("manifest line needs both name and shared_pool".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_paths_namespace_by_tenant() {
        let base = Path::new("/tmp/daemon/synopsis.jsonl");
        assert_eq!(tenant_store_path(base, DEFAULT_TENANT), base);
        assert_eq!(
            tenant_store_path(base, "scout"),
            Path::new("/tmp/daemon/synopsis.scout.jsonl")
        );
        assert_eq!(
            tenant_store_path(Path::new("bare"), "scout"),
            Path::new("bare.scout")
        );
    }

    #[test]
    fn names_are_validated() {
        assert!(validate_name("scout-7_a").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name("Scout").is_err());
        assert!(validate_name("a b").is_err());
        assert!(validate_name(&"x".repeat(MAX_TENANT_NAME + 1)).is_err());
    }

    #[test]
    fn manifest_lines_round_trip() {
        assert_eq!(
            parse_manifest_line("{\"name\":\"scout\",\"shared_pool\":true}"),
            Ok(("scout".to_string(), true))
        );
        assert_eq!(
            parse_manifest_line("{ \"shared_pool\": false , \"name\" : \"loner\" }"),
            Ok(("loner".to_string(), false))
        );
        assert!(parse_manifest_line("{\"name\":\"scout\"}").is_err());
        assert!(parse_manifest_line("not json").is_err());
    }

    #[test]
    fn registry_creates_drops_and_protects_default() {
        let mut registry = TenantRegistry::new(DaemonConfig::default()).unwrap();
        assert!(registry.contains(DEFAULT_TENANT));
        registry.create("scout", true).unwrap();
        assert!(registry.tenant("scout").unwrap().shared_pool());
        assert_eq!(registry.supervisor("scout").unwrap().label(), Some("scout"));
        assert!(registry.create("scout", false).is_err(), "duplicate");
        assert!(registry.create("Bad Name", false).is_err());
        assert!(registry.drop_tenant(DEFAULT_TENANT).is_err());
        assert!(registry.drop_tenant("ghost").is_err());
        registry.drop_tenant("scout").unwrap();
        assert!(!registry.contains("scout"));
        registry.shutdown();
    }
}
