//! `selfheal-daemon` — launch a resident self-healing fleet and serve its
//! control plane on a Unix domain socket.
//!
//! ```text
//! selfheal-daemon --socket /tmp/selfheal.sock [--replicas N] [--fault-mix P[:R]]
//!                 [--store PATH] [--metrics PATH] [--metrics-every N]
//!                 [--seed N] [--slice N] [--max-restarts N] [--backoff N]
//!                 [--shards N] [--batch N] [--profile WORD] [--epoch-ms N]
//! ```
//!
//! Drive it with `selfheal-ctl` (same crate) — see the README's "resident
//! daemon" quickstart.

use selfheal_core::harness::LearnerChoice;
use selfheal_daemon::{Daemon, DaemonConfig, DaemonOptions};
use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "usage: selfheal-daemon --socket PATH [options]
  --socket PATH        Unix socket the control plane serves (required)
  --replicas N         replicas added at launch (default 2)
  --fault-mix P[:R]    default fault profile: online|content|readmostly[:rate],
                       none (default online:0.02)
  --profile WORD       launch replicas' profile word (default: default)
  --store PATH         incremental snapshot log: replayed at startup,
                       appended on every drain (crash-restart durability)
  --metrics PATH       append a JSON health line every --metrics-every epochs
  --metrics-every N    epochs between metrics lines (default 50)
  --seed N             base seed (default 42)
  --slice N            ticks per epoch (default 32)
  --max-restarts N     runner rebuilds before a replica is retired (default 5)
  --backoff N          base restart backoff in epochs, doubling (default 2)
  --shards N           use a sharded store with N shards (default: locked)
  --batch N            store drain batch (default 1)
  --epoch-ms N         wall-clock pause between epochs (default 0: run hot)
  --help               print this help";

struct Args {
    socket: Option<PathBuf>,
    replicas: usize,
    fault_mix: String,
    profile: String,
    store: Option<PathBuf>,
    metrics: Option<PathBuf>,
    metrics_every: u64,
    seed: u64,
    slice: u64,
    max_restarts: u32,
    backoff: u64,
    shards: usize,
    batch: usize,
    epoch_ms: u64,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut parsed = Args {
        socket: None,
        replicas: 2,
        fault_mix: "online:0.02".to_string(),
        profile: "default".to_string(),
        store: None,
        metrics: None,
        metrics_every: 50,
        seed: 42,
        slice: 32,
        max_restarts: 5,
        backoff: 2,
        shards: 0,
        batch: 1,
        epoch_ms: 0,
    };
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--socket" => parsed.socket = Some(PathBuf::from(value("--socket")?)),
            "--replicas" => parsed.replicas = numeric("--replicas", &value("--replicas")?)?,
            "--fault-mix" => parsed.fault_mix = value("--fault-mix")?,
            "--profile" => parsed.profile = value("--profile")?,
            "--store" => parsed.store = Some(PathBuf::from(value("--store")?)),
            "--metrics" => parsed.metrics = Some(PathBuf::from(value("--metrics")?)),
            "--metrics-every" => {
                parsed.metrics_every = numeric("--metrics-every", &value("--metrics-every")?)?
            }
            "--seed" => parsed.seed = numeric("--seed", &value("--seed")?)?,
            "--slice" => parsed.slice = numeric("--slice", &value("--slice")?)?,
            "--max-restarts" => {
                parsed.max_restarts = numeric("--max-restarts", &value("--max-restarts")?)?
            }
            "--backoff" => parsed.backoff = numeric("--backoff", &value("--backoff")?)?,
            "--shards" => parsed.shards = numeric("--shards", &value("--shards")?)?,
            "--batch" => parsed.batch = numeric("--batch", &value("--batch")?)?,
            "--epoch-ms" => parsed.epoch_ms = numeric("--epoch-ms", &value("--epoch-ms")?)?,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if parsed.socket.is_none() {
        return Err(format!("--socket is required\n{USAGE}"));
    }
    Ok(parsed)
}

fn numeric<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse::<T>()
        .map_err(|_| format!("{flag}: cannot parse {value:?}"))
}

fn run() -> Result<(), String> {
    let args = parse_args(std::env::args().skip(1))?;
    let mut config = DaemonConfig {
        base_seed: args.seed,
        slice: args.slice.max(1),
        max_restarts: args.max_restarts,
        backoff_epochs: args.backoff.max(1),
        store_path: args.store.clone(),
        learner: if args.shards > 0 {
            LearnerChoice::Sharded {
                shards: args.shards,
                batch: args.batch.max(1),
            }
        } else {
            LearnerChoice::Locked {
                batch: args.batch.max(1),
            }
        },
        ..DaemonConfig::default()
    };
    config.default_faults = config.fault_profile(&args.fault_mix)?;

    let socket = args.socket.expect("checked in parse_args");
    let mut options = DaemonOptions::new(&socket);
    options.replicas = args.replicas;
    options.profile = args.profile;
    options.metrics = args.metrics;
    options.metrics_every = args.metrics_every;
    options.epoch_pause = Duration::from_millis(args.epoch_ms);

    let daemon = Daemon::launch(config, options)?;
    println!("selfheal-daemon: serving on {}", socket.display());
    let _ = std::io::stdout().flush();
    daemon.run()
}

fn main() {
    if let Err(message) = run() {
        eprintln!("{message}");
        std::process::exit(2);
    }
}
