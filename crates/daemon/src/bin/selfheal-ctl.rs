//! `selfheal-ctl` — the scripting client for `selfheal-daemon`.
//!
//! ```text
//! selfheal-ctl --socket /tmp/selfheal.sock [--timeout-secs N] COMMAND [ARGS...]
//! ```
//!
//! The command words are joined and sent as one protocol line (see
//! `selfheal_daemon::protocol`), the full reply is printed, and the exit
//! code reflects the terminator: 0 for `OK`, 1 for `ERR`, 2 for transport
//! failures — so shell scripts and CI can gate on it directly:
//!
//! ```text
//! selfheal-ctl --socket /tmp/selfheal.sock STATUS
//! selfheal-ctl --socket /tmp/selfheal.sock ADD online:0.05
//! selfheal-ctl --socket /tmp/selfheal.sock QUERY FIXES
//! selfheal-ctl --socket /tmp/selfheal.sock SNAPSHOT /tmp/fixes.jsonl
//! selfheal-ctl --socket /tmp/selfheal.sock SHUTDOWN
//! ```

use selfheal_daemon::protocol::{is_ok_reply, send_command};
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "usage: selfheal-ctl --socket PATH [--timeout-secs N] COMMAND [ARGS...]
commands: STATUS | REPLICAS | ADD <profile> | REMOVE <id>
          | RECONFIGURE <id> <key>=<value> | QUERY FIXES [<v1,v2,...>]
          | EPISODES OPEN | SNAPSHOT <path> | DRAIN | SHUTDOWN";

fn run() -> Result<bool, String> {
    let mut args = std::env::args().skip(1);
    let mut socket: Option<PathBuf> = None;
    let mut timeout = Duration::from_secs(30);
    let mut words: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => {
                socket = Some(PathBuf::from(
                    args.next()
                        .ok_or_else(|| format!("--socket needs a value\n{USAGE}"))?,
                ))
            }
            "--timeout-secs" => {
                let value = args
                    .next()
                    .ok_or_else(|| format!("--timeout-secs needs a value\n{USAGE}"))?;
                let secs: u64 = value
                    .parse()
                    .map_err(|_| format!("--timeout-secs: cannot parse {value:?}"))?;
                timeout = Duration::from_secs(secs.max(1));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            _ => {
                words.push(arg);
                words.extend(args.by_ref());
            }
        }
    }
    let socket = socket.ok_or_else(|| format!("--socket is required\n{USAGE}"))?;
    if words.is_empty() {
        return Err(format!("no command given\n{USAGE}"));
    }
    let line = words.join(" ");
    let reply = send_command(&socket, &line, timeout)
        .map_err(|err| format!("selfheal-ctl: {}: {err}", socket.display()))?;
    print!("{reply}");
    Ok(is_ok_reply(&reply))
}

fn main() {
    match run() {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
