//! The control plane: a Unix-domain-socket server feeding parsed commands
//! to the daemon loop, and the [`Daemon`] loop itself.
//!
//! The socket thread never touches the fleet.  It parses each request line
//! into a [`Command`], enqueues it with a reply channel, and waits; the
//! daemon loop drains the queue *between epochs* and answers through the
//! channel.  Commands therefore land exactly at epoch barriers — the same
//! synchronization points the batch scheduler uses — so the ticks between
//! two control events stay deterministic per replica.

use crate::protocol::{is_ok_reply, parse_command, reply_err, reply_ok, Command};
use crate::supervisor::Supervisor;
use crate::tenants::TenantRegistry;
use crate::DaemonConfig;
use std::collections::VecDeque;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// A parsed command awaiting its epoch barrier, with the channel its reply
/// travels back on.
pub struct PendingCommand {
    command: Command,
    reply: mpsc::Sender<String>,
}

impl PendingCommand {
    /// The parsed command.
    pub fn command(&self) -> &Command {
        &self.command
    }

    /// Sends the full reply text (payload lines + terminator) back to the
    /// waiting connection.
    pub fn respond(self, reply: String) {
        let _ = self.reply.send(reply);
    }
}

struct ControlShared {
    queue: Mutex<VecDeque<PendingCommand>>,
    stop: AtomicBool,
}

/// The socket server: accepts connections on a Unix domain socket, parses
/// request lines, and queues [`PendingCommand`]s for the daemon loop.
///
/// Connections are served one at a time (clients hold the socket only for
/// the duration of one command; see
/// [`send_command`](crate::protocol::send_command)).  The socket file is
/// removed on [`Drop`].
pub struct ControlPlane {
    path: PathBuf,
    shared: Arc<ControlShared>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ControlPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlPlane")
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

impl ControlPlane {
    /// Binds the socket (removing any stale file at `path` first) and
    /// starts the accept thread.
    pub fn bind(path: &Path) -> io::Result<ControlPlane> {
        let _ = fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(ControlShared {
            queue: Mutex::new(VecDeque::new()),
            stop: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_path = path.to_path_buf();
        let thread = thread::Builder::new()
            .name("control-plane".to_string())
            .spawn(move || accept_loop(listener, accept_shared, accept_path))?;
        Ok(ControlPlane {
            path: path.to_path_buf(),
            shared,
            thread: Some(thread),
        })
    }

    /// The socket path this plane serves.
    pub fn socket_path(&self) -> &Path {
        &self.path
    }

    /// Drains every command queued since the last barrier.
    pub fn take_pending(&self) -> Vec<PendingCommand> {
        let mut queue = self.shared.queue.lock().expect("control queue poisoned");
        queue.drain(..).collect()
    }

    /// Asks the accept thread to exit (it also unlinks the socket file).
    pub fn request_stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }
}

impl Drop for ControlPlane {
    fn drop(&mut self) {
        self.request_stop();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn accept_loop(listener: UnixListener, shared: Arc<ControlShared>, path: PathBuf) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = serve_connection(stream, &shared);
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    let _ = fs::remove_file(&path);
}

/// Serves one connection: a loop of request line → queue → reply.  Closes
/// on EOF, read errors, a served `SHUTDOWN`, or a long idle stretch.
fn serve_connection(stream: UnixStream, shared: &Arc<ControlShared>) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(1)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut buffer = String::new();
    let mut idle = 0u32;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        buffer.clear();
        match reader.read_line(&mut buffer) {
            Ok(0) => return Ok(()),
            Ok(_) => {
                idle = 0;
                let line = buffer.trim();
                if line.is_empty() {
                    continue;
                }
                let (reply, was_shutdown) = match parse_command(line) {
                    Err(message) => (reply_err(&message), false),
                    Ok(command) => {
                        let was_shutdown = command == Command::Shutdown;
                        let (reply_tx, reply_rx) = mpsc::channel();
                        shared
                            .queue
                            .lock()
                            .expect("control queue poisoned")
                            .push_back(PendingCommand {
                                command,
                                reply: reply_tx,
                            });
                        (wait_reply(reply_rx, shared), was_shutdown)
                    }
                };
                writer.write_all(reply.as_bytes())?;
                writer.flush()?;
                if was_shutdown && is_ok_reply(&reply) {
                    return Ok(());
                }
            }
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut =>
            {
                idle += 1;
                if idle > 600 {
                    // A client has held the (single-served) socket idle for
                    // ten minutes; cut it loose.
                    return Ok(());
                }
            }
            Err(err) => return Err(err),
        }
    }
}

/// Waits for the daemon loop's reply, bailing out with an `ERR` when the
/// daemon stops (or takes implausibly long to reach a barrier).
fn wait_reply(reply_rx: mpsc::Receiver<String>, shared: &ControlShared) -> String {
    for _ in 0..600 {
        match reply_rx.recv_timeout(Duration::from_millis(100)) {
            Ok(reply) => return reply,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return reply_err("daemon is shutting down");
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return reply_err("daemon dropped the command");
            }
        }
    }
    reply_err("timed out waiting for the epoch barrier")
}

/// Launch options for a [`Daemon`] (everything that is about *this
/// process* rather than about the fleet — the fleet is the
/// [`DaemonConfig`]).
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Unix-socket path the control plane serves.
    pub socket: PathBuf,
    /// Replicas added at launch.
    pub replicas: usize,
    /// Fault profile of the launch replicas (a
    /// [`DaemonConfig::fault_profile`] word).
    pub profile: String,
    /// JSON-lines metrics file, appended every
    /// [`metrics_every`](Self::metrics_every) epochs.
    pub metrics: Option<PathBuf>,
    /// Epochs between metrics lines (0 disables).
    pub metrics_every: u64,
    /// Wall-clock pause between epochs (throttle; zero = run hot).
    pub epoch_pause: Duration,
}

impl DaemonOptions {
    /// Defaults: 2 `default`-profile replicas, metrics off, no throttle.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        DaemonOptions {
            socket: socket.into(),
            replicas: 2,
            profile: "default".to_string(),
            metrics: None,
            metrics_every: 50,
            epoch_pause: Duration::ZERO,
        }
    }
}

/// The resident daemon: a [`TenantRegistry`] of supervised fleets plus a
/// [`ControlPlane`], glued by the epoch loop in [`run`](Daemon::run).
pub struct Daemon {
    registry: TenantRegistry,
    control: ControlPlane,
    kill: Arc<AtomicBool>,
    options: DaemonOptions,
    metrics: Option<File>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("registry", &self.registry)
            .field("control", &self.control)
            .finish_non_exhaustive()
    }
}

impl Daemon {
    /// Builds the tenant registry (which recreates persisted tenants and
    /// replays their snapshot logs), adds the launch replicas to the
    /// `default` tenant, opens the metrics file (append), and binds the
    /// control socket.
    pub fn launch(config: DaemonConfig, options: DaemonOptions) -> Result<Daemon, String> {
        let mut registry = TenantRegistry::new(config)?;
        for _ in 0..options.replicas {
            registry
                .default_supervisor_mut()
                .add_replica(&options.profile)?;
        }
        let metrics = match &options.metrics {
            Some(path) => Some(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|err| format!("cannot open metrics file {path:?}: {err}"))?,
            ),
            None => None,
        };
        let control = ControlPlane::bind(&options.socket)
            .map_err(|err| format!("cannot bind {:?}: {err}", options.socket))?;
        Ok(Daemon {
            registry,
            control,
            kill: Arc::new(AtomicBool::new(false)),
            options,
            metrics,
        })
    }

    /// Read access to the `default` tenant's supervisor (pre-`run`
    /// introspection; most single-tenant tests want exactly this).
    pub fn supervisor(&self) -> &Supervisor {
        self.registry.default_supervisor()
    }

    /// Read access to the whole tenant registry.
    pub fn registry(&self) -> &TenantRegistry {
        &self.registry
    }

    /// A flag that hard-kills the daemon loop from another thread: on the
    /// next barrier the loop aborts *without* the final store flush —
    /// the in-process stand-in for `kill -9` the crash-restart tests use.
    pub fn kill_switch(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.kill)
    }

    /// The epoch loop: apply queued commands at the barrier, advance every
    /// active tenant one epoch, emit metrics, repeat — until `SHUTDOWN`
    /// (clean: actors stopped, stores flushed) or the kill switch (abort:
    /// no flush).
    pub fn run(mut self) -> Result<(), String> {
        // Metrics cadence counts loop iterations rather than any one
        // tenant's epoch clock: tenants tick independently, so no single
        // epoch counter describes the daemon as a whole.
        let mut iterations: u64 = 0;
        loop {
            if self.kill.load(Ordering::SeqCst) {
                self.control.request_stop();
                self.registry.abort();
                return Ok(());
            }
            for pending in self.control.take_pending() {
                let command = pending.command().clone();
                let (reply, shutdown) = apply_command(&mut self.registry, command);
                pending.respond(reply);
                if shutdown {
                    self.control.request_stop();
                    self.registry.shutdown();
                    return Ok(());
                }
            }
            if !self.registry.any_active() {
                thread::sleep(Duration::from_millis(20));
                continue;
            }
            self.registry.advance_all();
            iterations += 1;
            if let Some(file) = self.metrics.as_mut() {
                if self.options.metrics_every > 0
                    && iterations.is_multiple_of(self.options.metrics_every)
                {
                    for line in self.registry.health_lines() {
                        let _ = writeln!(file, "{line}");
                    }
                }
            }
            if !self.options.epoch_pause.is_zero() {
                thread::sleep(self.options.epoch_pause);
            }
        }
    }
}

/// Applies one command against the registry; returns the full reply text
/// and whether this was an accepted `SHUTDOWN`.
///
/// Daemon-wide commands (`TENANT ...`, `SHUTDOWN`) are handled here;
/// everything else is a fleet command, routed to the `@<tenant>` scope it
/// names or to the `default` tenant when unscoped — so a single-tenant
/// daemon behaves exactly as it did before tenancy existed.
fn apply_command(registry: &mut TenantRegistry, command: Command) -> (String, bool) {
    match command {
        Command::Shutdown => (reply_ok(&["shutting down".to_string()]), true),
        Command::TenantCreate { name, shared_pool } => match registry.create(&name, shared_pool) {
            Ok(()) => (
                reply_ok(&[format!(
                    "tenant {name} created shared_pool={}",
                    if shared_pool { "on" } else { "off" }
                )]),
                false,
            ),
            Err(message) => (reply_err(&message), false),
        },
        Command::TenantDrop(name) => match registry.drop_tenant(&name) {
            Ok(()) => (reply_ok(&[format!("tenant {name} dropped")]), false),
            Err(message) => (reply_err(&message), false),
        },
        Command::TenantList => (reply_ok(&registry.list_lines()), false),
        Command::Scoped { tenant, inner } => match registry.supervisor_mut(&tenant) {
            Some(supervisor) => apply_fleet_command(supervisor, *inner),
            None => (reply_err(&format!("no tenant {tenant:?}")), false),
        },
        other => apply_fleet_command(registry.default_supervisor_mut(), other),
    }
}

/// Applies one per-fleet command against a single tenant's supervisor.
fn apply_fleet_command(supervisor: &mut Supervisor, command: Command) -> (String, bool) {
    match command {
        Command::Status => (reply_ok(&status_lines(supervisor)), false),
        Command::Replicas => {
            let lines: Vec<String> = supervisor
                .replica_health()
                .iter()
                .map(|replica| {
                    format!(
                        "replica {} profile={} state={} ticks={} episodes={} open={} \
                         fixes={} restarts={} heartbeat_ms={}",
                        replica.id,
                        replica.profile,
                        replica.state.label(),
                        replica.ticks,
                        replica.episodes,
                        replica.open_episodes,
                        replica.fixes_initiated,
                        replica.restarts,
                        replica.last_heartbeat_ms
                    )
                })
                .collect();
            (reply_ok(&lines), false)
        }
        Command::Add(profile) => match supervisor.add_replica(&profile) {
            Ok(id) => {
                let profile = supervisor
                    .replica_health()
                    .iter()
                    .find(|r| r.id == id)
                    .map(|r| r.profile.clone())
                    .unwrap_or_default();
                (
                    reply_ok(&[format!("replica {id} added profile={profile}")]),
                    false,
                )
            }
            Err(message) => (reply_err(&message), false),
        },
        Command::Remove(id) => match supervisor.remove_replica(id) {
            Ok(()) => (reply_ok(&[format!("replica {id} removed")]), false),
            Err(message) => (reply_err(&message), false),
        },
        Command::Reconfigure { id, key, value } => match supervisor.reconfigure(id, &key, &value) {
            Ok(applied) => (
                reply_ok(&[format!("replica {id} reconfigured {applied}")]),
                false,
            ),
            Err(message) => (reply_err(&message), false),
        },
        Command::QueryFixes(Some(signature)) => match supervisor.suggest_fix(&signature) {
            Some((fix, confidence)) => (
                reply_ok(&[format!("fix={} confidence={confidence:.3}", fix.label())]),
                false,
            ),
            None => (reply_ok(&["no_suggestion".to_string()]), false),
        },
        Command::QueryFixes(None) => {
            let stats = supervisor.fix_stats();
            let mut lines: Vec<String> = if stats.is_empty() {
                vec!["no_experience".to_string()]
            } else {
                stats
                    .iter()
                    .map(|s| {
                        format!(
                            "fix={} successes={} failures={} success_rate={:.3}",
                            s.fix.label(),
                            s.successes,
                            s.failures,
                            s.success_rate()
                        )
                    })
                    .collect()
            };
            // A pooled tenant also reports what the cross-tenant pool knows
            // (prefixed so namespace and pool experience never blur).
            if let Some(pool_stats) = supervisor.pool_stats() {
                for s in &pool_stats {
                    lines.push(format!(
                        "pool fix={} successes={} failures={} success_rate={:.3}",
                        s.fix.label(),
                        s.successes,
                        s.failures,
                        s.success_rate()
                    ));
                }
            }
            (reply_ok(&lines), false)
        }
        Command::Metrics => (reply_ok(&[supervisor.health().to_json_line()]), false),
        Command::EpisodesOpen => {
            let mut lines: Vec<String> = supervisor
                .replica_health()
                .iter()
                .filter(|replica| replica.open_episodes > 0)
                .map(|replica| format!("replica {} open={}", replica.id, replica.open_episodes))
                .collect();
            lines.push(format!("total_open={}", supervisor.total_open_episodes()));
            (reply_ok(&lines), false)
        }
        Command::Snapshot(path) => match supervisor.snapshot_to(&path) {
            Ok(examples) => (
                reply_ok(&[format!("snapshot={} examples={examples}", path.display())]),
                false,
            ),
            Err(err) => (
                reply_err(&format!("cannot snapshot to {}: {err}", path.display())),
                false,
            ),
        },
        Command::Drain => {
            supervisor.drain();
            (reply_ok(&["draining".to_string()]), false)
        }
        // Unreachable through the parser (it rejects `@t <global>`), kept
        // for programmatic construction.
        Command::Shutdown
        | Command::TenantCreate { .. }
        | Command::TenantDrop(_)
        | Command::TenantList
        | Command::Scoped { .. } => (
            reply_err("daemon-wide commands cannot be applied to one tenant"),
            false,
        ),
    }
}

/// The `STATUS` payload: daemon, fleet, store, and per-replica
/// error/restart summary lines.
fn status_lines(supervisor: &Supervisor) -> Vec<String> {
    let health = supervisor.health();
    let persist = supervisor
        .store_path()
        .map(|p| p.display().to_string())
        .unwrap_or_else(|| "none".to_string());
    let mut lines = vec![
        format!(
            "epoch={} uptime_ms={} draining={} drained={}",
            health.epoch,
            health.uptime_ms,
            supervisor.draining(),
            supervisor.is_drained()
        ),
        format!(
            "replicas={} running={} restarting={} failed={}",
            supervisor.replica_count(),
            health.running,
            health.restarting,
            health.failed
        ),
        format!(
            "ticks_total={} ticks_per_sec={:.1}",
            health.total_ticks, health.ticks_per_sec
        ),
        format!(
            "store={} fixes_known={} pending_updates={} restored_examples={} persist={persist}",
            supervisor.store().kind().label(),
            health.fixes_known,
            health.pending_updates,
            supervisor.restored_examples()
        ),
        format!(
            "open_episodes={} restarts_total={}",
            health.open_episodes, health.restarts
        ),
        format!(
            "adversary={} adversary_target={}",
            if supervisor.adversary_enabled() {
                "on"
            } else {
                "off"
            },
            supervisor
                .adversary_target()
                .map(|id| id.to_string())
                .unwrap_or_else(|| "none".to_string())
        ),
        format!(
            "tenant={} shared_pool={} pool_fixes_known={}",
            supervisor.label().unwrap_or("standalone"),
            if supervisor.pooled() { "on" } else { "off" },
            supervisor
                .pool_fixes_known()
                .map(|n| n.to_string())
                .unwrap_or_else(|| "none".to_string())
        ),
    ];
    for replica in supervisor.replica_health() {
        if replica.restarts > 0 || replica.last_error.is_some() {
            lines.push(format!(
                "replica {} state={} restarts={} last_error={:?}",
                replica.id,
                replica.state.label(),
                replica.restarts,
                replica.last_error.as_deref().unwrap_or("")
            ));
        }
    }
    lines
}
