//! The cross-tenant pooled store: opt-in knowledge sharing between
//! otherwise-isolated tenant fleets.
//!
//! Every tenant owns a private [`SynopsisStore`] namespace (its own model,
//! snapshot log, and statistics).  Tenants created with `shared_pool = on`
//! additionally *conference* their experience: each recorded fix outcome is
//! mirrored into one daemon-wide pooled store, and suggestion lookups fall
//! back to the pool when the tenant's own store has nothing for a
//! signature.  A fix learned by a scout tenant therefore transfers to a
//! pooled victim tenant, while tenants with the flag off never see (or
//! leak) pooled experience — the multi-tenant version of the paper's
//! shared-learning result.
//!
//! Isolation contract: the tenant's *namespace* surfaces
//! ([`SynopsisStore::snapshot`], [`SynopsisStore::persist_to`],
//! [`SynopsisStore::fix_stats`], `correct_fixes_learned`) read the primary
//! store only, so snapshots, logs, and per-tenant statistics never blend in
//! pooled data.  The pool is visible exclusively through `suggest*`
//! fallback and through the supervisor's explicit `pool_*` introspection
//! surface.

use selfheal_core::snapshot::SynopsisSnapshot;
use selfheal_core::store::SynopsisStore;
use selfheal_core::synopsis::{Learner, SynopsisKind};
use selfheal_faults::FixKind;
use std::collections::HashSet;
use std::io;
use std::path::Path;

/// A tenant-facing store handle that records into both the tenant's
/// primary store and the daemon-wide pool, and falls back to the pool on
/// suggestion misses.  See the module docs for the isolation contract.
pub struct PooledStore {
    primary: Box<dyn SynopsisStore>,
    pool: Box<dyn SynopsisStore>,
}

impl PooledStore {
    /// Wraps a tenant's primary store with a handle to the shared pool.
    pub fn new(primary: Box<dyn SynopsisStore>, pool: Box<dyn SynopsisStore>) -> Self {
        PooledStore { primary, pool }
    }
}

impl Learner for PooledStore {
    fn suggest(&self, symptoms: &[f64]) -> Option<(FixKind, f64)> {
        self.primary
            .suggest(symptoms)
            .or_else(|| self.pool.suggest(symptoms))
    }

    fn suggest_excluding(
        &self,
        symptoms: &[f64],
        excluded: &HashSet<FixKind>,
    ) -> Option<(FixKind, f64)> {
        self.primary
            .suggest_excluding(symptoms, excluded)
            .or_else(|| self.pool.suggest_excluding(symptoms, excluded))
    }

    fn record(&mut self, symptoms: &[f64], fix: FixKind, success: bool) {
        self.primary.record(symptoms, fix, success);
        self.pool.record(symptoms, fix, success);
    }

    fn correct_fixes_learned(&self) -> usize {
        self.primary.correct_fixes_learned()
    }
}

// lint:allow(choice-mirror): PooledStore is the daemon-internal cross-tenant adapter, not a configurable scenario; tenants select it via the shared_pool flag, not LearnerChoice.
impl SynopsisStore for PooledStore {
    fn kind(&self) -> SynopsisKind {
        self.primary.kind()
    }

    fn flush(&self) {
        self.primary.flush();
        self.pool.flush();
    }

    fn pending_updates(&self) -> usize {
        self.primary.pending_updates()
    }

    fn snapshot(&self) -> SynopsisSnapshot {
        self.primary.snapshot()
    }

    fn restore(&mut self, snapshot: &SynopsisSnapshot) {
        self.primary.restore(snapshot);
    }

    fn clone_store(&self) -> Box<dyn SynopsisStore> {
        Box::new(PooledStore {
            primary: self.primary.clone_store(),
            pool: self.pool.clone_store(),
        })
    }

    fn persist_to(&mut self, path: &Path) -> io::Result<()> {
        self.primary.persist_to(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_core::store::LockedStore;

    fn signature() -> Vec<f64> {
        vec![4.0, 1.0, 0.0, 2.5]
    }

    fn pooled(pool: &LockedStore) -> PooledStore {
        let primary = Box::new(LockedStore::with_batch(SynopsisKind::NearestNeighbor, 1));
        PooledStore::new(primary, pool.clone_store())
    }

    #[test]
    fn fixes_transfer_through_the_pool() {
        let pool = LockedStore::with_batch(SynopsisKind::NearestNeighbor, 1);
        let mut scout = pooled(&pool);
        let victim = pooled(&pool);
        scout.record(&signature(), FixKind::MicrorebootEjb, true);
        scout.flush();
        victim.flush();

        // The victim's own namespace is empty, but the pool fallback
        // surfaces the scout's fix.
        assert!(victim.snapshot().examples.is_empty());
        assert!(victim.fix_stats().is_empty());
        assert_eq!(victim.correct_fixes_learned(), 0);
        let (fix, confidence) = victim.suggest(&signature()).expect("pooled suggestion");
        assert_eq!(fix, FixKind::MicrorebootEjb);
        assert!(confidence > 0.0);

        // A store outside the pool sees nothing.
        let mut loner = LockedStore::with_batch(SynopsisKind::NearestNeighbor, 1);
        Learner::record(&mut loner, &[9.9, 9.9, 9.9, 9.9], FixKind::RebootTier, true);
        loner.flush();
        assert_eq!(
            loner.suggest(&signature()).map(|(fix, _)| fix),
            Some(FixKind::RebootTier),
            "the loner only knows its own experience"
        );
    }

    #[test]
    fn primary_experience_wins_over_the_pool() {
        let pool = LockedStore::with_batch(SynopsisKind::NearestNeighbor, 1);
        let mut scout = pooled(&pool);
        scout.record(&signature(), FixKind::MicrorebootEjb, true);
        let mut victim = pooled(&pool);
        victim.record(&signature(), FixKind::RebootTier, true);
        scout.flush();
        victim.flush();
        assert_eq!(
            victim.suggest(&signature()).map(|(fix, _)| fix),
            Some(FixKind::RebootTier),
            "own namespace answers before the pool fallback"
        );
    }

    #[test]
    fn namespace_surfaces_exclude_the_pool() {
        let pool = LockedStore::with_batch(SynopsisKind::NearestNeighbor, 1);
        let mut scout = pooled(&pool);
        let mut victim = pooled(&pool);
        scout.record(&signature(), FixKind::MicrorebootEjb, true);
        victim.record(&[1.0, 1.0, 1.0, 1.0], FixKind::RebootTier, false);
        let stats = victim.fix_stats();
        assert_eq!(stats.len(), 1, "only the victim's own record counts");
        assert_eq!(stats[0].fix, FixKind::RebootTier);
        assert_eq!(victim.snapshot().examples.len(), 1);
    }
}
