//! # selfheal-daemon
//!
//! The resident fleet daemon: the tick-sliced fleet of
//! [`selfheal_fleet`] turned into a long-lived, inspectable service.
//!
//! Every earlier artifact in this reproduction is a *batch* run — the
//! fleet, its shared [`SynopsisStore`],
//! and all learned fixes die when the process exits.  The paper's premise,
//! though, is a service that heals itself by accumulating fix knowledge
//! over its lifetime.  This crate supplies the missing serving story:
//!
//! * [`Supervisor`] — owns one replica *actor* per worker thread and drives
//!   them epoch by epoch (an epoch = [`DaemonConfig::slice`] ticks,
//!   collected at a barrier).  A replica panic becomes a bounded
//!   restart-with-backoff instead of run termination: the runner is rebuilt
//!   from the replica's spec, its healer warm against the *still-alive*
//!   shared store, until a restart cap retires the replica.  Per-replica
//!   health (ticks, episodes, restarts, heartbeats) is tracked via
//!   [`selfheal_telemetry::health`].
//! * [`control`] — a line-oriented text protocol (see [`protocol`]) served
//!   over a Unix domain socket, std-only.  Commands (`STATUS`, `ADD`,
//!   `RECONFIGURE`, `QUERY FIXES`, `SNAPSHOT`, `DRAIN`, `SHUTDOWN`, ...)
//!   are queued by the socket thread and applied by the daemon loop at
//!   epoch barriers only, so between two control events every replica
//!   advances exactly as a batch run would.
//! * **Live queries** — `QUERY FIXES` and `STATUS` read the shared store
//!   (suggestions, per-fix success rates via
//!   [`SynopsisStore::fix_stats`],
//!   restored-example counts) while the fleet keeps ticking.
//! * **Crash-restart** — with [`DaemonConfig::store_path`] set, the store
//!   persists through the incremental
//!   [`SnapshotLog`](selfheal_core::snapshot::SnapshotLog): every drained
//!   batch is appended as it happens, and on startup the daemon replays the
//!   file, so a `kill -9` mid-run loses nothing already drained.
//! * **Multi-tenancy** — a [`TenantRegistry`] runs several named fleets in
//!   one daemon (`TENANT CREATE/DROP/LIST`, `@<tenant>` command scoping),
//!   each with its own store namespace and snapshot log, plus an opt-in
//!   cross-tenant [`PooledStore`] so fix knowledge can transfer between
//!   consenting tenants.  The HTTP gateway (`crates/gateway`) exposes the
//!   same [`Command`] surface over authenticated HTTP/JSON.
//!
//! ## Determinism trade-off
//!
//! The daemon runs the shared store *ungated* (the batch engine's
//! [`StoreGate`](selfheal_fleet::scheduler) reproduces sequential
//! fingerprints; a daemon whose fleet membership changes at runtime has no
//! fixed sequential reference to reproduce).  Each replica's simulated
//! streams — service, workload, faults — are still pure functions of
//! `(base_seed, replica_id)`; only the *visibility timing* of shared
//! learning varies with thread scheduling, exactly as documented on
//! [`selfheal_fleet::FleetConfig::ungated`].
//!
//! Tenancy does not change this: tenants advance sequentially inside the
//! daemon loop and never share mutable state except the opt-in pool.  A
//! *single-replica* tenant is fully serialized (one actor, one barrier), so
//! its fingerprints are byte-identical to the same config run standalone —
//! the isolation property `tests/tenants.rs` pins.
//!
//! ## Example
//!
//! ```
//! use selfheal_daemon::{DaemonConfig, Supervisor};
//!
//! let mut supervisor = Supervisor::new(DaemonConfig::default()).unwrap();
//! let id = supervisor.add_replica("online:0.05").unwrap();
//! supervisor.advance_epoch();
//! assert_eq!(supervisor.replica_health()[0].id, id);
//! supervisor.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod control;
pub mod pool;
pub mod protocol;
pub mod supervisor;
pub mod tenants;

pub use control::{ControlPlane, Daemon, DaemonOptions, PendingCommand};
pub use pool::PooledStore;
pub use protocol::{parse_command, render_command, send_command, Command};
pub use supervisor::{ReplicaSpec, Supervisor};
pub use tenants::{Tenant, TenantRegistry, DEFAULT_TENANT};

use selfheal_core::harness::{FaultChoice, LearnerChoice, PolicyChoice, WorkloadChoice};
use selfheal_core::store::SynopsisStore;
use selfheal_core::synopsis::SynopsisKind;
use selfheal_faults::ServiceProfile;
use selfheal_sim::scenario::Healer;
use selfheal_sim::{ScenarioRunner, ServiceConfig};
use selfheal_workload::{ArrivalProcess, WorkloadMix};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// Per-tick fault probability used when an `ADD <profile>` omits the rate.
pub const DEFAULT_MIX_RATE: f64 = 0.02;

/// Builds one replica runner — the test seam that lets supervisor tests
/// inject deliberately panicking replicas.  The second argument is the
/// daemon's shared store; production runners wire their healer to a
/// [`clone_store`](selfheal_core::store::SynopsisStore::clone_store)
/// handle of it.
pub type RunnerFactory =
    Arc<dyn Fn(&ReplicaSpec, &dyn SynopsisStore) -> ScenarioRunner<Box<dyn Healer>> + Send + Sync>;

/// Configuration of a resident daemon (and its [`Supervisor`]).
///
/// The daemon *requires* shared learning — a learning policy
/// ([`PolicyChoice::shares_learning`]) over a shared learner
/// ([`LearnerChoice::is_shared`]) — because its restart and warm-start
/// semantics hang off the fleet-wide store surviving individual replicas.
#[derive(Clone)]
pub struct DaemonConfig {
    /// Service simulated by every replica.
    pub service: ServiceConfig,
    /// Healing policy driving every replica (must learn).
    pub policy: PolicyChoice,
    /// Where learned state lives (must be shared: `Locked` or `Sharded`).
    pub learner: LearnerChoice,
    /// Workload shape every replica runs (per-replica seeded).
    pub workload: WorkloadChoice,
    /// Fault profile replicas get when added as `default`.
    pub default_faults: FaultChoice,
    /// Base seed; each replica's streams are split from it by id, so a
    /// replica's simulated inputs are a pure function of `(seed, id)`.
    pub base_seed: u64,
    /// Ticks per epoch: how far every replica advances between barriers
    /// (and therefore between control-plane command applications).
    pub slice: u64,
    /// Metric samples each replica retains.
    pub series_capacity: usize,
    /// Runner rebuilds allowed per replica before it is retired as failed.
    pub max_restarts: u32,
    /// Base restart backoff, in epochs; doubles on every consecutive
    /// restart of the same replica.
    pub backoff_epochs: u64,
    /// Incremental persistence file: replayed at startup (crash-restart),
    /// then appended to on every store drain.  `None` = in-memory only.
    pub store_path: Option<PathBuf>,
    /// Test seam: overrides how replica runners are built.  `None` (the
    /// default) builds them through
    /// [`selfheal_fleet::FleetEngine::replica_runner_with`].
    pub runner_factory: Option<RunnerFactory>,
}

impl Default for DaemonConfig {
    /// A fast-ticking default: the tiny service under a constant bidding
    /// workload, hybrid nearest-neighbor healing over one locked store that
    /// drains every update (so persistence lags reality by at most one
    /// in-flight record).
    fn default() -> Self {
        DaemonConfig {
            service: ServiceConfig::tiny(),
            policy: PolicyChoice::Hybrid(SynopsisKind::NearestNeighbor),
            learner: LearnerChoice::Locked { batch: 1 },
            workload: WorkloadChoice::synthetic(
                WorkloadMix::bidding(),
                ArrivalProcess::Constant { rate: 40.0 },
            ),
            default_faults: FaultChoice::mix_for(
                ServiceProfile::Online,
                DEFAULT_MIX_RATE,
                &ServiceConfig::tiny(),
            ),
            base_seed: 42,
            slice: 32,
            series_capacity: 256,
            max_restarts: 5,
            backoff_epochs: 2,
            store_path: None,
            runner_factory: None,
        }
    }
}

impl fmt::Debug for DaemonConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DaemonConfig")
            .field("policy", &self.policy.label())
            .field("learner", &self.learner.label())
            .field("workload", &self.workload.label())
            .field("default_faults", &self.default_faults.label())
            .field("base_seed", &self.base_seed)
            .field("slice", &self.slice)
            .field("max_restarts", &self.max_restarts)
            .field("backoff_epochs", &self.backoff_epochs)
            .field("store_path", &self.store_path)
            .field(
                "runner_factory",
                &self.runner_factory.as_ref().map(|_| ".."),
            )
            .finish_non_exhaustive()
    }
}

impl DaemonConfig {
    /// Parses a fault-profile word into the [`FaultChoice`] it names:
    /// `none` (quiet), `default` ([`DaemonConfig::default_faults`]), or
    /// `<service>[:<rate>]` where `<service>` is a
    /// [`ServiceProfile`] name (`online`, `content`, `readmostly`) and
    /// `<rate>` defaults to [`DEFAULT_MIX_RATE`].  Used by `ADD`,
    /// `RECONFIGURE <id> fault_profile=...`, and the daemon binary's
    /// `--fault-mix` flag.
    pub fn fault_profile(&self, text: &str) -> Result<FaultChoice, String> {
        match text.to_ascii_lowercase().as_str() {
            "none" => Ok(FaultChoice::default()),
            "default" => Ok(self.default_faults.clone()),
            other => {
                let (name, rate) = match other.split_once(':') {
                    Some((name, rate)) => (
                        name,
                        rate.parse::<f64>()
                            .map_err(|_| format!("bad fault rate {rate:?}"))?,
                    ),
                    None => (other, DEFAULT_MIX_RATE),
                };
                let profile = ServiceProfile::ALL
                    .into_iter()
                    .find(|p| p.name().eq_ignore_ascii_case(name))
                    .ok_or_else(|| {
                        format!(
                            "unknown fault profile {name:?} \
                             (try online, content, readmostly, none, default)"
                        )
                    })?;
                Ok(FaultChoice::mix_for(profile, rate, &self.service))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_profiles_parse_by_name_rate_and_keyword() {
        let config = DaemonConfig::default();
        assert_eq!(config.fault_profile("none").unwrap().label(), "none");
        assert_eq!(
            config.fault_profile("default").unwrap().label(),
            config.default_faults.label()
        );
        let mix = config.fault_profile("readmostly:0.1").unwrap();
        assert_eq!(mix.label(), "mix_readmostly_0.1");
        assert!(config.fault_profile("bogus").is_err());
        assert!(config.fault_profile("online:fast").is_err());
    }
}
