//! The control plane's line-oriented text protocol.
//!
//! One request is one line of whitespace-separated words; one reply is zero
//! or more payload lines followed by a terminator line — `OK` on success,
//! `ERR <message>` on failure.  The framing is deliberately primitive
//! (std-only, no serialization dependency) so `nc -U`, shell scripts, and
//! [`send_command`] all speak it equally well.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A parsed control-plane request.
///
/// Commands are applied by the daemon at epoch barriers only — between two
/// barriers every replica advances exactly as a batch run would, so the
/// determinism invariants of the tick-sliced scheduler hold for the ticks
/// between control events.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `STATUS` — one-screen daemon summary (epoch, replica states, store
    /// statistics, per-replica error/restart lines).
    Status,
    /// `REPLICAS` — one line per supervised replica.
    Replicas,
    /// `ADD <profile>` — add a replica under a fault profile
    /// (`none`, `default`, or `<service>[:<rate>]`, e.g. `online:0.05`).
    /// The new replica's healer warm-starts from the shared store.
    Add(String),
    /// `REMOVE <id>` — stop and retire one replica.  Ids are never reused.
    Remove(usize),
    /// `RECONFIGURE <id> <key>=<value>` — live-update one replica's fault
    /// or workload stream (keys: `fault_rate`, `fault_profile`,
    /// `workload_rate`), or toggle the fleet-wide adversary
    /// (`adversary=on`/`off`; the id names which replica's reply channel
    /// acknowledges, the engine itself targets the whole fleet).
    Reconfigure {
        /// The replica to reconfigure.
        id: usize,
        /// Which knob to turn.
        key: String,
        /// The new value, parsed per key.
        value: String,
    },
    /// `QUERY FIXES [<signature>]` — with a comma-separated symptom vector,
    /// ask the shared store for its best fix; without one, dump per-fix
    /// success/failure statistics.
    QueryFixes(Option<Vec<f64>>),
    /// `EPISODES OPEN` — which replicas are currently inside a failure
    /// episode.
    EpisodesOpen,
    /// `SNAPSHOT <path>` — save the shared store's full experience to a
    /// JSON-lines snapshot file.
    Snapshot(PathBuf),
    /// `DRAIN` — stop injecting faults fleet-wide and keep ticking until
    /// every open episode closes, then pause.
    Drain,
    /// `SHUTDOWN` — flush the store, stop every replica, exit cleanly.
    Shutdown,
}

/// Parses one request line.  Command words are case-insensitive; arguments
/// are taken verbatim.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let words: Vec<&str> = line.split_whitespace().collect();
    let head = words
        .first()
        .map(|w| w.to_ascii_uppercase())
        .ok_or_else(|| "empty command".to_string())?;
    match head.as_str() {
        "STATUS" => expect_args(&words, 0).map(|_| Command::Status),
        "REPLICAS" => expect_args(&words, 0).map(|_| Command::Replicas),
        "ADD" => expect_args(&words, 1).map(|args| Command::Add(args[0].to_string())),
        "REMOVE" => {
            let args = expect_args(&words, 1)?;
            Ok(Command::Remove(parse_id(args[0])?))
        }
        "RECONFIGURE" => {
            let args = expect_args(&words, 2)?;
            let id = parse_id(args[0])?;
            let (key, value) = args[1]
                .split_once('=')
                .ok_or_else(|| format!("expected <key>=<value>, got {:?}", args[1]))?;
            if key.is_empty() || value.is_empty() {
                return Err(format!("expected <key>=<value>, got {:?}", args[1]));
            }
            Ok(Command::Reconfigure {
                id,
                key: key.to_string(),
                value: value.to_string(),
            })
        }
        "QUERY" => match words.get(1).map(|w| w.to_ascii_uppercase()).as_deref() {
            Some("FIXES") => match words.len() {
                2 => Ok(Command::QueryFixes(None)),
                3 => Ok(Command::QueryFixes(Some(parse_signature(words[2])?))),
                _ => Err("usage: QUERY FIXES [<v1,v2,...>]".to_string()),
            },
            _ => Err("unknown query; try QUERY FIXES".to_string()),
        },
        "EPISODES" => match words.get(1).map(|w| w.to_ascii_uppercase()).as_deref() {
            Some("OPEN") if words.len() == 2 => Ok(Command::EpisodesOpen),
            _ => Err("usage: EPISODES OPEN".to_string()),
        },
        "SNAPSHOT" => {
            let args = expect_args(&words, 1)?;
            Ok(Command::Snapshot(PathBuf::from(args[0])))
        }
        "DRAIN" => expect_args(&words, 0).map(|_| Command::Drain),
        "SHUTDOWN" => expect_args(&words, 0).map(|_| Command::Shutdown),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn expect_args<'a>(words: &'a [&'a str], count: usize) -> Result<&'a [&'a str], String> {
    let args = &words[1..];
    if args.len() == count {
        Ok(args)
    } else {
        Err(format!(
            "{} takes {count} argument(s), got {}",
            words[0].to_ascii_uppercase(),
            args.len()
        ))
    }
}

fn parse_id(word: &str) -> Result<usize, String> {
    word.parse::<usize>()
        .map_err(|_| format!("expected a replica id, got {word:?}"))
}

fn parse_signature(word: &str) -> Result<Vec<f64>, String> {
    let values: Result<Vec<f64>, _> = word.split(',').map(str::parse::<f64>).collect();
    values.map_err(|_| format!("expected a comma-separated symptom vector, got {word:?}"))
}

/// Renders a success reply: the payload lines, then the `OK` terminator.
pub fn reply_ok(lines: &[String]) -> String {
    let mut out = String::new();
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("OK\n");
    out
}

/// Renders a failure reply (`ERR <message>`, newlines flattened so the
/// terminator stays one line).
pub fn reply_err(message: &str) -> String {
    format!("ERR {}\n", message.replace('\n', " "))
}

/// Whether a full reply ends in the success terminator.
pub fn is_ok_reply(reply: &str) -> bool {
    reply.lines().last().is_some_and(|line| line == "OK")
}

/// Whether a line is a reply terminator (`OK` or `ERR ...`).
pub fn is_terminator(line: &str) -> bool {
    line == "OK" || line == "ERR" || line.starts_with("ERR ")
}

/// Sends one command line over the daemon's Unix socket and reads the full
/// reply (payload + terminator) — the client half of the protocol, used by
/// `selfheal-ctl` and the integration tests.
///
/// `timeout` bounds each read; commands are applied at the daemon's next
/// epoch barrier, so replies normally arrive within one epoch.
pub fn send_command(socket: &Path, command: &str, timeout: Duration) -> io::Result<String> {
    let stream = UnixStream::connect(socket)?;
    stream.set_read_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(command.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut reply = String::new();
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        let done = is_terminator(&line);
        reply.push_str(&line);
        reply.push('\n');
        if done {
            break;
        }
    }
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command_form() {
        assert_eq!(parse_command("status"), Ok(Command::Status));
        assert_eq!(parse_command("REPLICAS"), Ok(Command::Replicas));
        assert_eq!(
            parse_command("ADD online:0.05"),
            Ok(Command::Add("online:0.05".to_string()))
        );
        assert_eq!(parse_command("REMOVE 3"), Ok(Command::Remove(3)));
        assert_eq!(
            parse_command("RECONFIGURE 1 fault_rate=0.1"),
            Ok(Command::Reconfigure {
                id: 1,
                key: "fault_rate".to_string(),
                value: "0.1".to_string(),
            })
        );
        assert_eq!(parse_command("QUERY FIXES"), Ok(Command::QueryFixes(None)));
        assert_eq!(
            parse_command("query fixes 1.5,0,-2"),
            Ok(Command::QueryFixes(Some(vec![1.5, 0.0, -2.0])))
        );
        assert_eq!(parse_command("EPISODES OPEN"), Ok(Command::EpisodesOpen));
        assert_eq!(
            parse_command("SNAPSHOT /tmp/x.jsonl"),
            Ok(Command::Snapshot(PathBuf::from("/tmp/x.jsonl")))
        );
        assert_eq!(parse_command("DRAIN"), Ok(Command::Drain));
        assert_eq!(parse_command("SHUTDOWN"), Ok(Command::Shutdown));
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_command("").is_err());
        assert!(parse_command("FROB").is_err());
        assert!(parse_command("REMOVE abc").is_err());
        assert!(parse_command("RECONFIGURE 1 fault_rate").is_err());
        assert!(parse_command("QUERY FIXES 1.0,x").is_err());
        assert!(parse_command("STATUS now").is_err());
    }

    #[test]
    fn reply_framing_round_trips() {
        let ok = reply_ok(&["a=1".to_string(), "b=2".to_string()]);
        assert_eq!(ok, "a=1\nb=2\nOK\n");
        assert!(is_ok_reply(&ok));
        let err = reply_err("bad\nthing");
        assert_eq!(err, "ERR bad thing\n");
        assert!(!is_ok_reply(&err));
        assert!(is_terminator("OK"));
        assert!(is_terminator("ERR nope"));
        assert!(!is_terminator("fix=reboot"));
    }
}
