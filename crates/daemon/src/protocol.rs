//! The control plane's line-oriented text protocol.
//!
//! One request is one line of whitespace-separated words; one reply is zero
//! or more payload lines followed by a terminator line — `OK` on success,
//! `ERR <message>` on failure.  The framing is deliberately primitive
//! (std-only, no serialization dependency) so `nc -U`, shell scripts, and
//! [`send_command`] all speak it equally well.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A parsed control-plane request.
///
/// Commands are applied by the daemon at epoch barriers only — between two
/// barriers every replica advances exactly as a batch run would, so the
/// determinism invariants of the tick-sliced scheduler hold for the ticks
/// between control events.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `STATUS` — one-screen daemon summary (epoch, replica states, store
    /// statistics, per-replica error/restart lines).
    Status,
    /// `REPLICAS` — one line per supervised replica.
    Replicas,
    /// `ADD <profile>` — add a replica under a fault profile
    /// (`none`, `default`, or `<service>[:<rate>]`, e.g. `online:0.05`).
    /// The new replica's healer warm-starts from the shared store.
    Add(String),
    /// `REMOVE <id>` — stop and retire one replica.  Ids are never reused.
    Remove(usize),
    /// `RECONFIGURE <id> <key>=<value>` — live-update one replica's fault
    /// or workload stream (keys: `fault_rate`, `fault_profile`,
    /// `workload_rate`), or toggle the fleet-wide adversary
    /// (`adversary=on`/`off`; the id names which replica's reply channel
    /// acknowledges, the engine itself targets the whole fleet).
    Reconfigure {
        /// The replica to reconfigure.
        id: usize,
        /// Which knob to turn.
        key: String,
        /// The new value, parsed per key.
        value: String,
    },
    /// `QUERY FIXES [<signature>]` — with a comma-separated symptom vector,
    /// ask the shared store for its best fix; without one, dump per-fix
    /// success/failure statistics.
    QueryFixes(Option<Vec<f64>>),
    /// `EPISODES OPEN` — which replicas are currently inside a failure
    /// episode.
    EpisodesOpen,
    /// `SNAPSHOT <path>` — save the shared store's full experience to a
    /// JSON-lines snapshot file.
    Snapshot(PathBuf),
    /// `DRAIN` — stop injecting faults fleet-wide and keep ticking until
    /// every open episode closes, then pause.
    Drain,
    /// `METRICS` — one tenant-tagged [`FleetHealth`] JSON line, the same
    /// record the metrics file receives (the gateway's streaming endpoint
    /// polls this).
    ///
    /// [`FleetHealth`]: selfheal_telemetry::FleetHealth
    Metrics,
    /// `TENANT CREATE <name> [pool]` — create a named fleet with its own
    /// `SynopsisStore` namespace and snapshot log.  With the trailing
    /// `pool` word the tenant opts into the cross-tenant shared pool:
    /// its healers' drained updates are mirrored into a pooled store that
    /// every opted-in tenant may fall back to.
    TenantCreate {
        /// The tenant's name (`[a-z0-9_-]`, at most 32 bytes).
        name: String,
        /// Whether the tenant joins the cross-tenant shared pool.
        shared_pool: bool,
    },
    /// `TENANT DROP <name>` — stop the tenant's replicas and delete its
    /// snapshot log.  The `default` tenant cannot be dropped.
    TenantDrop(String),
    /// `TENANT LIST` — one line per tenant.
    TenantList,
    /// `@<tenant> <command>` — scope a per-fleet command to a named
    /// tenant.  Unscoped per-fleet commands address the `default` tenant;
    /// global commands (`SHUTDOWN`, `TENANT ...`) cannot be scoped.
    Scoped {
        /// The tenant the inner command addresses.
        tenant: String,
        /// The per-fleet command to apply.
        inner: Box<Command>,
    },
    /// `SHUTDOWN` — flush every tenant's store, stop every replica, exit
    /// cleanly.
    Shutdown,
}

impl Command {
    /// Whether the command addresses the whole daemon rather than one
    /// tenant's fleet (global commands reject `@<tenant>` scoping).
    pub fn is_global(&self) -> bool {
        matches!(
            self,
            Command::Shutdown
                | Command::TenantCreate { .. }
                | Command::TenantDrop(_)
                | Command::TenantList
                | Command::Scoped { .. }
        )
    }
}

/// Parses one request line.  Command words are case-insensitive; arguments
/// are taken verbatim.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let words: Vec<&str> = line.split_whitespace().collect();
    if let Some(tenant) = words.first().and_then(|w| w.strip_prefix('@')) {
        if tenant.is_empty() {
            return Err("expected @<tenant> <command>".to_string());
        }
        let inner = parse_command(&words[1..].join(" "))?;
        if matches!(inner, Command::Scoped { .. }) {
            return Err("nested tenant scopes are not allowed".to_string());
        }
        if inner.is_global() {
            return Err(format!(
                "{} is a daemon-wide command and cannot be tenant-scoped",
                words[1].to_ascii_uppercase()
            ));
        }
        return Ok(Command::Scoped {
            tenant: tenant.to_string(),
            inner: Box::new(inner),
        });
    }
    let head = words
        .first()
        .map(|w| w.to_ascii_uppercase())
        .ok_or_else(|| "empty command".to_string())?;
    match head.as_str() {
        "STATUS" => expect_args(&words, 0).map(|_| Command::Status),
        "REPLICAS" => expect_args(&words, 0).map(|_| Command::Replicas),
        "ADD" => expect_args(&words, 1).map(|args| Command::Add(args[0].to_string())),
        "REMOVE" => {
            let args = expect_args(&words, 1)?;
            Ok(Command::Remove(parse_id(args[0])?))
        }
        "RECONFIGURE" => {
            let args = expect_args(&words, 2)?;
            let id = parse_id(args[0])?;
            let (key, value) = args[1]
                .split_once('=')
                .ok_or_else(|| format!("expected <key>=<value>, got {:?}", args[1]))?;
            if key.is_empty() || value.is_empty() {
                return Err(format!("expected <key>=<value>, got {:?}", args[1]));
            }
            Ok(Command::Reconfigure {
                id,
                key: key.to_string(),
                value: value.to_string(),
            })
        }
        "QUERY" => match words.get(1).map(|w| w.to_ascii_uppercase()).as_deref() {
            Some("FIXES") => match words.len() {
                2 => Ok(Command::QueryFixes(None)),
                3 => Ok(Command::QueryFixes(Some(parse_signature(words[2])?))),
                _ => Err("usage: QUERY FIXES [<v1,v2,...>]".to_string()),
            },
            _ => Err("unknown query; try QUERY FIXES".to_string()),
        },
        "EPISODES" => match words.get(1).map(|w| w.to_ascii_uppercase()).as_deref() {
            Some("OPEN") if words.len() == 2 => Ok(Command::EpisodesOpen),
            _ => Err("usage: EPISODES OPEN".to_string()),
        },
        "SNAPSHOT" => {
            let args = expect_args(&words, 1)?;
            Ok(Command::Snapshot(PathBuf::from(args[0])))
        }
        "DRAIN" => expect_args(&words, 0).map(|_| Command::Drain),
        "METRICS" => expect_args(&words, 0).map(|_| Command::Metrics),
        "TENANT" => match words.get(1).map(|w| w.to_ascii_uppercase()).as_deref() {
            Some("CREATE") => match &words[2..] {
                [name] => Ok(Command::TenantCreate {
                    name: name.to_string(),
                    shared_pool: false,
                }),
                [name, pool] if pool.eq_ignore_ascii_case("pool") => Ok(Command::TenantCreate {
                    name: name.to_string(),
                    shared_pool: true,
                }),
                _ => Err("usage: TENANT CREATE <name> [pool]".to_string()),
            },
            Some("DROP") if words.len() == 3 => Ok(Command::TenantDrop(words[2].to_string())),
            Some("LIST") if words.len() == 2 => Ok(Command::TenantList),
            _ => Err(
                "usage: TENANT CREATE <name> [pool] | TENANT DROP <name> | TENANT LIST".to_string(),
            ),
        },
        "SHUTDOWN" => expect_args(&words, 0).map(|_| Command::Shutdown),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Renders a command back into its request line — the exact inverse of
/// [`parse_command`] (round-trip tested), used by the HTTP gateway so the
/// two command surfaces share one encoding.
///
/// Arguments that the line framing cannot carry (whitespace in snapshot
/// paths or profile names) would not round-trip; the daemon never produces
/// such values and the gateway's router rejects them.
pub fn render_command(command: &Command) -> String {
    match command {
        Command::Status => "STATUS".to_string(),
        Command::Replicas => "REPLICAS".to_string(),
        Command::Add(profile) => format!("ADD {profile}"),
        Command::Remove(id) => format!("REMOVE {id}"),
        Command::Reconfigure { id, key, value } => format!("RECONFIGURE {id} {key}={value}"),
        Command::QueryFixes(None) => "QUERY FIXES".to_string(),
        Command::QueryFixes(Some(signature)) => {
            let joined: Vec<String> = signature.iter().map(|v| v.to_string()).collect();
            format!("QUERY FIXES {}", joined.join(","))
        }
        Command::EpisodesOpen => "EPISODES OPEN".to_string(),
        Command::Snapshot(path) => format!("SNAPSHOT {}", path.display()),
        Command::Drain => "DRAIN".to_string(),
        Command::Metrics => "METRICS".to_string(),
        Command::TenantCreate { name, shared_pool } => {
            let pool = if *shared_pool { " pool" } else { "" };
            format!("TENANT CREATE {name}{pool}")
        }
        Command::TenantDrop(name) => format!("TENANT DROP {name}"),
        Command::TenantList => "TENANT LIST".to_string(),
        Command::Scoped { tenant, inner } => format!("@{tenant} {}", render_command(inner)),
        Command::Shutdown => "SHUTDOWN".to_string(),
    }
}

fn expect_args<'a>(words: &'a [&'a str], count: usize) -> Result<&'a [&'a str], String> {
    let args = &words[1..];
    if args.len() == count {
        Ok(args)
    } else {
        Err(format!(
            "{} takes {count} argument(s), got {}",
            words[0].to_ascii_uppercase(),
            args.len()
        ))
    }
}

fn parse_id(word: &str) -> Result<usize, String> {
    word.parse::<usize>()
        .map_err(|_| format!("expected a replica id, got {word:?}"))
}

fn parse_signature(word: &str) -> Result<Vec<f64>, String> {
    let values: Result<Vec<f64>, _> = word.split(',').map(str::parse::<f64>).collect();
    values.map_err(|_| format!("expected a comma-separated symptom vector, got {word:?}"))
}

/// Renders a success reply: the payload lines, then the `OK` terminator.
pub fn reply_ok(lines: &[String]) -> String {
    let mut out = String::new();
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("OK\n");
    out
}

/// Renders a failure reply (`ERR <message>`, newlines flattened so the
/// terminator stays one line).
pub fn reply_err(message: &str) -> String {
    format!("ERR {}\n", message.replace('\n', " "))
}

/// Whether a full reply ends in the success terminator.
pub fn is_ok_reply(reply: &str) -> bool {
    reply.lines().last().is_some_and(|line| line == "OK")
}

/// Whether a line is a reply terminator (`OK` or `ERR ...`).
pub fn is_terminator(line: &str) -> bool {
    line == "OK" || line == "ERR" || line.starts_with("ERR ")
}

/// Sends one command line over the daemon's Unix socket and reads the full
/// reply (payload + terminator) — the client half of the protocol, used by
/// `selfheal-ctl` and the integration tests.
///
/// `timeout` bounds each read; commands are applied at the daemon's next
/// epoch barrier, so replies normally arrive within one epoch.
pub fn send_command(socket: &Path, command: &str, timeout: Duration) -> io::Result<String> {
    let stream = UnixStream::connect(socket)?;
    stream.set_read_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(command.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut reply = String::new();
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        let done = is_terminator(&line);
        reply.push_str(&line);
        reply.push('\n');
        if done {
            break;
        }
    }
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command_form() {
        assert_eq!(parse_command("status"), Ok(Command::Status));
        assert_eq!(parse_command("REPLICAS"), Ok(Command::Replicas));
        assert_eq!(
            parse_command("ADD online:0.05"),
            Ok(Command::Add("online:0.05".to_string()))
        );
        assert_eq!(parse_command("REMOVE 3"), Ok(Command::Remove(3)));
        assert_eq!(
            parse_command("RECONFIGURE 1 fault_rate=0.1"),
            Ok(Command::Reconfigure {
                id: 1,
                key: "fault_rate".to_string(),
                value: "0.1".to_string(),
            })
        );
        assert_eq!(parse_command("QUERY FIXES"), Ok(Command::QueryFixes(None)));
        assert_eq!(
            parse_command("query fixes 1.5,0,-2"),
            Ok(Command::QueryFixes(Some(vec![1.5, 0.0, -2.0])))
        );
        assert_eq!(parse_command("EPISODES OPEN"), Ok(Command::EpisodesOpen));
        assert_eq!(
            parse_command("SNAPSHOT /tmp/x.jsonl"),
            Ok(Command::Snapshot(PathBuf::from("/tmp/x.jsonl")))
        );
        assert_eq!(parse_command("DRAIN"), Ok(Command::Drain));
        assert_eq!(parse_command("METRICS"), Ok(Command::Metrics));
        assert_eq!(
            parse_command("tenant create scout pool"),
            Ok(Command::TenantCreate {
                name: "scout".to_string(),
                shared_pool: true,
            })
        );
        assert_eq!(
            parse_command("TENANT CREATE loner"),
            Ok(Command::TenantCreate {
                name: "loner".to_string(),
                shared_pool: false,
            })
        );
        assert_eq!(
            parse_command("TENANT DROP scout"),
            Ok(Command::TenantDrop("scout".to_string()))
        );
        assert_eq!(parse_command("TENANT LIST"), Ok(Command::TenantList));
        assert_eq!(
            parse_command("@scout status"),
            Ok(Command::Scoped {
                tenant: "scout".to_string(),
                inner: Box::new(Command::Status),
            })
        );
        assert_eq!(
            parse_command("@scout QUERY FIXES 1.5,0"),
            Ok(Command::Scoped {
                tenant: "scout".to_string(),
                inner: Box::new(Command::QueryFixes(Some(vec![1.5, 0.0]))),
            })
        );
        assert_eq!(parse_command("SHUTDOWN"), Ok(Command::Shutdown));
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_command("").is_err());
        assert!(parse_command("FROB").is_err());
        assert!(parse_command("REMOVE abc").is_err());
        assert!(parse_command("RECONFIGURE 1 fault_rate").is_err());
        assert!(parse_command("QUERY FIXES 1.0,x").is_err());
        assert!(parse_command("STATUS now").is_err());
        assert!(parse_command("TENANT CREATE a b").is_err());
        assert!(parse_command("TENANT").is_err());
        assert!(parse_command("@").is_err());
        assert!(parse_command("@scout").is_err());
        assert!(parse_command("@scout SHUTDOWN").is_err());
        assert!(parse_command("@scout TENANT LIST").is_err());
        assert!(parse_command("@a @b STATUS").is_err());
    }

    #[test]
    fn render_parse_round_trips_every_variant() {
        let commands = vec![
            Command::Status,
            Command::Replicas,
            Command::Add("online:0.05".to_string()),
            Command::Remove(3),
            Command::Reconfigure {
                id: 1,
                key: "fault_rate".to_string(),
                value: "0.1".to_string(),
            },
            Command::QueryFixes(None),
            Command::QueryFixes(Some(vec![1.5, 0.0, -2.0])),
            Command::EpisodesOpen,
            Command::Snapshot(PathBuf::from("/tmp/x.jsonl")),
            Command::Drain,
            Command::Metrics,
            Command::TenantCreate {
                name: "scout".to_string(),
                shared_pool: true,
            },
            Command::TenantCreate {
                name: "loner".to_string(),
                shared_pool: false,
            },
            Command::TenantDrop("scout".to_string()),
            Command::TenantList,
            Command::Scoped {
                tenant: "scout".to_string(),
                inner: Box::new(Command::QueryFixes(Some(vec![0.5, 2.0]))),
            },
            Command::Shutdown,
        ];
        for command in commands {
            let line = render_command(&command);
            assert_eq!(
                parse_command(&line),
                Ok(command.clone()),
                "round-trip failed for {line:?}"
            );
        }
    }

    #[test]
    fn reply_framing_round_trips() {
        let ok = reply_ok(&["a=1".to_string(), "b=2".to_string()]);
        assert_eq!(ok, "a=1\nb=2\nOK\n");
        assert!(is_ok_reply(&ok));
        let err = reply_err("bad\nthing");
        assert_eq!(err, "ERR bad thing\n");
        assert!(!is_ok_reply(&err));
        assert!(is_terminator("OK"));
        assert!(is_terminator("ERR nope"));
        assert!(!is_terminator("fix=reboot"));
    }
}
