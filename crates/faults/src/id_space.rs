//! The single manifest of fault/surge id namespaces.
//!
//! Every generated-id namespace in the workspace — stochastic mix faults,
//! catalog sweeps, seasonal mixes, operator actions, fleet storms, workload
//! surges, and reactive strikes — claims one power-of-two *lane*: ids in
//! `[1 << bit, 1 << (bit + 1))`.  Scripted [`crate::InjectionPlan`]s number
//! their faults from zero, far below every lane, so arbitrary compositions
//! of sources never collide.
//!
//! This module is the one place a lane may be declared.  The owning crates
//! derive their `*_ID_BASE` constants from the `*_ID_BIT` entries here
//! (`selfheal-lint`'s `id-space` rule rejects any `*_ID_BASE` constant whose
//! initializer does not reference `id_space`), and [`ID_LANES`] enumerates
//! the registry so both the lint's static check and the runtime test below
//! can prove pairwise disjointness.  To add a namespace: declare its bit
//! here, add it to [`ID_LANES`], and define the owning crate's base constant
//! via [`lane_base`].

/// Lane bit for workload-surge request ids
/// (`selfheal_sim::scenario::ScenarioRunner::SURGE_ID_BASE`).
pub const SURGE_ID_BIT: u32 = 40;

/// Lane bit for [`crate::SeasonalSource`] faults.
pub const SEASON_ID_BIT: u32 = 43;

/// Lane bit for [`crate::MixSource`] faults.
pub const MIX_ID_BIT: u32 = 44;

/// Lane bit for [`crate::CatalogSweep`] faults.
pub const SWEEP_ID_BIT: u32 = 45;

/// Lane bit for reactive-engine strikes
/// (`selfheal_fleet::reactive::REACTIVE_FAULT_ID_BASE`).
pub const REACTIVE_ID_BIT: u32 = 46;

/// Lane bit for [`crate::OperatorSource`] faults.
pub const OPERATOR_ID_BIT: u32 = 47;

/// Lane bit for fleet-storm faults ([`crate::STORM_FAULT_ID_BASE`]).
pub const STORM_ID_BIT: u32 = 48;

/// Every registered lane, by name.  The order is ascending by bit; the
/// disjointness test below and `selfheal-lint`'s static mirror both walk
/// this table, so an unregistered lane fails loudly in two places.
pub const ID_LANES: &[(&str, u32)] = &[
    ("SURGE", SURGE_ID_BIT),
    ("SEASON", SEASON_ID_BIT),
    ("MIX", MIX_ID_BIT),
    ("SWEEP", SWEEP_ID_BIT),
    ("REACTIVE", REACTIVE_ID_BIT),
    ("OPERATOR", OPERATOR_ID_BIT),
    ("STORM", STORM_ID_BIT),
];

/// First id of the lane rooted at `bit`.
pub const fn lane_base(bit: u32) -> u64 {
    1u64 << bit
}

/// One past the last id of the lane rooted at `bit`: lanes span
/// `[lane_base(bit), lane_end(bit))`.
pub const fn lane_end(bit: u32) -> u64 {
    1u64 << (bit + 1)
}

/// Lowest bit any lane may claim: scripted plans and per-tick request ids
/// stay comfortably below `2^32`, so every lane at or above bit 32 is
/// disjoint from them by construction.
pub const MIN_LANE_BIT: u32 = 32;

/// Highest bit a lane may claim: `lane_end` must not overflow `u64`.
pub const MAX_LANE_BIT: u32 = 62;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_registers_seven_lanes_with_unique_names() {
        assert_eq!(ID_LANES.len(), 7);
        let mut names: Vec<&str> = ID_LANES.iter().map(|(name, _)| *name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ID_LANES.len(), "duplicate lane name");
    }

    #[test]
    fn lanes_are_pairwise_disjoint_intervals() {
        // Checked as intervals rather than by "bits are distinct" so the
        // test stays valid even if a lane ever stops being a power of two.
        for (i, (name_a, bit_a)) in ID_LANES.iter().enumerate() {
            for (name_b, bit_b) in &ID_LANES[i + 1..] {
                let disjoint =
                    lane_end(*bit_a) <= lane_base(*bit_b) || lane_end(*bit_b) <= lane_base(*bit_a);
                assert!(
                    disjoint,
                    "lanes {name_a} (bit {bit_a}) and {name_b} (bit {bit_b}) overlap"
                );
            }
        }
    }

    #[test]
    fn lanes_stay_inside_the_legal_bit_range() {
        for (name, bit) in ID_LANES {
            assert!(
                (MIN_LANE_BIT..=MAX_LANE_BIT).contains(bit),
                "lane {name} claims bit {bit} outside [{MIN_LANE_BIT}, {MAX_LANE_BIT}]"
            );
        }
    }

    #[test]
    fn owning_crate_constants_match_the_manifest() {
        assert_eq!(crate::MIX_FAULT_ID_BASE, lane_base(MIX_ID_BIT));
        assert_eq!(crate::SWEEP_FAULT_ID_BASE, lane_base(SWEEP_ID_BIT));
        assert_eq!(crate::SEASON_FAULT_ID_BASE, lane_base(SEASON_ID_BIT));
        assert_eq!(crate::OPERATOR_FAULT_ID_BASE, lane_base(OPERATOR_ID_BIT));
        assert_eq!(crate::STORM_FAULT_ID_BASE, lane_base(STORM_ID_BIT));
    }
}
