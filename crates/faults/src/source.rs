//! The pluggable fault abstraction: [`FaultSource`].
//!
//! Section 4.2 of the paper calls for *active* preproduction data
//! collection: subject the service to "various failures" at controlled
//! types and rates while recording observed behaviour.  The scenario
//! runner used to consume faults only through a static, hand-scripted
//! [`InjectionPlan`]; this module makes the fault schedule a first-class
//! pluggable layer, mirroring the workload side's `TraceSource`:
//!
//! * [`ScriptedSource`] — wraps an [`InjectionPlan`] verbatim (the Table 1
//!   fault/fix-matrix experiments).  Byte-identical to the pre-trait
//!   runner.
//! * [`MixSource`] — seeded stochastic generation from a
//!   [`ServiceProfile`]'s [`CauseMix`](crate::CauseMix) at a configurable
//!   rate: the paper's Figure 1/2 failure demographics as a *generator*.
//! * [`CatalogSweep`] — one fault of every [`FixCatalog`] failure class at
//!   a fixed cadence, for FixSym training-coverage runs.
//! * [`ComposedSource`] — merges any set of sources tick-wise.
//!
//! Implementations must be deterministic: after [`FaultSource::reset`], the
//! same sequence of `due_at` calls must yield the same faults, so scenario
//! fingerprints stay reproducible and a fleet replica's fault stream is a
//! pure function of its seed — never of worker count or tick-slice width.
//!
//! # Implementing the trait
//!
//! ```
//! use selfheal_faults::source::FaultSource;
//! use selfheal_faults::{FaultId, FaultKind, FaultSpec, FaultTarget};
//!
//! /// The same buffer-contention fault every `period` ticks — the
//! /// simplest useful recurring source.
//! #[derive(Debug, Clone)]
//! struct Metronome {
//!     period: u64,
//!     strikes: u64,
//! }
//!
//! impl FaultSource for Metronome {
//!     fn due_at(&mut self, tick: u64) -> Vec<FaultSpec> {
//!         if tick > 0 && tick % self.period == 0 && tick / self.period <= self.strikes {
//!             vec![FaultSpec::new(
//!                 FaultId(tick),
//!                 FaultKind::BufferContention,
//!                 FaultTarget::DatabaseTier,
//!                 0.9,
//!             )]
//!         } else {
//!             Vec::new()
//!         }
//!     }
//!
//!     fn reset(&mut self) {}
//!
//!     fn clone_box(&self) -> Box<dyn FaultSource> {
//!         Box::new(self.clone())
//!     }
//!
//!     fn horizon(&self) -> u64 {
//!         self.period * self.strikes
//!     }
//! }
//!
//! let mut source = Metronome { period: 100, strikes: 3 };
//! assert_eq!(source.due_at(100).len(), 1);
//! assert!(source.due_at(101).is_empty());
//! assert_eq!(source.horizon(), 300);
//! ```

use crate::catalog::FixCatalog;
use crate::fault::{FaultId, FaultKind, FaultSpec};
use crate::id_space;
use crate::injection::{default_target, random_target, InjectionPlan};
use crate::mix::ServiceProfile;
use crate::operator::OperatorModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Id namespace for [`MixSource`]-generated faults, disjoint from scripted
/// plans (ids from 0), surge requests, and storm faults — see
/// [`crate::id_space`] for the lane manifest.
pub const MIX_FAULT_ID_BASE: u64 = id_space::lane_base(id_space::MIX_ID_BIT);

/// Id namespace for [`CatalogSweep`]-generated faults.
pub const SWEEP_FAULT_ID_BASE: u64 = id_space::lane_base(id_space::SWEEP_ID_BIT);

/// Id namespace for [`SeasonalSource`]-generated faults.
pub const SEASON_FAULT_ID_BASE: u64 = id_space::lane_base(id_space::SEASON_ID_BIT);

/// Id namespace for [`OperatorSource`]-generated faults.
pub const OPERATOR_FAULT_ID_BASE: u64 = id_space::lane_base(id_space::OPERATOR_ID_BIT);

/// A source of scheduled fault activations.
///
/// The scenario runner asks `due_at` once per tick, with `tick` advancing
/// monotonically from zero, and injects every returned spec at that tick.
/// Sources must be deterministic (a pure function of their configuration
/// and seed) and must return faults with ids unique within the run — each
/// shipped implementation draws from its own id namespace so sources
/// compose without collisions.
pub trait FaultSource: fmt::Debug + Send {
    /// The faults that become active exactly at `tick`.
    fn due_at(&mut self, tick: u64) -> Vec<FaultSpec>;

    /// Rewinds the source to its initial state so the fault stream replays
    /// from the first tick.
    fn reset(&mut self);

    /// Clones the source behind a box, preserving its current state.
    fn clone_box(&self) -> Box<dyn FaultSource>;

    /// The last tick at which this source can still schedule work
    /// (`u64::MAX` for unbounded sources) — quiesce detection runs a
    /// scenario past the horizon plus a healing tail, so keep it tight.
    fn horizon(&self) -> u64;
}

impl Clone for Box<dyn FaultSource> {
    fn clone(&self) -> Self {
        self.as_ref().clone_box()
    }
}

impl FaultSource for Box<dyn FaultSource> {
    fn due_at(&mut self, tick: u64) -> Vec<FaultSpec> {
        self.as_mut().due_at(tick)
    }

    fn reset(&mut self) {
        self.as_mut().reset();
    }

    fn clone_box(&self) -> Box<dyn FaultSource> {
        self.as_ref().clone_box()
    }

    fn horizon(&self) -> u64 {
        self.as_ref().horizon()
    }
}

// ---------------------------------------------------------------------------
// ScriptedSource
// ---------------------------------------------------------------------------

/// A hand-scripted fault schedule: an [`InjectionPlan`] behind the
/// [`FaultSource`] API.
///
/// Emits exactly the plan's faults at exactly the plan's ticks, so a
/// scripted run is byte-identical (same `ScenarioOutcome::fingerprint()`)
/// to the pre-trait runner that held the plan directly — `tests/faults.rs`
/// pins this equivalence.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptedSource {
    plan: InjectionPlan,
}

impl ScriptedSource {
    /// Wraps a plan.
    pub fn new(plan: InjectionPlan) -> Self {
        ScriptedSource { plan }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &InjectionPlan {
        &self.plan
    }
}

impl From<InjectionPlan> for ScriptedSource {
    fn from(plan: InjectionPlan) -> Self {
        ScriptedSource::new(plan)
    }
}

impl FaultSource for ScriptedSource {
    fn due_at(&mut self, tick: u64) -> Vec<FaultSpec> {
        self.plan.due_at(tick).into_iter().cloned().collect()
    }

    fn reset(&mut self) {}

    fn clone_box(&self) -> Box<dyn FaultSource> {
        Box::new(self.clone())
    }

    fn horizon(&self) -> u64 {
        self.plan.horizon()
    }
}

// ---------------------------------------------------------------------------
// MixSource
// ---------------------------------------------------------------------------

/// Salt distinguishing [`MixSource`]'s per-tick stream from other
/// consumers of [`mix64`].
const MIX_TICK_SALT: u64 = 0x6A09_E667_F3BC_C909;

/// SplitMix64-style finalizer decorrelating a per-index decision stream
/// from a base seed (the same construction `sim::seeds::split_seed` uses);
/// `salt` separates independent consumers of the same `(seed, index)`
/// space.
pub(crate) fn mix64(seed: u64, index: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(salt);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stochastic demographic fault generation: at every tick inside the active
/// window, a fault fires with probability `rate`, its kind drawn from the
/// service profile's cause mix (Figure 1 demographics → concrete Table 1
/// manifestations), its target drawn from the service topology, its
/// severity in `[0.4, 1.0]`.
///
/// Every tick's decision is derived from `(seed, tick)` alone, so the
/// stream is a pure function of the configuration: call order, worker
/// count, and tick-slice width cannot perturb it, and
/// [`reset`](FaultSource::reset) is free.  Fleet engines hand each replica a seed
/// split via `sim::seeds::split_seed(base, replica, SeedStream::Faults)`,
/// decorrelating sibling replicas' fault streams.
///
/// Fault ids are `id_base + tick` (at most one fault fires per tick), in
/// the [`MIX_FAULT_ID_BASE`] namespace by default.
#[derive(Debug, Clone, PartialEq)]
pub struct MixSource {
    profile: ServiceProfile,
    rate: f64,
    seed: u64,
    active_ticks: u64,
    ejb_count: usize,
    table_count: usize,
    index_count: usize,
    id_base: u64,
}

impl MixSource {
    /// Creates a mix source firing with probability `rate` per tick
    /// (clamped to `[0, 1]`), unbounded in time, over the workspace's
    /// default tiny topology (4 EJBs, 3 tables, 1 index).
    pub fn new(profile: ServiceProfile, rate: f64, seed: u64) -> Self {
        MixSource {
            profile,
            rate: rate.clamp(0.0, 1.0),
            seed,
            active_ticks: u64::MAX,
            ejb_count: 4,
            table_count: 3,
            index_count: 1,
            id_base: MIX_FAULT_ID_BASE,
        }
    }

    /// Restricts generation to ticks `[0, active_ticks)` so a finite run
    /// gets a quiet tail in which the healer can drain every open episode
    /// (and [`horizon`](FaultSource::horizon) becomes finite).
    pub fn active_for(mut self, active_ticks: u64) -> Self {
        self.active_ticks = active_ticks;
        self
    }

    /// Sets the service topology random targets are drawn from.
    pub fn with_topology(
        mut self,
        ejb_count: usize,
        table_count: usize,
        index_count: usize,
    ) -> Self {
        self.ejb_count = ejb_count.max(1);
        self.table_count = table_count.max(1);
        self.index_count = index_count.max(1);
        self
    }

    /// Overrides the fault-id namespace (composition helpers give each
    /// child source a distinct base so merged streams never collide).
    pub fn with_id_base(mut self, id_base: u64) -> Self {
        self.id_base = id_base;
        self
    }

    /// The profile whose demographics drive generation.
    pub fn profile(&self) -> ServiceProfile {
        self.profile
    }

    /// The per-tick firing probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl FaultSource for MixSource {
    fn due_at(&mut self, tick: u64) -> Vec<FaultSpec> {
        if tick >= self.active_ticks || self.rate <= 0.0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(mix64(self.seed, tick, MIX_TICK_SALT));
        if rng.gen_range(0.0..1.0) >= self.rate {
            return Vec::new();
        }
        let (cause, kind) = self.profile.sample_kind(&mut rng);
        let target = random_target(
            kind,
            self.ejb_count,
            self.table_count,
            self.index_count,
            &mut rng,
        );
        let severity = rng.gen_range(0.4..=1.0);
        vec![FaultSpec::new(FaultId(self.id_base + tick), kind, target, severity).with_cause(cause)]
    }

    fn reset(&mut self) {}

    fn clone_box(&self) -> Box<dyn FaultSource> {
        Box::new(self.clone())
    }

    fn horizon(&self) -> u64 {
        if self.active_ticks == u64::MAX {
            u64::MAX
        } else {
            self.active_ticks.saturating_sub(1)
        }
    }
}

// ---------------------------------------------------------------------------
// CatalogSweep
// ---------------------------------------------------------------------------

/// One fault of every [`FixCatalog`] failure class, injected at a fixed
/// cadence: class `i` (in [`FaultKind::ALL`] order, the catalog's own
/// ordering) fires at `start_tick + i * spacing_ticks`, targeted at the
/// class's natural component.
///
/// This is the FixSym *training-coverage* run: after one sweep, a learning
/// healer has met — and, given enough spacing, healed — every failure
/// signature the catalog describes.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogSweep {
    start_tick: u64,
    spacing_ticks: u64,
    severity: f64,
    id_base: u64,
    /// Cached at construction: rebuilding the catalog per tick would
    /// allocate every entry just to index one kind.
    kinds: Vec<FaultKind>,
}

impl CatalogSweep {
    /// Creates a sweep starting at `start_tick` with `spacing_ticks`
    /// between classes (minimum 1) and the scripted experiments' default
    /// severity of 0.9.
    pub fn new(start_tick: u64, spacing_ticks: u64) -> Self {
        CatalogSweep {
            start_tick,
            spacing_ticks: spacing_ticks.max(1),
            severity: 0.9,
            id_base: SWEEP_FAULT_ID_BASE,
            kinds: Self::kinds(),
        }
    }

    /// Overrides the severity of every injected fault.
    pub fn with_severity(mut self, severity: f64) -> Self {
        self.severity = severity.clamp(0.0, 1.0);
        self
    }

    /// Overrides the fault-id namespace.
    pub fn with_id_base(mut self, id_base: u64) -> Self {
        self.id_base = id_base;
        self
    }

    /// The failure classes swept, in injection order.
    pub fn kinds() -> Vec<FaultKind> {
        FixCatalog::standard().entries().map(|e| e.fault).collect()
    }
}

impl FaultSource for CatalogSweep {
    fn due_at(&mut self, tick: u64) -> Vec<FaultSpec> {
        if tick < self.start_tick || !(tick - self.start_tick).is_multiple_of(self.spacing_ticks) {
            return Vec::new();
        }
        let index = ((tick - self.start_tick) / self.spacing_ticks) as usize;
        let Some(kind) = self.kinds.get(index).copied() else {
            return Vec::new();
        };
        vec![FaultSpec::new(
            FaultId(self.id_base + index as u64),
            kind,
            default_target(kind, 0),
            self.severity,
        )]
    }

    fn reset(&mut self) {}

    fn clone_box(&self) -> Box<dyn FaultSource> {
        Box::new(self.clone())
    }

    fn horizon(&self) -> u64 {
        self.start_tick + (self.kinds.len() as u64 - 1) * self.spacing_ticks
    }
}

// ---------------------------------------------------------------------------
// ComposedSource
// ---------------------------------------------------------------------------

/// Merges any number of fault sources tick-wise: a tick's faults are the
/// concatenation of every child's faults at that tick, in child order.
///
/// Callers are responsible for keeping the children's fault-id namespaces
/// disjoint (use [`MixSource::with_id_base`] / [`CatalogSweep::with_id_base`]
/// when composing two sources of the same type; the declarative
/// `FaultChoice::Composed` recipe does this automatically).
#[derive(Debug, Clone, Default)]
pub struct ComposedSource {
    sources: Vec<Box<dyn FaultSource>>,
}

impl ComposedSource {
    /// An empty composition (a source that never fires).
    pub fn new() -> Self {
        ComposedSource::default()
    }

    /// Adds one child source (builder style).
    pub fn with(mut self, source: impl FaultSource + 'static) -> Self {
        self.sources.push(Box::new(source));
        self
    }

    /// Adds an already-boxed child source (builder style).
    pub fn with_boxed(mut self, source: Box<dyn FaultSource>) -> Self {
        self.sources.push(source);
        self
    }

    /// Number of child sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Returns `true` when the composition has no children.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

impl FaultSource for ComposedSource {
    fn due_at(&mut self, tick: u64) -> Vec<FaultSpec> {
        self.sources
            .iter_mut()
            .flat_map(|source| source.due_at(tick))
            .collect()
    }

    fn reset(&mut self) {
        for source in &mut self.sources {
            source.reset();
        }
    }

    fn clone_box(&self) -> Box<dyn FaultSource> {
        Box::new(self.clone())
    }

    fn horizon(&self) -> u64 {
        self.sources
            .iter()
            .map(|source| source.horizon())
            .max()
            .unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// SeasonalSource
// ---------------------------------------------------------------------------

/// Salt keying a [`SeasonalSource`]'s season-to-rate schedule draw.
const SEASON_SCHEDULE_SALT: u64 = 0xBB67_AE85_84CA_A73B;

/// Fault *seasons*: a [`MixSource`] whose per-tick rate is not constant but
/// a seeded, time-varying schedule.  Time is cut into fixed-length seasons
/// (`season_ticks` each); season `s` draws its rate from the configured
/// `rates` menu via a hash of `(schedule_seed, s)`, so calm and stormy
/// stretches alternate deterministically.
///
/// The schedule seed is deliberately separate from the per-tick draw seed:
/// a fleet hands every replica the *same* `schedule_seed` (seasons are
/// weather — fleet-wide phenomena) while per-replica draw seeds keep the
/// concrete faults decorrelated across replicas inside a shared season.
///
/// Like [`MixSource`], every decision derives from `(seed, tick)` alone —
/// call order, worker count, and slice width cannot perturb the stream, and
/// [`reset`](FaultSource::reset) is free.  Fault ids live in the
/// [`SEASON_FAULT_ID_BASE`] namespace by default.
#[derive(Debug, Clone, PartialEq)]
pub struct SeasonalSource {
    inner: MixSource,
    rates: Vec<f64>,
    season_ticks: u64,
    schedule_seed: u64,
    active_ticks: u64,
}

impl SeasonalSource {
    /// Creates a seasonal source over `profile` demographics: each season
    /// lasts `season_ticks` (minimum 1) and draws its per-tick rate from
    /// `rates` (empty menus get a single quiet 0.0 season).  `seed` keys
    /// the per-tick fault draws, `schedule_seed` keys the season schedule.
    pub fn new(
        profile: ServiceProfile,
        rates: Vec<f64>,
        season_ticks: u64,
        seed: u64,
        schedule_seed: u64,
    ) -> Self {
        let rates = if rates.is_empty() { vec![0.0] } else { rates };
        SeasonalSource {
            inner: MixSource::new(profile, 0.0, seed).with_id_base(SEASON_FAULT_ID_BASE),
            rates: rates.into_iter().map(|r| r.clamp(0.0, 1.0)).collect(),
            season_ticks: season_ticks.max(1),
            schedule_seed,
            active_ticks: u64::MAX,
        }
    }

    /// Restricts generation to ticks `[0, active_ticks)` so the horizon
    /// becomes finite and quiesce detection can bound the run.
    pub fn active_for(mut self, active_ticks: u64) -> Self {
        self.active_ticks = active_ticks;
        self
    }

    /// Sets the service topology random targets are drawn from.
    pub fn with_topology(
        mut self,
        ejb_count: usize,
        table_count: usize,
        index_count: usize,
    ) -> Self {
        self.inner = self
            .inner
            .with_topology(ejb_count, table_count, index_count);
        self
    }

    /// Overrides the fault-id namespace.
    pub fn with_id_base(mut self, id_base: u64) -> Self {
        self.inner = self.inner.with_id_base(id_base);
        self
    }

    /// The rate in force at `tick`: the schedule's draw for that season.
    pub fn rate_at(&self, tick: u64) -> f64 {
        let season = tick / self.season_ticks;
        let draw = mix64(self.schedule_seed, season, SEASON_SCHEDULE_SALT);
        self.rates[(draw % self.rates.len() as u64) as usize]
    }
}

impl FaultSource for SeasonalSource {
    fn due_at(&mut self, tick: u64) -> Vec<FaultSpec> {
        if tick >= self.active_ticks {
            return Vec::new();
        }
        self.inner.rate = self.rate_at(tick);
        self.inner.due_at(tick)
    }

    fn reset(&mut self) {}

    fn clone_box(&self) -> Box<dyn FaultSource> {
        Box::new(self.clone())
    }

    fn horizon(&self) -> u64 {
        if self.active_ticks == u64::MAX {
            u64::MAX
        } else {
            self.active_ticks.saturating_sub(1)
        }
    }
}

// ---------------------------------------------------------------------------
// OperatorSource
// ---------------------------------------------------------------------------

/// Salt distinguishing [`OperatorSource`]'s per-tick stream.
const OPERATOR_TICK_SALT: u64 = 0x3C6E_F372_FE94_F82B;

/// The [`OperatorModel`] as a live stimulus: at every tick inside the
/// active window, an operator performs a configuration action with
/// probability `action_rate`; the model decides whether that action is
/// botched (its `error_rate`) and, if so, which fault the mistake
/// manifests as.  The effective fault rate is therefore
/// `action_rate * error_rate`.
///
/// Decisions are a pure function of `(seed, tick)` — the same stateless
/// construction as [`MixSource`] — so the stream survives worker-count and
/// slice-width changes untouched.  Fault ids are `id_base + tick` in the
/// [`OPERATOR_FAULT_ID_BASE`] namespace by default.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorSource {
    model: OperatorModel,
    action_rate: f64,
    seed: u64,
    active_ticks: u64,
    id_base: u64,
}

impl OperatorSource {
    /// Creates an operator source performing actions with probability
    /// `action_rate` per tick (clamped to `[0, 1]`) under the standard
    /// [`OperatorModel`], unbounded in time.
    pub fn new(action_rate: f64, seed: u64) -> Self {
        OperatorSource {
            model: OperatorModel::standard(),
            action_rate: action_rate.clamp(0.0, 1.0),
            seed,
            active_ticks: u64::MAX,
            id_base: OPERATOR_FAULT_ID_BASE,
        }
    }

    /// Overrides the operator-behaviour model.
    pub fn with_model(mut self, model: OperatorModel) -> Self {
        self.model = model;
        self
    }

    /// Restricts actions to ticks `[0, active_ticks)` (finite horizon).
    pub fn active_for(mut self, active_ticks: u64) -> Self {
        self.active_ticks = active_ticks;
        self
    }

    /// Overrides the fault-id namespace.
    pub fn with_id_base(mut self, id_base: u64) -> Self {
        self.id_base = id_base;
        self
    }

    /// The model driving botched-action decisions.
    pub fn model(&self) -> &OperatorModel {
        &self.model
    }
}

impl FaultSource for OperatorSource {
    fn due_at(&mut self, tick: u64) -> Vec<FaultSpec> {
        if tick >= self.active_ticks || self.action_rate <= 0.0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(mix64(self.seed, tick, OPERATOR_TICK_SALT));
        if rng.gen_range(0.0..1.0) >= self.action_rate {
            return Vec::new();
        }
        self.model
            .perform_action(self.id_base + tick, &mut rng)
            .into_iter()
            .collect()
    }

    fn reset(&mut self) {}

    fn clone_box(&self) -> Box<dyn FaultSource> {
        Box::new(self.clone())
    }

    fn horizon(&self) -> u64 {
        if self.active_ticks == u64::MAX {
            u64::MAX
        } else {
            self.active_ticks.saturating_sub(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FailureCause, FaultTarget};
    use crate::injection::InjectionPlanBuilder;

    fn scripted() -> ScriptedSource {
        ScriptedSource::new(
            InjectionPlanBuilder::new(4, 3, 1)
                .inject(
                    30,
                    FaultKind::BufferContention,
                    FaultTarget::DatabaseTier,
                    0.9,
                )
                .inject(
                    10,
                    FaultKind::DeadlockedThreads,
                    FaultTarget::Ejb { index: 1 },
                    0.7,
                )
                .build(),
        )
    }

    #[test]
    fn scripted_source_mirrors_its_plan() {
        let mut source = scripted();
        assert_eq!(source.horizon(), 30);
        assert!(source.due_at(0).is_empty());
        assert_eq!(source.due_at(10)[0].kind, FaultKind::DeadlockedThreads);
        assert_eq!(source.due_at(30)[0].kind, FaultKind::BufferContention);
        source.reset();
        assert_eq!(source.due_at(10).len(), 1, "reset replays the schedule");
    }

    #[test]
    fn mix_source_is_deterministic_and_call_order_independent() {
        let mut a = MixSource::new(ServiceProfile::Online, 0.5, 7);
        let mut b = MixSource::new(ServiceProfile::Online, 0.5, 7);
        // b asks for ticks out of order and repeatedly; every answer must
        // still match a's monotonic sweep.
        let backwards: Vec<_> = (0..50).rev().flat_map(|t| b.due_at(t)).collect();
        let forwards: Vec<_> = (0..50).flat_map(|t| a.due_at(t)).collect();
        let mut backwards_sorted = backwards;
        backwards_sorted.sort_by_key(|f| f.id);
        assert_eq!(forwards, backwards_sorted);
        assert!(!forwards.is_empty(), "rate 0.5 over 50 ticks must fire");
    }

    #[test]
    fn mix_source_respects_its_window_and_topology() {
        let mut source = MixSource::new(ServiceProfile::Content, 1.0, 3)
            .active_for(20)
            .with_topology(2, 2, 1);
        assert_eq!(source.horizon(), 19);
        for tick in 0..200 {
            for fault in source.due_at(tick) {
                assert!(tick < 20, "no faults past the window");
                assert!(fault.id.0 >= MIX_FAULT_ID_BASE);
                match fault.target {
                    FaultTarget::Ejb { index } => assert!(index < 2),
                    FaultTarget::Table { index } => assert!(index < 2),
                    _ => {}
                }
                assert!((0.4..=1.0).contains(&fault.severity));
            }
        }
        assert!(source.due_at(20).is_empty());
    }

    #[test]
    fn mix_source_seeds_decorrelate() {
        let stream = |seed: u64| -> Vec<FaultSpec> {
            let mut source = MixSource::new(ServiceProfile::Online, 0.8, seed);
            (0..100).flat_map(|t| source.due_at(t)).collect()
        };
        assert_ne!(stream(1), stream(2), "different seeds, different streams");
        assert_eq!(stream(1), stream(1), "same seed, same stream");
    }

    #[test]
    fn mix_source_records_causes_for_demographics() {
        let mut source = MixSource::new(ServiceProfile::Online, 1.0, 11);
        let faults: Vec<_> = (0..2000).flat_map(|t| source.due_at(t)).collect();
        assert_eq!(faults.len(), 2000, "rate 1.0 fires every tick");
        let operator = faults
            .iter()
            .filter(|f| f.cause == FailureCause::Operator)
            .count();
        let expected = ServiceProfile::Online
            .cause_mix()
            .probability(FailureCause::Operator);
        let freq = operator as f64 / faults.len() as f64;
        assert!(
            (freq - expected).abs() < 0.05,
            "operator frequency {freq} vs configured {expected}"
        );
    }

    #[test]
    fn catalog_sweep_covers_every_failure_class_once() {
        let mut sweep = CatalogSweep::new(50, 10);
        let kinds = CatalogSweep::kinds();
        assert_eq!(kinds.len(), FaultKind::ALL.len());
        assert_eq!(sweep.horizon(), 50 + (kinds.len() as u64 - 1) * 10);
        let mut seen = Vec::new();
        for tick in 0..2000 {
            for fault in sweep.due_at(tick) {
                assert_eq!(tick, 50 + seen.len() as u64 * 10);
                assert_eq!(fault.severity, 0.9);
                assert!(fault.id.0 >= SWEEP_FAULT_ID_BASE);
                seen.push(fault.kind);
            }
        }
        assert_eq!(seen, kinds, "one fault per class, in catalog order");
    }

    #[test]
    fn composed_sources_merge_tick_wise() {
        let mut composed = ComposedSource::new()
            .with(scripted())
            .with(CatalogSweep::new(10, 500));
        let at_10 = composed.due_at(10);
        assert_eq!(at_10.len(), 2, "scripted fault + first sweep class");
        let mut ids: Vec<u64> = at_10.iter().map(|f| f.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 2, "disjoint id namespaces");
        assert_eq!(
            composed.horizon(),
            CatalogSweep::new(10, 500).horizon(),
            "horizon is the max over children"
        );
        composed.reset();
        assert_eq!(composed.due_at(10).len(), 2);
    }

    #[test]
    fn empty_composition_never_fires() {
        let mut empty = ComposedSource::new();
        assert!(empty.is_empty());
        assert_eq!(empty.horizon(), 0);
        assert!(empty.due_at(0).is_empty());
    }

    #[test]
    fn seasonal_source_varies_rate_by_season_deterministically() {
        let source = SeasonalSource::new(ServiceProfile::Online, vec![0.0, 0.6], 50, 7, 99);
        // The schedule is a pure function of (schedule_seed, season): the
        // rate is constant within a season and both menu entries appear
        // across enough seasons.
        let mut seen = Vec::new();
        for season in 0..32u64 {
            let rate = source.rate_at(season * 50);
            assert_eq!(rate, source.rate_at(season * 50 + 49));
            seen.push(rate);
        }
        assert!(seen.contains(&0.0), "some seasons must be calm");
        assert!(seen.contains(&0.6), "some seasons must be stormy");

        // Calm seasons produce no faults; the stream is replayable.
        let mut a = SeasonalSource::new(ServiceProfile::Online, vec![0.0, 0.6], 50, 7, 99);
        let mut b = a.clone();
        for tick in 0..1600 {
            let faults = a.due_at(tick);
            assert_eq!(faults, b.due_at(tick));
            if a.rate_at(tick) == 0.0 {
                assert!(faults.is_empty(), "calm season fired at tick {tick}");
            }
            for fault in &faults {
                assert!(fault.id.0 >= SEASON_FAULT_ID_BASE);
            }
        }
    }

    #[test]
    fn seasonal_source_respects_window_and_shares_schedule_across_seeds() {
        let mut source =
            SeasonalSource::new(ServiceProfile::Content, vec![1.0], 10, 3, 5).active_for(30);
        assert_eq!(source.horizon(), 29);
        assert!(!source.due_at(7).is_empty(), "rate 1.0 fires inside window");
        assert!(source.due_at(30).is_empty());
        assert!(source.due_at(500).is_empty());
        // Same schedule seed, different draw seeds: identical season rates,
        // different concrete faults.
        let a = SeasonalSource::new(ServiceProfile::Online, vec![0.1, 0.9], 25, 1, 42);
        let b = SeasonalSource::new(ServiceProfile::Online, vec![0.1, 0.9], 25, 2, 42);
        for season in 0..16u64 {
            assert_eq!(a.rate_at(season * 25), b.rate_at(season * 25));
        }
    }

    #[test]
    fn operator_source_fires_operator_faults_at_the_composed_rate() {
        let model = OperatorModel {
            error_rate: 0.5,
            ..OperatorModel::standard()
        };
        let mut source = OperatorSource::new(0.5, 11).with_model(model);
        let faults: Vec<_> = (0..20_000).flat_map(|t| source.due_at(t)).collect();
        let rate = faults.len() as f64 / 20_000.0;
        assert!(
            (rate - 0.25).abs() < 0.02,
            "action 0.5 * error 0.5 should fire ~0.25/tick, got {rate}"
        );
        for fault in &faults {
            assert_eq!(fault.cause, FailureCause::Operator);
            assert!(fault.id.0 >= OPERATOR_FAULT_ID_BASE);
            assert!(fault.severity >= 0.5);
        }
    }

    #[test]
    fn operator_source_is_deterministic_and_windowed() {
        let mut a = OperatorSource::new(0.8, 13).active_for(100);
        let mut b = a.clone();
        assert_eq!(a.horizon(), 99);
        let forwards: Vec<_> = (0..200).flat_map(|t| a.due_at(t)).collect();
        let backwards: Vec<_> = (0..200).rev().flat_map(|t| b.due_at(t)).collect();
        let mut backwards_sorted = backwards;
        backwards_sorted.sort_by_key(|f| f.id);
        assert_eq!(forwards, backwards_sorted);
        assert!(!forwards.is_empty(), "dense operators must blunder");
        assert!(forwards
            .iter()
            .all(|f| f.id.0 < OPERATOR_FAULT_ID_BASE + 100));
        assert!(OperatorSource::new(0.0, 13).due_at(5).is_empty());
    }

    #[test]
    fn boxed_sources_delegate_and_clone() {
        let mut source: Box<dyn FaultSource> = Box::new(scripted());
        assert_eq!(source.horizon(), 30);
        let mut clone = source.clone();
        assert_eq!(source.due_at(10), clone.due_at(10));
        clone.reset();
        assert_eq!(clone.horizon(), 30);
    }
}
