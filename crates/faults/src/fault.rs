//! Failure classes, targets, and causes.
//!
//! [`FaultKind`] covers every failure class of Table 1 of the paper plus
//! hardware failures and operator errors (the dominant causes in Figure 1).
//! A concrete injected instance is a [`FaultSpec`]: a kind, a target
//! component, a severity, and the [`FailureCause`] category used for the
//! Figure 1 / Figure 2 demographics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of an injected fault instance within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FaultId(pub u64);

impl fmt::Display for FaultId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault#{}", self.0)
    }
}

/// Failure classes observed in a multitier J2EE-style service.
///
/// The first eight variants are the rows of Table 1; the remaining variants
/// cover the hardware and operator-error causes from the Oppenheimer et al.
/// study summarized in Figure 1, so that the full cause mix can be simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultKind {
    /// Application-server threads deadlocked on each other or on a hung
    /// database call (Table 1 row 1).
    DeadlockedThreads,
    /// Java exceptions not handled correctly by an EJB (Table 1 row 2).
    UnhandledException,
    /// Software aging: leaked memory/connections degrade a tier over time
    /// (Table 1 row 3).
    SoftwareAging,
    /// Suboptimal query plan chosen because optimizer statistics are stale
    /// (Table 1 row 4).
    SuboptimalQueryPlan,
    /// Read/write contention on a hot table block (Table 1 row 5).
    TableBlockContention,
    /// Contention for database buffer memory — one buffer pool is starved
    /// (Table 1 row 6).
    BufferContention,
    /// A whole tier is bottlenecked for capacity (Table 1 row 7).
    BottleneckedTier,
    /// A source-code bug corrupting results or crashing components
    /// (Table 1 row 8).
    SourceCodeBug,
    /// Operator misconfiguration: a wrong configuration value was deployed
    /// (e.g. tiny thread pool, wrong buffer size).
    OperatorMisconfiguration,
    /// Operator procedural error: wrong node restarted, wrong table dropped,
    /// stale schema deployed.
    OperatorProceduralError,
    /// Hardware failure: disk or node failure reduces a tier's capacity.
    HardwareFailure,
    /// Network partition or severe packet loss between tiers.
    NetworkPartition,
}

impl FaultKind {
    /// All fault kinds.
    pub const ALL: [FaultKind; 12] = [
        FaultKind::DeadlockedThreads,
        FaultKind::UnhandledException,
        FaultKind::SoftwareAging,
        FaultKind::SuboptimalQueryPlan,
        FaultKind::TableBlockContention,
        FaultKind::BufferContention,
        FaultKind::BottleneckedTier,
        FaultKind::SourceCodeBug,
        FaultKind::OperatorMisconfiguration,
        FaultKind::OperatorProceduralError,
        FaultKind::HardwareFailure,
        FaultKind::NetworkPartition,
    ];

    /// The fault kinds that appear as rows of Table 1 in the paper.
    pub const TABLE1: [FaultKind; 8] = [
        FaultKind::DeadlockedThreads,
        FaultKind::UnhandledException,
        FaultKind::SoftwareAging,
        FaultKind::SuboptimalQueryPlan,
        FaultKind::TableBlockContention,
        FaultKind::BufferContention,
        FaultKind::BottleneckedTier,
        FaultKind::SourceCodeBug,
    ];

    /// Stable lowercase label used in metric names and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::DeadlockedThreads => "deadlocked_threads",
            FaultKind::UnhandledException => "unhandled_exception",
            FaultKind::SoftwareAging => "software_aging",
            FaultKind::SuboptimalQueryPlan => "suboptimal_query_plan",
            FaultKind::TableBlockContention => "table_block_contention",
            FaultKind::BufferContention => "buffer_contention",
            FaultKind::BottleneckedTier => "bottlenecked_tier",
            FaultKind::SourceCodeBug => "source_code_bug",
            FaultKind::OperatorMisconfiguration => "operator_misconfiguration",
            FaultKind::OperatorProceduralError => "operator_procedural_error",
            FaultKind::HardwareFailure => "hardware_failure",
            FaultKind::NetworkPartition => "network_partition",
        }
    }

    /// The failure-cause category (Figure 1) this kind belongs to.
    pub fn cause(self) -> FailureCause {
        match self {
            FaultKind::OperatorMisconfiguration | FaultKind::OperatorProceduralError => {
                FailureCause::Operator
            }
            FaultKind::HardwareFailure => FailureCause::Hardware,
            FaultKind::NetworkPartition => FailureCause::Network,
            FaultKind::DeadlockedThreads
            | FaultKind::UnhandledException
            | FaultKind::SoftwareAging
            | FaultKind::SuboptimalQueryPlan
            | FaultKind::TableBlockContention
            | FaultKind::BufferContention
            | FaultKind::BottleneckedTier
            | FaultKind::SourceCodeBug => FailureCause::Software,
        }
    }

    /// Whether the effect of this fault grows gradually over time
    /// (degradation) rather than hitting at full severity immediately.
    pub fn is_gradual(self) -> bool {
        matches!(
            self,
            FaultKind::SoftwareAging
                | FaultKind::SuboptimalQueryPlan
                | FaultKind::BottleneckedTier
                | FaultKind::BufferContention
        )
    }

    /// Stable numeric code used as the class label by the learning layer.
    pub fn code(self) -> usize {
        FaultKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("kind in ALL")
    }

    /// Inverse of [`FaultKind::code`].
    pub fn from_code(code: usize) -> Option<FaultKind> {
        FaultKind::ALL.get(code).copied()
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Failure-cause categories used by the Oppenheimer et al. study that the
/// paper's Figures 1 and 2 summarize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FailureCause {
    /// Human operator error (the most prominent source of failures).
    Operator,
    /// Hardware faults.
    Hardware,
    /// Software faults (application, middleware, or database).
    Software,
    /// Network problems.
    Network,
    /// Cause never determined.
    Unknown,
}

impl FailureCause {
    /// All cause categories.
    pub const ALL: [FailureCause; 5] = [
        FailureCause::Operator,
        FailureCause::Hardware,
        FailureCause::Software,
        FailureCause::Network,
        FailureCause::Unknown,
    ];

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            FailureCause::Operator => "operator",
            FailureCause::Hardware => "hardware",
            FailureCause::Software => "software",
            FailureCause::Network => "network",
            FailureCause::Unknown => "unknown",
        }
    }
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The part of the service a fault targets.
///
/// Component indexes refer to the simulator's component tables: EJB index in
/// the application tier, table index in the database tier, and so on.  The
/// healing layer never sees these directly — it only sees symptoms — but the
/// simulator needs them to apply fault effects and to judge whether a
/// targeted fix (e.g. "microreboot EJB 3") hits the faulty component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultTarget {
    /// The web tier as a whole.
    WebTier,
    /// One EJB component in the application tier.
    Ejb {
        /// Index of the EJB in the application tier's component table.
        index: usize,
    },
    /// The application tier as a whole.
    AppTier,
    /// One table (and its blocks) in the database tier.
    Table {
        /// Index of the table in the database schema.
        index: usize,
    },
    /// One index structure in the database tier.
    Index {
        /// Index of the index structure.
        index: usize,
    },
    /// The database tier as a whole (buffer pool, lock manager, ...).
    DatabaseTier,
    /// The whole service (e.g. a network partition between tiers).
    WholeService,
}

impl FaultTarget {
    /// Returns a short human-readable description of the target.
    pub fn describe(&self) -> String {
        match self {
            FaultTarget::WebTier => "web tier".to_string(),
            FaultTarget::Ejb { index } => format!("EJB {index}"),
            FaultTarget::AppTier => "application tier".to_string(),
            FaultTarget::Table { index } => format!("table {index}"),
            FaultTarget::Index { index } => format!("index {index}"),
            FaultTarget::DatabaseTier => "database tier".to_string(),
            FaultTarget::WholeService => "whole service".to_string(),
        }
    }
}

/// A fully specified fault instance to inject.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Unique id of this fault instance.
    pub id: FaultId,
    /// The failure class.
    pub kind: FaultKind,
    /// The targeted component.
    pub target: FaultTarget,
    /// Severity in `(0, 1]`: scales the magnitude of the fault's effect
    /// (e.g. fraction of capacity lost, fraction of requests hitting the
    /// slow path).
    pub severity: f64,
    /// The cause category recorded for demographics (usually
    /// `kind.cause()`, but operator errors can surface as any kind — an
    /// operator misconfiguration may *manifest* as buffer contention).
    pub cause: FailureCause,
}

impl FaultSpec {
    /// Creates a fault spec whose cause is derived from its kind.
    pub fn new(id: FaultId, kind: FaultKind, target: FaultTarget, severity: f64) -> Self {
        FaultSpec {
            id,
            kind,
            target,
            severity: severity.clamp(1e-6, 1.0),
            cause: kind.cause(),
        }
    }

    /// Overrides the recorded cause category.
    pub fn with_cause(mut self, cause: FailureCause) -> Self {
        self.cause = cause;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_has_a_unique_label_and_code() {
        let mut labels: Vec<&str> = FaultKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), FaultKind::ALL.len());
        for (i, kind) in FaultKind::ALL.iter().enumerate() {
            assert_eq!(kind.code(), i);
            assert_eq!(FaultKind::from_code(i), Some(*kind));
        }
        assert_eq!(FaultKind::from_code(999), None);
    }

    #[test]
    fn table1_kinds_are_software_caused() {
        for kind in FaultKind::TABLE1 {
            assert_eq!(kind.cause(), FailureCause::Software, "{kind}");
        }
        assert_eq!(
            FaultKind::OperatorMisconfiguration.cause(),
            FailureCause::Operator
        );
        assert_eq!(FaultKind::HardwareFailure.cause(), FailureCause::Hardware);
        assert_eq!(FaultKind::NetworkPartition.cause(), FailureCause::Network);
    }

    #[test]
    fn gradual_faults_are_the_degradation_classes() {
        assert!(FaultKind::SoftwareAging.is_gradual());
        assert!(FaultKind::BottleneckedTier.is_gradual());
        assert!(!FaultKind::DeadlockedThreads.is_gradual());
        assert!(!FaultKind::SourceCodeBug.is_gradual());
    }

    #[test]
    fn fault_spec_clamps_severity_and_derives_cause() {
        let spec = FaultSpec::new(
            FaultId(1),
            FaultKind::BufferContention,
            FaultTarget::DatabaseTier,
            7.0,
        );
        assert_eq!(spec.severity, 1.0);
        assert_eq!(spec.cause, FailureCause::Software);
        let spec = spec.with_cause(FailureCause::Operator);
        assert_eq!(spec.cause, FailureCause::Operator);
        let tiny = FaultSpec::new(
            FaultId(2),
            FaultKind::SourceCodeBug,
            FaultTarget::AppTier,
            0.0,
        );
        assert!(tiny.severity > 0.0);
    }

    #[test]
    fn target_descriptions_mention_component_index() {
        assert_eq!(FaultTarget::Ejb { index: 3 }.describe(), "EJB 3");
        assert_eq!(FaultTarget::Table { index: 0 }.describe(), "table 0");
        assert!(FaultTarget::WholeService.describe().contains("service"));
    }

    #[test]
    fn display_impls_match_labels() {
        assert_eq!(FaultKind::SoftwareAging.to_string(), "software_aging");
        assert_eq!(FailureCause::Operator.to_string(), "operator");
        assert_eq!(FaultId(7).to_string(), "fault#7");
    }
}
