//! # selfheal-faults
//!
//! Failure and fix catalog for database-centric multitier services,
//! reproducing the failure taxonomy of *Toward Self-Healing Multitier
//! Services* (Cook et al., ICDE 2007).
//!
//! The crate models three things the paper treats as inputs to any
//! self-healing policy:
//!
//! 1. **What can go wrong** — [`FaultKind`] enumerates the failure classes of
//!    Table 1 (deadlocked threads, unhandled Java exceptions, software aging,
//!    suboptimal query plans from stale statistics, table-block contention,
//!    buffer contention, bottlenecked tiers, source-code bugs) plus
//!    hardware faults and the operator-error classes that dominate Figure 1.
//! 2. **What can be done about it** — [`FixKind`] enumerates the candidate
//!    fixes of Table 1 (microreboot an EJB, kill a hung query, reboot at the
//!    appropriate level, update optimizer statistics, repartition a table,
//!    repartition memory across buffers, provision more resources, full
//!    service restart, notify an administrator) together with a cost model
//!    ([`FixCost`]): how long the fix takes and how disruptive it is.
//! 3. **Which fixes actually repair which failures** — [`FixCatalog`] encodes
//!    the ground-truth failure → fix mapping used by the simulator to decide
//!    whether an attempted fix works, and by the benchmarks to score fix
//!    identification accuracy.
//!
//! On top of the catalog, the crate provides the pluggable [`FaultSource`]
//! API ([`source`]): hand-scripted [`injection::InjectionPlan`]s behind
//! [`ScriptedSource`], stochastic demographic generation from a cause mix
//! ([`MixSource`] — the paper's Section 4.2 active stimulation), full
//! catalog coverage sweeps ([`CatalogSweep`]), seeded time-varying fault
//! *seasons* ([`SeasonalSource`]), live flaky-operator stimulation
//! ([`OperatorSource`]), and tick-wise composition
//! ([`ComposedSource`]).  Correlated fault storms hit a deterministic
//! fraction of a fleet at once ([`storm::StormSpec`], uniform or
//! CauseMix-catalog mode); the failure-cause mix model behind Figure 1 is
//! [`mix::CauseMix`], the per-category recovery-time model behind Figure 2
//! is [`recovery_model::RecoveryTimeModel`], and the operator-error model
//! behind [`OperatorSource`] lives in [`operator::OperatorModel`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod fault;
pub mod fix;
pub mod id_space;
pub mod injection;
pub mod mix;
pub mod operator;
pub mod recovery_model;
pub mod source;
pub mod storm;

pub use catalog::{CatalogEntry, FixCatalog};
pub use fault::{FailureCause, FaultId, FaultKind, FaultSpec, FaultTarget};
pub use fix::{FixAction, FixCost, FixId, FixKind, FixOutcome};
pub use injection::{InjectionEvent, InjectionPlan, InjectionPlanBuilder};
pub use mix::{CauseMix, ServiceProfile};
pub use operator::{OperatorAction, OperatorModel};
pub use recovery_model::RecoveryTimeModel;
pub use source::{
    CatalogSweep, ComposedSource, FaultSource, MixSource, OperatorSource, ScriptedSource,
    SeasonalSource, MIX_FAULT_ID_BASE, OPERATOR_FAULT_ID_BASE, SEASON_FAULT_ID_BASE,
    SWEEP_FAULT_ID_BASE,
};
pub use storm::{StormSpec, STORM_FAULT_ID_BASE};
