//! Operator-error model.
//!
//! The paper stresses that "almost always, the root cause is the fallibility
//! of humans" and that operator error is the most prominent failure cause
//! (Figure 1).  This module models the configuration actions an operator
//! takes and how they go wrong, so that operator-induced failures in the
//! simulator have realistic structure: a *mistaken* configuration change is
//! applied at some tick, its symptoms emerge in whatever tier the
//! misconfigured parameter controls, and the fault is repaired either by
//! rolling the change back or by human intervention.

use crate::fault::{FailureCause, FaultId, FaultKind, FaultSpec, FaultTarget};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The configuration surface an operator action touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperatorAction {
    /// Resize the application-server thread pool.
    ResizeThreadPool,
    /// Resize a database buffer pool.
    ResizeBufferPool,
    /// Change the number of replicas / capacity of a tier.
    ResizeTierCapacity,
    /// Deploy a new application build to the app tier.
    DeployApplicationBuild,
    /// Change the database schema or drop/rebuild an index.
    AlterSchema,
    /// Restart a node as part of routine maintenance.
    MaintenanceRestart,
}

impl OperatorAction {
    /// All operator action classes.
    pub const ALL: [OperatorAction; 6] = [
        OperatorAction::ResizeThreadPool,
        OperatorAction::ResizeBufferPool,
        OperatorAction::ResizeTierCapacity,
        OperatorAction::DeployApplicationBuild,
        OperatorAction::AlterSchema,
        OperatorAction::MaintenanceRestart,
    ];

    /// The fault kind that a *botched* instance of this action manifests as,
    /// and the target tier/component class it lands on.
    pub fn failure_manifestation(self) -> (FaultKind, FaultTarget) {
        match self {
            OperatorAction::ResizeThreadPool => {
                (FaultKind::OperatorMisconfiguration, FaultTarget::AppTier)
            }
            OperatorAction::ResizeBufferPool => (
                FaultKind::OperatorMisconfiguration,
                FaultTarget::DatabaseTier,
            ),
            OperatorAction::ResizeTierCapacity => {
                (FaultKind::OperatorMisconfiguration, FaultTarget::WebTier)
            }
            OperatorAction::DeployApplicationBuild => {
                (FaultKind::OperatorProceduralError, FaultTarget::AppTier)
            }
            OperatorAction::AlterSchema => (
                FaultKind::OperatorProceduralError,
                FaultTarget::DatabaseTier,
            ),
            OperatorAction::MaintenanceRestart => (
                FaultKind::OperatorProceduralError,
                FaultTarget::WholeService,
            ),
        }
    }

    /// Human-readable description of the botched action.
    pub fn describe_mistake(self) -> &'static str {
        match self {
            OperatorAction::ResizeThreadPool => "thread pool resized far below the required size",
            OperatorAction::ResizeBufferPool => "buffer pool shrunk, starving the working set",
            OperatorAction::ResizeTierCapacity => "tier scaled down during a traffic surge",
            OperatorAction::DeployApplicationBuild => "wrong or stale application build deployed",
            OperatorAction::AlterSchema => {
                "needed index dropped / schema change applied to wrong table"
            }
            OperatorAction::MaintenanceRestart => "wrong node restarted during maintenance",
        }
    }
}

/// A model of operator behaviour: how often configuration actions happen and
/// how likely each is to be botched.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorModel {
    /// Probability that any given configuration action is a mistake.
    pub error_rate: f64,
    /// Relative frequency of each action class.
    pub action_weights: Vec<(OperatorAction, f64)>,
}

impl OperatorModel {
    /// A model with a 15% per-action error rate (operators make mistakes,
    /// which is why they dominate Figure 1) and uniform action frequencies.
    pub fn standard() -> Self {
        OperatorModel {
            error_rate: 0.15,
            action_weights: OperatorAction::ALL.iter().map(|a| (*a, 1.0)).collect(),
        }
    }

    /// Samples an action class according to the configured weights.
    pub fn sample_action<R: Rng + ?Sized>(&self, rng: &mut R) -> OperatorAction {
        let total: f64 = self.action_weights.iter().map(|(_, w)| w).sum();
        let mut r = rng.gen_range(0.0..total);
        for (action, w) in &self.action_weights {
            if r < *w {
                return *action;
            }
            r -= *w;
        }
        self.action_weights.last().expect("nonempty weights").0
    }

    /// Simulates one operator action; returns a fault when it is botched.
    ///
    /// `next_fault_id` supplies the id for the new fault instance.
    pub fn perform_action<R: Rng + ?Sized>(
        &self,
        next_fault_id: u64,
        rng: &mut R,
    ) -> Option<FaultSpec> {
        let action = self.sample_action(rng);
        if rng.gen_range(0.0..1.0) >= self.error_rate {
            return None;
        }
        let (kind, target) = action.failure_manifestation();
        let severity = rng.gen_range(0.5..=1.0);
        Some(
            FaultSpec::new(FaultId(next_fault_id), kind, target, severity)
                .with_cause(FailureCause::Operator),
        )
    }
}

impl Default for OperatorModel {
    fn default() -> Self {
        OperatorModel::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_action_manifests_an_operator_caused_fault() {
        for action in OperatorAction::ALL {
            let (kind, _) = action.failure_manifestation();
            assert_eq!(kind.cause(), FailureCause::Operator, "{action:?}");
            assert!(!action.describe_mistake().is_empty());
        }
    }

    #[test]
    fn error_rate_controls_fault_frequency() {
        let model = OperatorModel {
            error_rate: 0.5,
            ..OperatorModel::standard()
        };
        let mut rng = StdRng::seed_from_u64(17);
        let n = 10_000;
        let faults = (0..n)
            .filter(|i| model.perform_action(*i as u64, &mut rng).is_some())
            .count();
        let rate = faults as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.03, "observed error rate {rate}");
    }

    #[test]
    fn generated_faults_are_operator_caused() {
        let model = OperatorModel {
            error_rate: 1.0,
            ..OperatorModel::standard()
        };
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..50 {
            let fault = model.perform_action(i, &mut rng).expect("error rate 1.0");
            assert_eq!(fault.cause, FailureCause::Operator);
            assert!(fault.severity >= 0.5);
            assert_eq!(fault.id.0, i);
        }
    }

    #[test]
    fn sample_action_respects_weights() {
        let model = OperatorModel {
            error_rate: 0.0,
            action_weights: vec![(OperatorAction::AlterSchema, 1.0)],
        };
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            assert_eq!(model.sample_action(&mut rng), OperatorAction::AlterSchema);
        }
    }
}
