//! Correlated fault storms: the same failure hitting a deterministic
//! fraction of a fleet at once.
//!
//! The paper studies one service instance at a time, but real outages are
//! often *correlated* — a bad configuration push, a shared dependency
//! failing, a thundering herd — so a fleet-scale reproduction needs a way to
//! say "at tick T, this failure class hits half the fleet".  A [`StormSpec`]
//! is that statement, kept deterministic on purpose: the victim set is a
//! pure function of `(fraction, fleet size)`, so storm runs fingerprint
//! identically at any worker count.
//!
//! The spec only describes the storm; scheduling it against live replicas is
//! the fleet engine's job (its `FleetEvent` machinery resolves a storm into
//! per-replica injections).

use crate::catalog::FixCatalog;
use crate::fault::{FaultId, FaultKind, FaultSpec};
use crate::fix::FixKind;
use crate::id_space;
use crate::injection::default_target;
use crate::mix::ServiceProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Id namespace for storm-injected faults, far above anything an
/// [`crate::InjectionPlanBuilder`] assigns, so storm faults never collide
/// with a replica's scheduled plan — see [`crate::id_space`] for the lane
/// manifest.
pub const STORM_FAULT_ID_BASE: u64 = id_space::lane_base(id_space::STORM_ID_BIT);

/// One correlated fault storm: a failure class (or a whole failure-cause
/// *catalog*), a severity, and the fraction of the fleet it hits.
///
/// Victim selection is deterministic and evenly spread: with `k` victims in
/// a fleet of `n`, replica `r` is hit iff `⌊(r+1)·k/n⌋ > ⌊r·k/n⌋` (the
/// Bresenham spread — exactly `k` victims, no RNG, no clustering at the low
/// indices).
///
/// In the default **uniform** mode every victim receives the same
/// [`StormSpec::kind`] (a bad configuration push: one failure class,
/// fleet-wide).  In **catalog** mode ([`StormSpec::catalog`]) each victim's
/// failure class is drawn from a [`ServiceProfile`]'s
/// [`CauseMix`](crate::CauseMix) — the Figure 1 demographics as a
/// correlated outage, e.g. a shared dependency failing and manifesting
/// differently on every replica.  The draw is a pure function of
/// `(storm, victim index, seed)`, so catalog storms stay deterministic at
/// any worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormSpec {
    /// The failure class every victim receives in uniform mode (in catalog
    /// mode: the fallback class, unused while `mix` is set).
    pub kind: FaultKind,
    /// Severity of each injected fault, clamped to `[0, 1]`.
    pub severity: f64,
    /// Fraction of the fleet hit, clamped to `[0, 1]`.
    pub fraction: f64,
    /// When set, each victim's failure class is drawn from this profile's
    /// cause mix instead of `kind` (catalog mode).
    pub mix: Option<ServiceProfile>,
}

impl StormSpec {
    /// Creates a uniform storm spec (severity and fraction are clamped to
    /// `[0, 1]`): every victim receives the same failure class.
    pub fn new(kind: FaultKind, severity: f64, fraction: f64) -> Self {
        StormSpec {
            kind,
            severity: severity.clamp(0.0, 1.0),
            fraction: fraction.clamp(0.0, 1.0),
            mix: None,
        }
    }

    /// Creates a catalog storm spec: each victim's failure class is drawn
    /// from `profile`'s cause mix (see [`StormSpec::victim_kind`]).
    pub fn catalog(profile: ServiceProfile, severity: f64, fraction: f64) -> Self {
        StormSpec {
            kind: FaultKind::BufferContention,
            severity: severity.clamp(0.0, 1.0),
            fraction: fraction.clamp(0.0, 1.0),
            mix: Some(profile),
        }
    }

    /// Number of victims in a fleet of `fleet` replicas: the rounded
    /// fraction, at least 1 whenever the fraction is positive (a storm that
    /// hits nobody is a no-op, not a storm).
    pub fn victim_count(&self, fleet: usize) -> usize {
        if fleet == 0 || self.fraction <= 0.0 {
            return 0;
        }
        ((self.fraction * fleet as f64).round() as usize).clamp(1, fleet)
    }

    /// Whether replica `replica` of a fleet of `fleet` is a victim.
    pub fn hits(&self, replica: usize, fleet: usize) -> bool {
        if replica >= fleet {
            return false;
        }
        let k = self.victim_count(fleet);
        (replica + 1) * k / fleet > replica * k / fleet
    }

    /// The victim replica indices, in order.
    pub fn victims(&self, fleet: usize) -> Vec<usize> {
        (0..fleet).filter(|&r| self.hits(r, fleet)).collect()
    }

    /// The failure class (and its Figure 1 cause category) victim `victim`
    /// receives: in uniform mode always `(kind.cause(), kind)`; in catalog
    /// mode a deterministic draw from the profile's cause mix keyed by
    /// `(seed, victim)` — two victims of the same storm usually manifest
    /// *different* classes, as the Oppenheimer demographics predict.
    pub fn victim_kind(&self, victim: usize, seed: u64) -> (crate::FailureCause, FaultKind) {
        /// Salt separating the storm victim-kind stream from the mix
        /// source's per-tick stream.
        const STORM_VICTIM_SALT: u64 = 0x570A_11CA_7A10_6000;
        match self.mix {
            None => (self.kind.cause(), self.kind),
            Some(profile) => {
                let mut rng = StdRng::seed_from_u64(crate::source::mix64(
                    seed,
                    victim as u64,
                    STORM_VICTIM_SALT,
                ));
                profile.sample_kind(&mut rng)
            }
        }
    }

    /// The fault one victim receives, targeted at its failure class's
    /// natural component (component 0, as scripted experiments do).  `id`
    /// must be unique per `(storm, victim)`; callers allocate ids in the
    /// [`STORM_FAULT_ID_BASE`] namespace.  `seed` keys the catalog-mode
    /// class draw (ignored in uniform mode).
    pub fn fault_for(&self, id: u64, victim: usize, seed: u64) -> FaultSpec {
        let (cause, kind) = self.victim_kind(victim, seed);
        FaultSpec::new(FaultId(id), kind, default_target(kind, 0), self.severity).with_cause(cause)
    }

    /// Uniform-mode shorthand for [`StormSpec::fault_for`]: the fault every
    /// victim receives when no cause mix is set.
    pub fn fault(&self, id: u64) -> FaultSpec {
        FaultSpec::new(
            FaultId(id),
            self.kind,
            default_target(self.kind, 0),
            self.severity,
        )
    }

    /// The catalog's preferred (cheapest effective) fix for the storm's
    /// uniform-mode failure class — what a fleet that has already learned
    /// the signature should reach for on the first attempt.  (Catalog-mode
    /// victims have per-victim classes; query
    /// [`StormSpec::victim_kind`] and the [`FixCatalog`] directly.)
    pub fn expected_fix(&self) -> FixKind {
        FixCatalog::standard().preferred_fix(self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FailureCause;

    #[test]
    fn victim_count_follows_the_fraction() {
        let storm = StormSpec::new(FaultKind::BufferContention, 0.9, 0.5);
        assert_eq!(storm.victim_count(8), 4);
        assert_eq!(storm.victim_count(3), 2);
        assert_eq!(storm.victim_count(0), 0);
        // A positive fraction always claims at least one victim.
        let sliver = StormSpec::new(FaultKind::BufferContention, 0.9, 0.01);
        assert_eq!(sliver.victim_count(8), 1);
        // Fractions are clamped.
        let flood = StormSpec::new(FaultKind::BufferContention, 0.9, 7.0);
        assert_eq!(flood.victim_count(8), 8);
    }

    #[test]
    fn victims_are_evenly_spread_and_deterministic() {
        let storm = StormSpec::new(FaultKind::BufferContention, 0.9, 0.5);
        assert_eq!(storm.victims(8), vec![1, 3, 5, 7]);
        assert_eq!(storm.victims(8), storm.victims(8));
        let third = StormSpec::new(FaultKind::BufferContention, 0.9, 1.0 / 3.0);
        assert_eq!(third.victims(9).len(), 3);
        let all = StormSpec::new(FaultKind::BufferContention, 0.9, 1.0);
        assert_eq!(all.victims(4), vec![0, 1, 2, 3]);
        let none = StormSpec::new(FaultKind::BufferContention, 0.9, 0.0);
        assert!(none.victims(4).is_empty());
    }

    #[test]
    fn storm_faults_use_the_natural_target_and_the_storm_namespace() {
        let storm = StormSpec::new(FaultKind::BufferContention, 0.8, 0.5);
        let fault = storm.fault(STORM_FAULT_ID_BASE + 3);
        assert_eq!(fault.kind, FaultKind::BufferContention);
        assert_eq!(fault.target, default_target(FaultKind::BufferContention, 0));
        assert_eq!(fault.severity, 0.8);
        assert!(fault.id.0 >= STORM_FAULT_ID_BASE);
    }

    #[test]
    fn expected_fix_comes_from_the_catalog() {
        let storm = StormSpec::new(FaultKind::BufferContention, 0.9, 0.5);
        assert_eq!(storm.expected_fix(), FixKind::RepartitionMemory);
    }

    #[test]
    fn catalog_storms_draw_per_victim_kinds_deterministically() {
        let storm = StormSpec::catalog(ServiceProfile::Online, 0.9, 1.0);
        let kinds: Vec<_> = (0..32).map(|v| storm.victim_kind(v, 42)).collect();
        assert_eq!(
            kinds,
            (0..32)
                .map(|v| storm.victim_kind(v, 42))
                .collect::<Vec<_>>(),
            "pure function of (victim, seed)"
        );
        let distinct: std::collections::HashSet<_> = kinds.iter().map(|(_, k)| *k).collect();
        assert!(
            distinct.len() >= 3,
            "a 32-victim catalog storm manifests several classes: {distinct:?}"
        );
        // A different seed reshuffles the draw.
        assert_ne!(
            kinds,
            (0..32)
                .map(|v| storm.victim_kind(v, 43))
                .collect::<Vec<_>>()
        );
        // The recorded cause matches the drawn category.
        let fault = storm.fault_for(STORM_FAULT_ID_BASE, 5, 42);
        assert_eq!(fault.cause, storm.victim_kind(5, 42).0);
    }

    #[test]
    fn uniform_storms_ignore_the_victim_and_seed() {
        let storm = StormSpec::new(FaultKind::DeadlockedThreads, 0.9, 0.5);
        for victim in 0..8 {
            assert_eq!(
                storm.victim_kind(victim, victim as u64),
                (FailureCause::Software, FaultKind::DeadlockedThreads)
            );
        }
    }
}
