//! Correlated fault storms: the same failure hitting a deterministic
//! fraction of a fleet at once.
//!
//! The paper studies one service instance at a time, but real outages are
//! often *correlated* — a bad configuration push, a shared dependency
//! failing, a thundering herd — so a fleet-scale reproduction needs a way to
//! say "at tick T, this failure class hits half the fleet".  A [`StormSpec`]
//! is that statement, kept deterministic on purpose: the victim set is a
//! pure function of `(fraction, fleet size)`, so storm runs fingerprint
//! identically at any worker count.
//!
//! The spec only describes the storm; scheduling it against live replicas is
//! the fleet engine's job (its `FleetEvent` machinery resolves a storm into
//! per-replica injections).

use crate::catalog::FixCatalog;
use crate::fault::{FaultId, FaultKind, FaultSpec};
use crate::fix::FixKind;
use crate::injection::default_target;

/// Id namespace for storm-injected faults, far above anything an
/// [`crate::InjectionPlanBuilder`] assigns, so storm faults never collide
/// with a replica's scheduled plan.
pub const STORM_FAULT_ID_BASE: u64 = 1 << 48;

/// One correlated fault storm: a failure class, a severity, and the
/// fraction of the fleet it hits.
///
/// Victim selection is deterministic and evenly spread: with `k` victims in
/// a fleet of `n`, replica `r` is hit iff `⌊(r+1)·k/n⌋ > ⌊r·k/n⌋` (the
/// Bresenham spread — exactly `k` victims, no RNG, no clustering at the low
/// indices).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormSpec {
    /// The failure class every victim receives.
    pub kind: FaultKind,
    /// Severity of each injected fault, clamped to `[0, 1]`.
    pub severity: f64,
    /// Fraction of the fleet hit, clamped to `[0, 1]`.
    pub fraction: f64,
}

impl StormSpec {
    /// Creates a storm spec (severity and fraction are clamped to `[0, 1]`).
    pub fn new(kind: FaultKind, severity: f64, fraction: f64) -> Self {
        StormSpec {
            kind,
            severity: severity.clamp(0.0, 1.0),
            fraction: fraction.clamp(0.0, 1.0),
        }
    }

    /// Number of victims in a fleet of `fleet` replicas: the rounded
    /// fraction, at least 1 whenever the fraction is positive (a storm that
    /// hits nobody is a no-op, not a storm).
    pub fn victim_count(&self, fleet: usize) -> usize {
        if fleet == 0 || self.fraction <= 0.0 {
            return 0;
        }
        ((self.fraction * fleet as f64).round() as usize).clamp(1, fleet)
    }

    /// Whether replica `replica` of a fleet of `fleet` is a victim.
    pub fn hits(&self, replica: usize, fleet: usize) -> bool {
        if replica >= fleet {
            return false;
        }
        let k = self.victim_count(fleet);
        (replica + 1) * k / fleet > replica * k / fleet
    }

    /// The victim replica indices, in order.
    pub fn victims(&self, fleet: usize) -> Vec<usize> {
        (0..fleet).filter(|&r| self.hits(r, fleet)).collect()
    }

    /// The fault one victim receives, targeted at the failure class's
    /// natural component (component 0, as scripted experiments do).  `id`
    /// must be unique per `(storm, victim)`; callers allocate ids in the
    /// [`STORM_FAULT_ID_BASE`] namespace.
    pub fn fault(&self, id: u64) -> FaultSpec {
        FaultSpec::new(
            FaultId(id),
            self.kind,
            default_target(self.kind, 0),
            self.severity,
        )
    }

    /// The catalog's preferred (cheapest effective) fix for the storm's
    /// failure class — what a fleet that has already learned the signature
    /// should reach for on the first attempt.
    pub fn expected_fix(&self) -> FixKind {
        FixCatalog::standard().preferred_fix(self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_count_follows_the_fraction() {
        let storm = StormSpec::new(FaultKind::BufferContention, 0.9, 0.5);
        assert_eq!(storm.victim_count(8), 4);
        assert_eq!(storm.victim_count(3), 2);
        assert_eq!(storm.victim_count(0), 0);
        // A positive fraction always claims at least one victim.
        let sliver = StormSpec::new(FaultKind::BufferContention, 0.9, 0.01);
        assert_eq!(sliver.victim_count(8), 1);
        // Fractions are clamped.
        let flood = StormSpec::new(FaultKind::BufferContention, 0.9, 7.0);
        assert_eq!(flood.victim_count(8), 8);
    }

    #[test]
    fn victims_are_evenly_spread_and_deterministic() {
        let storm = StormSpec::new(FaultKind::BufferContention, 0.9, 0.5);
        assert_eq!(storm.victims(8), vec![1, 3, 5, 7]);
        assert_eq!(storm.victims(8), storm.victims(8));
        let third = StormSpec::new(FaultKind::BufferContention, 0.9, 1.0 / 3.0);
        assert_eq!(third.victims(9).len(), 3);
        let all = StormSpec::new(FaultKind::BufferContention, 0.9, 1.0);
        assert_eq!(all.victims(4), vec![0, 1, 2, 3]);
        let none = StormSpec::new(FaultKind::BufferContention, 0.9, 0.0);
        assert!(none.victims(4).is_empty());
    }

    #[test]
    fn storm_faults_use_the_natural_target_and_the_storm_namespace() {
        let storm = StormSpec::new(FaultKind::BufferContention, 0.8, 0.5);
        let fault = storm.fault(STORM_FAULT_ID_BASE + 3);
        assert_eq!(fault.kind, FaultKind::BufferContention);
        assert_eq!(fault.target, default_target(FaultKind::BufferContention, 0));
        assert_eq!(fault.severity, 0.8);
        assert!(fault.id.0 >= STORM_FAULT_ID_BASE);
    }

    #[test]
    fn expected_fix_comes_from_the_catalog() {
        let storm = StormSpec::new(FaultKind::BufferContention, 0.9, 0.5);
        assert_eq!(storm.expected_fix(), FixKind::RepartitionMemory);
    }
}
