//! Failure-cause mixes for the three large services of Figure 1.
//!
//! Figure 1 of the paper summarizes the Oppenheimer et al. study of error
//! logs and failure-tracking databases from three large-scale multitier web
//! services: human operator error is "clearly the most prominent source of
//! failures", followed by software, hardware/network, and failures whose
//! cause was never determined.  [`CauseMix`] is a categorical distribution
//! over [`FailureCause`] and [`ServiceProfile`] provides three calibrated
//! mixes (one per surveyed service archetype) plus the mapping from cause to
//! the concrete [`FaultKind`]s that manifest it.

use crate::fault::{FailureCause, FaultKind};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A categorical distribution over failure causes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CauseMix {
    weights: Vec<(FailureCause, f64)>,
}

impl CauseMix {
    /// Creates a mix from `(cause, weight)` pairs; weights are normalized.
    ///
    /// # Panics
    /// Panics if no pair has positive weight.
    pub fn new(weights: Vec<(FailureCause, f64)>) -> Self {
        let total: f64 = weights.iter().map(|(_, w)| w.max(0.0)).sum();
        assert!(total > 0.0, "cause mix must have positive total weight");
        let weights = weights
            .into_iter()
            .map(|(c, w)| (c, w.max(0.0) / total))
            .collect();
        CauseMix { weights }
    }

    /// The normalized probability of each cause.
    pub fn probabilities(&self) -> &[(FailureCause, f64)] {
        &self.weights
    }

    /// Probability of one cause (0.0 if absent from the mix).
    pub fn probability(&self, cause: FailureCause) -> f64 {
        self.weights
            .iter()
            .find(|(c, _)| *c == cause)
            .map(|(_, w)| *w)
            .unwrap_or(0.0)
    }

    /// Samples a cause according to the mix.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> FailureCause {
        let mut r: f64 = rng.gen_range(0.0..1.0);
        for (cause, w) in &self.weights {
            if r < *w {
                return *cause;
            }
            r -= *w;
        }
        self.weights.last().expect("nonempty mix").0
    }

    /// The cause with the highest probability.
    pub fn dominant(&self) -> FailureCause {
        self.weights
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite weights"))
            .expect("nonempty mix")
            .0
    }
}

/// The three service archetypes whose failure demographics Figure 1 reports.
///
/// The study anonymized the services as "Online", "Content", and "ReadMostly";
/// we keep those names.  The proportions below are calibrated to the
/// qualitative shape of Figure 1 (operator error dominant, then software,
/// with hardware/network and unknown causes making up the rest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceProfile {
    /// An online transactional service (auctions / commerce).
    Online,
    /// A content-serving service.
    Content,
    /// A read-mostly service (search-like).
    ReadMostly,
}

impl ServiceProfile {
    /// All profiles.
    pub const ALL: [ServiceProfile; 3] = [
        ServiceProfile::Online,
        ServiceProfile::Content,
        ServiceProfile::ReadMostly,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ServiceProfile::Online => "Online",
            ServiceProfile::Content => "Content",
            ServiceProfile::ReadMostly => "ReadMostly",
        }
    }

    /// The failure-cause mix of this service archetype.
    pub fn cause_mix(self) -> CauseMix {
        match self {
            ServiceProfile::Online => CauseMix::new(vec![
                (FailureCause::Operator, 0.42),
                (FailureCause::Software, 0.25),
                (FailureCause::Hardware, 0.10),
                (FailureCause::Network, 0.13),
                (FailureCause::Unknown, 0.10),
            ]),
            ServiceProfile::Content => CauseMix::new(vec![
                (FailureCause::Operator, 0.36),
                (FailureCause::Software, 0.30),
                (FailureCause::Hardware, 0.09),
                (FailureCause::Network, 0.15),
                (FailureCause::Unknown, 0.10),
            ]),
            ServiceProfile::ReadMostly => CauseMix::new(vec![
                (FailureCause::Operator, 0.33),
                (FailureCause::Software, 0.20),
                (FailureCause::Hardware, 0.12),
                (FailureCause::Network, 0.25),
                (FailureCause::Unknown, 0.10),
            ]),
        }
    }

    /// The concrete fault kinds through which a cause manifests in this
    /// service, with relative weights.
    ///
    /// Operator errors frequently *manifest* as one of the Table 1 software
    /// symptoms (e.g. a misconfigured buffer shows up as buffer contention),
    /// which is why the healing layer cannot simply read the cause off the
    /// symptoms.
    pub fn kinds_for_cause(self, cause: FailureCause) -> Vec<(FaultKind, f64)> {
        match cause {
            FailureCause::Operator => vec![
                (FaultKind::OperatorMisconfiguration, 0.6),
                (FaultKind::OperatorProceduralError, 0.4),
            ],
            FailureCause::Hardware => vec![(FaultKind::HardwareFailure, 1.0)],
            FailureCause::Network => vec![(FaultKind::NetworkPartition, 1.0)],
            FailureCause::Unknown => vec![
                (FaultKind::SourceCodeBug, 0.5),
                (FaultKind::SoftwareAging, 0.5),
            ],
            FailureCause::Software => match self {
                ServiceProfile::Online => vec![
                    (FaultKind::DeadlockedThreads, 0.18),
                    (FaultKind::UnhandledException, 0.17),
                    (FaultKind::SoftwareAging, 0.10),
                    (FaultKind::SuboptimalQueryPlan, 0.18),
                    (FaultKind::TableBlockContention, 0.12),
                    (FaultKind::BufferContention, 0.10),
                    (FaultKind::BottleneckedTier, 0.10),
                    (FaultKind::SourceCodeBug, 0.05),
                ],
                ServiceProfile::Content => vec![
                    (FaultKind::DeadlockedThreads, 0.10),
                    (FaultKind::UnhandledException, 0.20),
                    (FaultKind::SoftwareAging, 0.20),
                    (FaultKind::SuboptimalQueryPlan, 0.10),
                    (FaultKind::TableBlockContention, 0.05),
                    (FaultKind::BufferContention, 0.10),
                    (FaultKind::BottleneckedTier, 0.15),
                    (FaultKind::SourceCodeBug, 0.10),
                ],
                ServiceProfile::ReadMostly => vec![
                    (FaultKind::DeadlockedThreads, 0.08),
                    (FaultKind::UnhandledException, 0.12),
                    (FaultKind::SoftwareAging, 0.15),
                    (FaultKind::SuboptimalQueryPlan, 0.20),
                    (FaultKind::TableBlockContention, 0.10),
                    (FaultKind::BufferContention, 0.15),
                    (FaultKind::BottleneckedTier, 0.15),
                    (FaultKind::SourceCodeBug, 0.05),
                ],
            },
        }
    }

    /// Samples a concrete fault kind for this service: first a cause from the
    /// cause mix, then a kind that manifests that cause.
    pub fn sample_kind<R: Rng + ?Sized>(self, rng: &mut R) -> (FailureCause, FaultKind) {
        let cause = self.cause_mix().sample(rng);
        let kinds = self.kinds_for_cause(cause);
        let total: f64 = kinds.iter().map(|(_, w)| w).sum();
        let mut r: f64 = rng.gen_range(0.0..total);
        for (kind, w) in &kinds {
            if r < *w {
                return (cause, *kind);
            }
            r -= *w;
        }
        (cause, kinds.last().expect("nonempty kinds").0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mixes_are_normalized_and_operator_dominates() {
        for profile in ServiceProfile::ALL {
            let mix = profile.cause_mix();
            let total: f64 = mix.probabilities().iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-12, "{}", profile.name());
            assert_eq!(mix.dominant(), FailureCause::Operator, "{}", profile.name());
        }
    }

    #[test]
    fn sampled_cause_frequencies_match_probabilities() {
        let mut rng = StdRng::seed_from_u64(7);
        let mix = ServiceProfile::Online.cause_mix();
        let n = 20_000;
        let mut operator = 0usize;
        for _ in 0..n {
            if mix.sample(&mut rng) == FailureCause::Operator {
                operator += 1;
            }
        }
        let freq = operator as f64 / n as f64;
        let expected = mix.probability(FailureCause::Operator);
        assert!(
            (freq - expected).abs() < 0.02,
            "freq {freq} vs expected {expected}"
        );
    }

    #[test]
    fn kinds_for_cause_map_to_matching_cause_category() {
        for profile in ServiceProfile::ALL {
            for cause in [
                FailureCause::Operator,
                FailureCause::Hardware,
                FailureCause::Network,
            ] {
                for (kind, _) in profile.kinds_for_cause(cause) {
                    assert_eq!(kind.cause(), cause, "{kind} should manifest {cause}");
                }
            }
            // Software kinds are all Table 1 classes.
            for (kind, _) in profile.kinds_for_cause(FailureCause::Software) {
                assert!(FaultKind::TABLE1.contains(&kind));
            }
        }
    }

    #[test]
    fn sample_kind_is_deterministic_under_a_seed() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(
                ServiceProfile::Content.sample_kind(&mut a),
                ServiceProfile::Content.sample_kind(&mut b)
            );
        }
    }

    #[test]
    fn probability_of_missing_cause_is_zero() {
        let mix = CauseMix::new(vec![(FailureCause::Operator, 1.0)]);
        assert_eq!(mix.probability(FailureCause::Hardware), 0.0);
        assert_eq!(mix.probability(FailureCause::Operator), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn zero_weight_mix_is_rejected() {
        CauseMix::new(vec![(FailureCause::Operator, 0.0)]);
    }
}
