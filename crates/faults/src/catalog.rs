//! The failure → fix catalog (Table 1 of the paper).
//!
//! The catalog is the simulator's *ground truth*: given an active fault and
//! an attempted [`FixAction`], [`FixCatalog::repairs`] decides whether the
//! fix actually removes the fault.  The healing policies never consult the
//! catalog directly (that would be cheating — they must learn or diagnose it);
//! the benchmark harness consults it to compute fix-identification accuracy.

use crate::fault::{FaultKind, FaultSpec, FaultTarget};
use crate::fix::{FixAction, FixKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One row of the catalog: a failure class and the fixes that repair it, in
/// decreasing order of preference (the first entry is the cheapest fix that
/// reliably repairs the failure, matching the "Candidate fix" column of
/// Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogEntry {
    /// The failure class this entry describes.
    pub fault: FaultKind,
    /// Fixes that repair the failure, preferred first.
    pub fixes: Vec<FixKind>,
    /// Notes carried over from Table 1 (used in documentation output only).
    pub note: String,
}

/// The ground-truth mapping from failure classes to repairing fixes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixCatalog {
    entries: BTreeMap<FaultKind, CatalogEntry>,
}

impl FixCatalog {
    /// Builds the catalog of Table 1, extended with entries for the
    /// hardware/operator/network fault kinds so every [`FaultKind`] has at
    /// least one repairing fix (Section 4.1's "universal set of fixes"
    /// prerequisite).
    pub fn standard() -> Self {
        let rows = vec![
            CatalogEntry {
                fault: FaultKind::DeadlockedThreads,
                fixes: vec![
                    FixKind::MicrorebootEjb,
                    FixKind::KillHungQuery,
                    FixKind::RebootTier,
                    FixKind::FullServiceRestart,
                ],
                note: "Microreboot EJB, kill hung query".to_string(),
            },
            CatalogEntry {
                fault: FaultKind::UnhandledException,
                fixes: vec![
                    FixKind::MicrorebootEjb,
                    FixKind::RebootTier,
                    FixKind::FullServiceRestart,
                ],
                note: "Microreboot EJB".to_string(),
            },
            CatalogEntry {
                fault: FaultKind::SoftwareAging,
                fixes: vec![FixKind::RebootTier, FixKind::FullServiceRestart],
                note: "Reboot at appropriate level to reclaim leaked resources".to_string(),
            },
            CatalogEntry {
                fault: FaultKind::SuboptimalQueryPlan,
                fixes: vec![
                    FixKind::UpdateStatistics,
                    FixKind::RebuildIndex,
                    FixKind::FullServiceRestart,
                ],
                note: "Update statistics for tables in query, re-optimize physical design"
                    .to_string(),
            },
            CatalogEntry {
                fault: FaultKind::TableBlockContention,
                fixes: vec![FixKind::RepartitionTable, FixKind::FullServiceRestart],
                note: "Repartition table to balance accesses across partitions".to_string(),
            },
            CatalogEntry {
                fault: FaultKind::BufferContention,
                fixes: vec![
                    FixKind::RepartitionMemory,
                    FixKind::RebootTier,
                    FixKind::FullServiceRestart,
                ],
                note: "Repartition memory across various buffers".to_string(),
            },
            CatalogEntry {
                fault: FaultKind::BottleneckedTier,
                fixes: vec![FixKind::ProvisionResources, FixKind::FullServiceRestart],
                note: "Provision more resources to tier".to_string(),
            },
            CatalogEntry {
                fault: FaultKind::SourceCodeBug,
                fixes: vec![
                    FixKind::RebootTier,
                    FixKind::NotifyAdministrator,
                    FixKind::FullServiceRestart,
                ],
                note: "Reboot tier/service, notify administrator".to_string(),
            },
            CatalogEntry {
                fault: FaultKind::OperatorMisconfiguration,
                fixes: vec![
                    FixKind::RollbackConfiguration,
                    FixKind::NotifyAdministrator,
                    FixKind::FullServiceRestart,
                ],
                note: "Roll back the offending configuration change".to_string(),
            },
            CatalogEntry {
                fault: FaultKind::OperatorProceduralError,
                fixes: vec![FixKind::NotifyAdministrator, FixKind::FullServiceRestart],
                note: "Human intervention required to undo the procedural mistake".to_string(),
            },
            CatalogEntry {
                fault: FaultKind::HardwareFailure,
                fixes: vec![FixKind::ProvisionResources, FixKind::NotifyAdministrator],
                note: "Fail over / provision replacement capacity".to_string(),
            },
            CatalogEntry {
                fault: FaultKind::NetworkPartition,
                fixes: vec![FixKind::NotifyAdministrator, FixKind::FullServiceRestart],
                note: "Escalate: connectivity must be restored out of band".to_string(),
            },
        ];
        let entries = rows.into_iter().map(|e| (e.fault, e)).collect();
        FixCatalog { entries }
    }

    /// Returns the catalog entry for a failure class.
    pub fn entry(&self, fault: FaultKind) -> &CatalogEntry {
        self.entries
            .get(&fault)
            .expect("catalog covers every fault kind")
    }

    /// All entries, ordered by fault kind.
    pub fn entries(&self) -> impl Iterator<Item = &CatalogEntry> {
        self.entries.values()
    }

    /// The preferred (cheapest effective) fix for a failure class.
    pub fn preferred_fix(&self, fault: FaultKind) -> FixKind {
        self.entry(fault).fixes[0]
    }

    /// Returns `true` if `fix_kind` repairs `fault` regardless of targeting.
    pub fn fix_kind_repairs(&self, fault: FaultKind, fix_kind: FixKind) -> bool {
        self.entry(fault).fixes.contains(&fix_kind)
    }

    /// Decides whether an attempted fix repairs a concrete fault instance.
    ///
    /// Two conditions must hold: the fix *kind* must be in the fault's entry,
    /// and, for targeted fixes, the fix's target must match the fault's
    /// target (microrebooting the wrong EJB does not help).  Untargeted
    /// escalations (full restart) repair everything their entry lists them
    /// for.
    pub fn repairs(&self, fault: &FaultSpec, fix: &FixAction) -> bool {
        if !self.fix_kind_repairs(fault.kind, fix.kind) {
            return false;
        }
        if !fix.kind.needs_target() {
            return true;
        }
        match (&fix.target, &fault.target) {
            (None, _) => false,
            (Some(fix_target), fault_target) => targets_match(fix.kind, fix_target, fault_target),
        }
    }

    /// Number of failure classes covered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the catalog is empty (never the case for
    /// [`FixCatalog::standard`]).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for FixCatalog {
    fn default() -> Self {
        FixCatalog::standard()
    }
}

/// Targeting rules: which fix targets count as "hitting" which fault targets.
fn targets_match(fix_kind: FixKind, fix_target: &FaultTarget, fault_target: &FaultTarget) -> bool {
    use FaultTarget::*;
    match fix_kind {
        // Component-granular fixes must name the exact component.
        FixKind::MicrorebootEjb | FixKind::KillHungQuery => fix_target == fault_target,
        FixKind::UpdateStatistics | FixKind::RepartitionTable | FixKind::RebuildIndex => {
            match (fix_target, fault_target) {
                (Table { index: a }, Table { index: b }) => a == b,
                (Index { index: a }, Index { index: b }) => a == b,
                // Statistics updates on the table repair plan problems even
                // when the fault was recorded against the database tier.
                (Table { .. }, DatabaseTier) => true,
                _ => fix_target == fault_target,
            }
        }
        // Tier-granular fixes repair any component inside that tier.
        FixKind::RebootTier | FixKind::ProvisionResources => {
            let fix_tier = tier_of(fix_target);
            let fault_tier = tier_of(fault_target);
            fix_tier.is_some() && fix_tier == fault_tier
        }
        _ => true,
    }
}

/// Maps a target to a coarse tier bucket (0 = web, 1 = app, 2 = db).
fn tier_of(target: &FaultTarget) -> Option<u8> {
    use FaultTarget::*;
    match target {
        WebTier => Some(0),
        Ejb { .. } | AppTier => Some(1),
        Table { .. } | Index { .. } | DatabaseTier => Some(2),
        WholeService => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultId;

    fn fault(kind: FaultKind, target: FaultTarget) -> FaultSpec {
        FaultSpec::new(FaultId(0), kind, target, 0.8)
    }

    #[test]
    fn catalog_covers_every_fault_kind() {
        let catalog = FixCatalog::standard();
        assert_eq!(catalog.len(), FaultKind::ALL.len());
        for kind in FaultKind::ALL {
            assert!(!catalog.entry(kind).fixes.is_empty(), "{kind} has no fixes");
        }
        assert!(!catalog.is_empty());
    }

    #[test]
    fn table1_preferred_fixes_match_the_paper() {
        let c = FixCatalog::standard();
        assert_eq!(
            c.preferred_fix(FaultKind::DeadlockedThreads),
            FixKind::MicrorebootEjb
        );
        assert_eq!(
            c.preferred_fix(FaultKind::UnhandledException),
            FixKind::MicrorebootEjb
        );
        assert_eq!(
            c.preferred_fix(FaultKind::SoftwareAging),
            FixKind::RebootTier
        );
        assert_eq!(
            c.preferred_fix(FaultKind::SuboptimalQueryPlan),
            FixKind::UpdateStatistics
        );
        assert_eq!(
            c.preferred_fix(FaultKind::TableBlockContention),
            FixKind::RepartitionTable
        );
        assert_eq!(
            c.preferred_fix(FaultKind::BufferContention),
            FixKind::RepartitionMemory
        );
        assert_eq!(
            c.preferred_fix(FaultKind::BottleneckedTier),
            FixKind::ProvisionResources
        );
        assert_eq!(
            c.preferred_fix(FaultKind::SourceCodeBug),
            FixKind::RebootTier
        );
    }

    #[test]
    fn full_restart_repairs_every_table1_failure() {
        let c = FixCatalog::standard();
        for kind in FaultKind::TABLE1 {
            assert!(
                c.fix_kind_repairs(kind, FixKind::FullServiceRestart),
                "full restart should repair {kind}"
            );
        }
    }

    #[test]
    fn targeted_fix_must_hit_the_faulty_component() {
        let c = FixCatalog::standard();
        let f = fault(FaultKind::DeadlockedThreads, FaultTarget::Ejb { index: 3 });
        let right = FixAction::targeted(FixKind::MicrorebootEjb, FaultTarget::Ejb { index: 3 });
        let wrong = FixAction::targeted(FixKind::MicrorebootEjb, FaultTarget::Ejb { index: 1 });
        let untargeted = FixAction::untargeted(FixKind::MicrorebootEjb);
        assert!(c.repairs(&f, &right));
        assert!(!c.repairs(&f, &wrong));
        assert!(!c.repairs(&f, &untargeted));
    }

    #[test]
    fn tier_level_fixes_repair_components_in_that_tier() {
        let c = FixCatalog::standard();
        let f = fault(FaultKind::SoftwareAging, FaultTarget::Ejb { index: 0 });
        let reboot_app = FixAction::targeted(FixKind::RebootTier, FaultTarget::AppTier);
        let reboot_db = FixAction::targeted(FixKind::RebootTier, FaultTarget::DatabaseTier);
        assert!(c.repairs(&f, &reboot_app));
        assert!(!c.repairs(&f, &reboot_db));
    }

    #[test]
    fn wrong_fix_kind_never_repairs() {
        let c = FixCatalog::standard();
        let f = fault(
            FaultKind::SuboptimalQueryPlan,
            FaultTarget::Table { index: 1 },
        );
        let fix = FixAction::targeted(FixKind::MicrorebootEjb, FaultTarget::Ejb { index: 0 });
        assert!(!c.repairs(&f, &fix));
        let stats_right =
            FixAction::targeted(FixKind::UpdateStatistics, FaultTarget::Table { index: 1 });
        let stats_wrong =
            FixAction::targeted(FixKind::UpdateStatistics, FaultTarget::Table { index: 0 });
        assert!(c.repairs(&f, &stats_right));
        assert!(!c.repairs(&f, &stats_wrong));
    }

    #[test]
    fn untargeted_escalations_always_repair_listed_faults() {
        let c = FixCatalog::standard();
        let f = fault(FaultKind::BottleneckedTier, FaultTarget::DatabaseTier);
        let restart = FixAction::untargeted(FixKind::FullServiceRestart);
        assert!(c.repairs(&f, &restart));
        let provision_db =
            FixAction::targeted(FixKind::ProvisionResources, FaultTarget::DatabaseTier);
        let provision_web = FixAction::targeted(FixKind::ProvisionResources, FaultTarget::WebTier);
        assert!(c.repairs(&f, &provision_db));
        assert!(!c.repairs(&f, &provision_web));
    }

    #[test]
    fn default_is_standard() {
        assert_eq!(FixCatalog::default(), FixCatalog::standard());
    }
}
