//! Per-cause recovery-time model (Figure 2 of the paper).
//!
//! Figure 2 reports, for the same three services as Figure 1, how long it
//! took to recover from each failure-cause category.  The qualitative shape
//! is: operator-induced failures "tend to take longer to recover, as it is
//! the human component of the system that needs to recover from the failure
//! it has caused", while software and hardware failures recover faster
//! (often via automated restart or failover).
//!
//! [`RecoveryTimeModel`] assigns each [`FailureCause`] a log-normal-ish
//! recovery-time distribution (median + spread), representing the *manual*
//! recovery times observed in the study; the self-healing benchmarks contrast
//! these with the times achieved by the automated policies.

use crate::fault::FailureCause;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Parameters of one cause's recovery-time distribution, in minutes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryParams {
    /// Median recovery time, in minutes.
    pub median_minutes: f64,
    /// Multiplicative spread: the 90th percentile is roughly
    /// `median * spread`.
    pub spread: f64,
}

impl RecoveryParams {
    /// Creates a parameter set.
    pub fn new(median_minutes: f64, spread: f64) -> Self {
        RecoveryParams {
            median_minutes: median_minutes.max(0.1),
            spread: spread.max(1.0),
        }
    }
}

/// Recovery-time model keyed by failure cause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryTimeModel {
    params: BTreeMap<FailureCause, RecoveryParams>,
}

impl RecoveryTimeModel {
    /// The model calibrated to the qualitative shape of Figure 2: operator
    /// errors take the longest to recover (median on the order of hours),
    /// software failures tens of minutes, hardware/network failures less
    /// (failover), unknown causes in between.
    pub fn standard() -> Self {
        let mut params = BTreeMap::new();
        params.insert(FailureCause::Operator, RecoveryParams::new(120.0, 3.0));
        params.insert(FailureCause::Software, RecoveryParams::new(30.0, 2.5));
        params.insert(FailureCause::Hardware, RecoveryParams::new(15.0, 2.0));
        params.insert(FailureCause::Network, RecoveryParams::new(20.0, 2.5));
        params.insert(FailureCause::Unknown, RecoveryParams::new(60.0, 3.0));
        RecoveryTimeModel { params }
    }

    /// Returns the parameters for a cause.
    pub fn params(&self, cause: FailureCause) -> RecoveryParams {
        *self.params.get(&cause).expect("model covers every cause")
    }

    /// Median manual recovery time for a cause, in minutes.
    pub fn median_minutes(&self, cause: FailureCause) -> f64 {
        self.params(cause).median_minutes
    }

    /// Samples a manual recovery time, in minutes.
    ///
    /// Uses a simple log-normal-like construction: `median * spread^z` where
    /// `z` is a standard-normal-ish value built from the sum of uniform
    /// draws (Irwin–Hall with 6 terms), keeping the crate free of any
    /// distribution dependency.
    pub fn sample_minutes<R: Rng + ?Sized>(&self, cause: FailureCause, rng: &mut R) -> f64 {
        let p = self.params(cause);
        // Irwin-Hall(6) centered: mean 0, variance 0.5; scale to ~N(0,1).
        let z: f64 = (0..6).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() - 3.0;
        let z = z / std::f64::consts::FRAC_1_SQRT_2;
        (p.median_minutes * p.spread.powf(z * 0.5)).max(0.5)
    }

    /// Samples a manual recovery time, in ticks (one tick = one second of
    /// service time).
    pub fn sample_ticks<R: Rng + ?Sized>(&self, cause: FailureCause, rng: &mut R) -> u64 {
        (self.sample_minutes(cause, rng) * 60.0).round() as u64
    }
}

impl Default for RecoveryTimeModel {
    fn default() -> Self {
        RecoveryTimeModel::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn operator_failures_take_longest_to_recover() {
        let m = RecoveryTimeModel::standard();
        let op = m.median_minutes(FailureCause::Operator);
        for cause in [
            FailureCause::Software,
            FailureCause::Hardware,
            FailureCause::Network,
        ] {
            assert!(
                op > m.median_minutes(cause),
                "operator should exceed {cause}"
            );
        }
    }

    #[test]
    fn sampled_medians_track_configured_medians() {
        let m = RecoveryTimeModel::standard();
        let mut rng = StdRng::seed_from_u64(11);
        for cause in FailureCause::ALL {
            let mut samples: Vec<f64> = (0..4000)
                .map(|_| m.sample_minutes(cause, &mut rng))
                .collect();
            samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = samples[samples.len() / 2];
            let expected = m.median_minutes(cause);
            assert!(
                (median - expected).abs() / expected < 0.25,
                "{cause}: sampled median {median} vs configured {expected}"
            );
        }
    }

    #[test]
    fn sampled_times_are_positive_and_ticks_scale_by_60() {
        let m = RecoveryTimeModel::standard();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let minutes = m.sample_minutes(FailureCause::Hardware, &mut rng);
            assert!(minutes > 0.0);
        }
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let ticks = m.sample_ticks(FailureCause::Software, &mut a);
        let minutes = m.sample_minutes(FailureCause::Software, &mut b);
        assert_eq!(ticks, (minutes * 60.0).round() as u64);
    }

    #[test]
    fn params_clamp_degenerate_inputs() {
        let p = RecoveryParams::new(-5.0, 0.2);
        assert!(p.median_minutes > 0.0);
        assert!(p.spread >= 1.0);
    }
}
