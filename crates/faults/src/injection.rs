//! Fault-injection plans.
//!
//! Section 4.2 of the paper argues for *active* data collection during
//! preproduction: "the service can be subjected to different types and rates
//! of workloads, and injected with various failures; while recording data
//! about observed behavior".  An [`InjectionPlan`] is the schedule of such
//! injections — either hand-scripted (for targeted experiments such as the
//! Table 1 fault/fix matrix) or randomly generated from a
//! [`ServiceProfile`]'s cause mix (for the Figure 1/2 demographics and the
//! FixSym training runs).

use crate::fault::{FaultId, FaultKind, FaultSpec, FaultTarget};
use crate::mix::ServiceProfile;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One scheduled injection: a fault to activate at a given tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectionEvent {
    /// Tick at which the fault becomes active.
    pub at_tick: u64,
    /// The fault to inject.
    pub fault: FaultSpec,
}

/// A time-ordered schedule of fault injections.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct InjectionPlan {
    events: Vec<InjectionEvent>,
}

impl InjectionPlan {
    /// Creates an empty plan.
    pub fn empty() -> Self {
        InjectionPlan { events: Vec::new() }
    }

    /// Creates a plan from events (sorted by tick internally).
    pub fn from_events(mut events: Vec<InjectionEvent>) -> Self {
        events.sort_by_key(|e| e.at_tick);
        InjectionPlan { events }
    }

    /// Number of scheduled injections.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events in tick order.
    pub fn events(&self) -> &[InjectionEvent] {
        &self.events
    }

    /// Returns the faults that become active exactly at `tick`.
    pub fn due_at(&self, tick: u64) -> Vec<&FaultSpec> {
        self.events
            .iter()
            .filter(|e| e.at_tick == tick)
            .map(|e| &e.fault)
            .collect()
    }

    /// The tick of the last scheduled injection (0 for an empty plan).
    pub fn horizon(&self) -> u64 {
        self.events.last().map(|e| e.at_tick).unwrap_or(0)
    }
}

/// Builder for [`InjectionPlan`]s.
#[derive(Debug)]
pub struct InjectionPlanBuilder {
    events: Vec<InjectionEvent>,
    next_id: u64,
    ejb_count: usize,
    table_count: usize,
    index_count: usize,
}

impl InjectionPlanBuilder {
    /// Creates a builder that will pick fault targets among `ejb_count`
    /// EJBs, `table_count` tables, and `index_count` indexes (matching the
    /// simulated service's topology).
    pub fn new(ejb_count: usize, table_count: usize, index_count: usize) -> Self {
        InjectionPlanBuilder {
            events: Vec::new(),
            next_id: 0,
            ejb_count: ejb_count.max(1),
            table_count: table_count.max(1),
            index_count: index_count.max(1),
        }
    }

    fn next_id(&mut self) -> FaultId {
        let id = FaultId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Topology this builder draws random targets from, as
    /// `(ejb_count, table_count, index_count)`.
    pub fn topology(&self) -> (usize, usize, usize) {
        (self.ejb_count, self.table_count, self.index_count)
    }

    /// Schedules a fully specified fault.
    pub fn inject(
        mut self,
        at_tick: u64,
        kind: FaultKind,
        target: FaultTarget,
        severity: f64,
    ) -> Self {
        let id = self.next_id();
        self.events.push(InjectionEvent {
            at_tick,
            fault: FaultSpec::new(id, kind, target, severity),
        });
        self
    }

    /// Schedules a fault of `kind` at `at_tick` with a target chosen
    /// deterministically from the topology (component 0 of the natural
    /// target class) and default severity 0.8.
    pub fn inject_default(self, at_tick: u64, kind: FaultKind) -> Self {
        let target = default_target(kind, 0);
        self.inject(at_tick, kind, target, 0.8)
    }

    /// Schedules `count` faults drawn from `profile`'s cause mix, spaced
    /// `spacing_ticks` apart starting at `start_tick`, with random targets
    /// and severities in `[0.4, 1.0]`.
    pub fn inject_from_profile<R: Rng + ?Sized>(
        mut self,
        profile: ServiceProfile,
        count: usize,
        start_tick: u64,
        spacing_ticks: u64,
        rng: &mut R,
    ) -> Self {
        for i in 0..count {
            let (cause, kind) = profile.sample_kind(rng);
            let target = self.random_target(kind, rng);
            let severity = rng.gen_range(0.4..=1.0);
            let id = self.next_id();
            let fault = FaultSpec::new(id, kind, target, severity).with_cause(cause);
            self.events.push(InjectionEvent {
                at_tick: start_tick + i as u64 * spacing_ticks,
                fault,
            });
        }
        self
    }

    fn random_target<R: Rng + ?Sized>(&self, kind: FaultKind, rng: &mut R) -> FaultTarget {
        random_target(
            kind,
            self.ejb_count,
            self.table_count,
            self.index_count,
            rng,
        )
    }

    /// Finalizes the plan.
    pub fn build(self) -> InjectionPlan {
        InjectionPlan::from_events(self.events)
    }
}

/// Draws a random target for a fault of `kind` within a service topology of
/// `ejb_count` EJBs, `table_count` tables, and `index_count` indexes — the
/// target rule shared by [`InjectionPlanBuilder::inject_from_profile`] and
/// the stochastic [`crate::source::MixSource`].
pub fn random_target<R: Rng + ?Sized>(
    kind: FaultKind,
    ejb_count: usize,
    table_count: usize,
    _index_count: usize,
    rng: &mut R,
) -> FaultTarget {
    let ejb_count = ejb_count.max(1);
    let table_count = table_count.max(1);
    match kind {
        FaultKind::DeadlockedThreads | FaultKind::UnhandledException | FaultKind::SourceCodeBug => {
            FaultTarget::Ejb {
                index: rng.gen_range(0..ejb_count),
            }
        }
        FaultKind::SoftwareAging => {
            if rng.gen_bool(0.5) {
                FaultTarget::AppTier
            } else {
                FaultTarget::Ejb {
                    index: rng.gen_range(0..ejb_count),
                }
            }
        }
        FaultKind::SuboptimalQueryPlan | FaultKind::TableBlockContention => FaultTarget::Table {
            index: rng.gen_range(0..table_count),
        },
        FaultKind::BufferContention => FaultTarget::DatabaseTier,
        FaultKind::BottleneckedTier => match rng.gen_range(0..3) {
            0 => FaultTarget::WebTier,
            1 => FaultTarget::AppTier,
            _ => FaultTarget::DatabaseTier,
        },
        FaultKind::OperatorMisconfiguration => match rng.gen_range(0..3) {
            0 => FaultTarget::AppTier,
            1 => FaultTarget::DatabaseTier,
            _ => FaultTarget::WebTier,
        },
        FaultKind::OperatorProceduralError => FaultTarget::WholeService,
        FaultKind::HardwareFailure => match rng.gen_range(0..3) {
            0 => FaultTarget::WebTier,
            1 => FaultTarget::AppTier,
            _ => FaultTarget::DatabaseTier,
        },
        FaultKind::NetworkPartition => FaultTarget::WholeService,
    }
}

/// The "natural" target class for a fault kind, with the given component
/// index (used by scripted experiments).
pub fn default_target(kind: FaultKind, component: usize) -> FaultTarget {
    match kind {
        FaultKind::DeadlockedThreads | FaultKind::UnhandledException | FaultKind::SourceCodeBug => {
            FaultTarget::Ejb { index: component }
        }
        FaultKind::SoftwareAging => FaultTarget::AppTier,
        FaultKind::SuboptimalQueryPlan | FaultKind::TableBlockContention => {
            FaultTarget::Table { index: component }
        }
        FaultKind::BufferContention => FaultTarget::DatabaseTier,
        FaultKind::BottleneckedTier => FaultTarget::DatabaseTier,
        FaultKind::OperatorMisconfiguration => FaultTarget::AppTier,
        FaultKind::OperatorProceduralError => FaultTarget::WholeService,
        FaultKind::HardwareFailure => FaultTarget::DatabaseTier,
        FaultKind::NetworkPartition => FaultTarget::WholeService,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scripted_plan_is_sorted_and_queryable() {
        let plan = InjectionPlanBuilder::new(4, 3, 2)
            .inject(
                50,
                FaultKind::BufferContention,
                FaultTarget::DatabaseTier,
                0.9,
            )
            .inject(
                10,
                FaultKind::DeadlockedThreads,
                FaultTarget::Ejb { index: 1 },
                0.7,
            )
            .build();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.events()[0].at_tick, 10);
        assert_eq!(plan.horizon(), 50);
        assert_eq!(plan.due_at(10).len(), 1);
        assert_eq!(plan.due_at(10)[0].kind, FaultKind::DeadlockedThreads);
        assert!(plan.due_at(11).is_empty());
    }

    #[test]
    fn unique_fault_ids_are_assigned() {
        let mut rng = StdRng::seed_from_u64(1);
        let plan = InjectionPlanBuilder::new(4, 3, 2)
            .inject_from_profile(ServiceProfile::Online, 50, 0, 100, &mut rng)
            .build();
        let mut ids: Vec<u64> = plan.events().iter().map(|e| e.fault.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 50);
    }

    #[test]
    fn profile_plan_spaces_events_evenly() {
        let mut rng = StdRng::seed_from_u64(2);
        let plan = InjectionPlanBuilder::new(4, 3, 2)
            .inject_from_profile(ServiceProfile::Content, 5, 100, 200, &mut rng)
            .build();
        let ticks: Vec<u64> = plan.events().iter().map(|e| e.at_tick).collect();
        assert_eq!(ticks, vec![100, 300, 500, 700, 900]);
    }

    #[test]
    fn random_targets_stay_within_topology() {
        let mut rng = StdRng::seed_from_u64(3);
        let plan = InjectionPlanBuilder::new(3, 2, 1)
            .inject_from_profile(ServiceProfile::ReadMostly, 200, 0, 1, &mut rng)
            .build();
        for e in plan.events() {
            match e.fault.target {
                FaultTarget::Ejb { index } => assert!(index < 3),
                FaultTarget::Table { index } => assert!(index < 2),
                FaultTarget::Index { index } => assert!(index < 1),
                _ => {}
            }
        }
    }

    #[test]
    fn default_targets_follow_fault_semantics() {
        assert_eq!(
            default_target(FaultKind::DeadlockedThreads, 2),
            FaultTarget::Ejb { index: 2 }
        );
        assert_eq!(
            default_target(FaultKind::SuboptimalQueryPlan, 1),
            FaultTarget::Table { index: 1 }
        );
        assert_eq!(
            default_target(FaultKind::BufferContention, 0),
            FaultTarget::DatabaseTier
        );
        assert_eq!(
            default_target(FaultKind::NetworkPartition, 0),
            FaultTarget::WholeService
        );
    }

    #[test]
    fn empty_plan_has_zero_horizon() {
        let plan = InjectionPlan::empty();
        assert!(plan.is_empty());
        assert_eq!(plan.horizon(), 0);
    }

    #[test]
    fn inject_default_uses_component_zero() {
        let plan = InjectionPlanBuilder::new(2, 2, 1)
            .inject_default(5, FaultKind::UnhandledException)
            .build();
        assert_eq!(plan.events()[0].fault.target, FaultTarget::Ejb { index: 0 });
        assert_eq!(plan.events()[0].fault.severity, 0.8);
    }
}
