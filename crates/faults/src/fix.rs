//! Candidate fixes and their cost model.
//!
//! The right-hand column of Table 1 in the paper lists candidate fixes for
//! each failure class; Section 4.1 adds two universal fall-back fixes
//! ("alerting an administrator that manual intervention is needed, or
//! performing a full service restart").  [`FixKind`] enumerates all of them,
//! and [`FixCost`] captures why fix *choice* matters: a microreboot is
//! "orders of magnitude faster than full service restarts", so applying the
//! narrow fix first recovers much faster than escalating straight to a
//! restart.

use crate::fault::FaultTarget;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of an applied fix attempt within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FixId(pub u64);

impl fmt::Display for FixId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fix#{}", self.0)
    }
}

/// The repair actions available to the self-healing layer.
///
/// Targeted fixes carry the component they act on; the healing policies
/// choose both the kind and (when applicable) the target, typically the
/// component whose symptoms implicate it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FixKind {
    /// Microreboot one EJB (Candea et al.): fine-grained reboot of an
    /// application component, orders of magnitude faster than a full restart.
    MicrorebootEjb,
    /// Kill a hung/runaway database query.
    KillHungQuery,
    /// Reboot one tier of the service (web, application, or database).
    RebootTier,
    /// Full service restart across all tiers — the expensive universal fix.
    FullServiceRestart,
    /// Update optimizer statistics for the tables of the offending query.
    UpdateStatistics,
    /// Repartition a table to balance block accesses across partitions.
    RepartitionTable,
    /// Repartition memory across database buffer pools.
    RepartitionMemory,
    /// Rebuild a degraded index.
    RebuildIndex,
    /// Provision more resources (capacity) to a bottlenecked tier.
    ProvisionResources,
    /// Roll back the most recent (operator) configuration change.
    RollbackConfiguration,
    /// Alert a human administrator; recovery proceeds at human timescales.
    NotifyAdministrator,
    /// Deliberately do nothing (used as a negative control in experiments).
    NoOp,
}

impl FixKind {
    /// All fix kinds.
    pub const ALL: [FixKind; 12] = [
        FixKind::MicrorebootEjb,
        FixKind::KillHungQuery,
        FixKind::RebootTier,
        FixKind::FullServiceRestart,
        FixKind::UpdateStatistics,
        FixKind::RepartitionTable,
        FixKind::RepartitionMemory,
        FixKind::RebuildIndex,
        FixKind::ProvisionResources,
        FixKind::RollbackConfiguration,
        FixKind::NotifyAdministrator,
        FixKind::NoOp,
    ];

    /// The fixes a policy may actually recommend (everything except the
    /// `NoOp` control).
    pub const CANDIDATES: [FixKind; 11] = [
        FixKind::MicrorebootEjb,
        FixKind::KillHungQuery,
        FixKind::RebootTier,
        FixKind::FullServiceRestart,
        FixKind::UpdateStatistics,
        FixKind::RepartitionTable,
        FixKind::RepartitionMemory,
        FixKind::RebuildIndex,
        FixKind::ProvisionResources,
        FixKind::RollbackConfiguration,
        FixKind::NotifyAdministrator,
    ];

    /// Stable lowercase label used in CSV output and metric names.
    pub fn label(self) -> &'static str {
        match self {
            FixKind::MicrorebootEjb => "microreboot_ejb",
            FixKind::KillHungQuery => "kill_hung_query",
            FixKind::RebootTier => "reboot_tier",
            FixKind::FullServiceRestart => "full_service_restart",
            FixKind::UpdateStatistics => "update_statistics",
            FixKind::RepartitionTable => "repartition_table",
            FixKind::RepartitionMemory => "repartition_memory",
            FixKind::RebuildIndex => "rebuild_index",
            FixKind::ProvisionResources => "provision_resources",
            FixKind::RollbackConfiguration => "rollback_configuration",
            FixKind::NotifyAdministrator => "notify_administrator",
            FixKind::NoOp => "no_op",
        }
    }

    /// Stable numeric code used as the prediction label by the learning
    /// layer (the synopsis predicts a fix code from a symptom vector).
    pub fn code(self) -> usize {
        FixKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("kind in ALL")
    }

    /// Inverse of [`FixKind::code`].
    pub fn from_code(code: usize) -> Option<FixKind> {
        FixKind::ALL.get(code).copied()
    }

    /// Inverse of [`FixKind::label`] — used by the synopsis codec, which
    /// persists fixes by label so saved models stay readable (and stable)
    /// even if the enum order ever changes.
    pub fn from_label(label: &str) -> Option<FixKind> {
        FixKind::ALL.iter().copied().find(|k| k.label() == label)
    }

    /// Default cost model for this fix (durations in ticks ≈ seconds).
    ///
    /// The values encode the paper's qualitative ordering: a microreboot or
    /// killing a query takes seconds, rebooting a tier takes on the order of
    /// a minute, a full service restart several minutes, and involving a
    /// human administrator takes tens of minutes (Figure 2 shows
    /// operator-handled failures taking by far the longest to recover).
    pub fn default_cost(self) -> FixCost {
        match self {
            FixKind::MicrorebootEjb => FixCost::new(2, 0.05, 0.0),
            FixKind::KillHungQuery => FixCost::new(1, 0.02, 0.0),
            FixKind::RebootTier => FixCost::new(60, 0.60, 0.0),
            FixKind::FullServiceRestart => FixCost::new(300, 1.0, 0.0),
            FixKind::UpdateStatistics => FixCost::new(20, 0.10, 0.0),
            FixKind::RepartitionTable => FixCost::new(90, 0.30, 0.0),
            FixKind::RepartitionMemory => FixCost::new(10, 0.05, 0.0),
            FixKind::RebuildIndex => FixCost::new(45, 0.20, 0.0),
            FixKind::ProvisionResources => FixCost::new(120, 0.05, 0.10),
            FixKind::RollbackConfiguration => FixCost::new(30, 0.15, 0.0),
            FixKind::NotifyAdministrator => FixCost::new(1800, 0.10, 0.50),
            FixKind::NoOp => FixCost::new(0, 0.0, 0.0),
        }
    }

    /// Whether this fix requires a target component to act on.
    pub fn needs_target(self) -> bool {
        matches!(
            self,
            FixKind::MicrorebootEjb
                | FixKind::KillHungQuery
                | FixKind::RebootTier
                | FixKind::UpdateStatistics
                | FixKind::RepartitionTable
                | FixKind::RebuildIndex
                | FixKind::ProvisionResources
        )
    }

    /// Whether this fix is one of the expensive universal fall-backs of
    /// Section 4.1 (full restart or human escalation).
    pub fn is_escalation(self) -> bool {
        matches!(
            self,
            FixKind::FullServiceRestart | FixKind::NotifyAdministrator
        )
    }
}

impl fmt::Display for FixKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cost model of a fix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixCost {
    /// How many ticks the fix takes to complete once initiated.
    pub duration_ticks: u64,
    /// Fraction of the service's capacity lost while the fix is in progress
    /// (1.0 = complete outage, as during a full restart).
    pub disruption: f64,
    /// Ongoing relative cost after the fix completes (e.g. the extra money a
    /// provisioned replica costs); used by cost-aware policies.
    pub recurring_cost: f64,
}

impl FixCost {
    /// Creates a cost model, clamping `disruption` to `[0, 1]`.
    pub fn new(duration_ticks: u64, disruption: f64, recurring_cost: f64) -> Self {
        FixCost {
            duration_ticks,
            disruption: disruption.clamp(0.0, 1.0),
            recurring_cost: recurring_cost.max(0.0),
        }
    }

    /// A scalar "badness" used by cost-aware ranking: expected capacity-ticks
    /// lost while applying the fix plus a penalty for recurring cost.
    pub fn penalty(&self) -> f64 {
        self.duration_ticks as f64 * self.disruption + 100.0 * self.recurring_cost
    }
}

/// A fix chosen by a policy: the kind plus (optionally) the component it
/// should act on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixAction {
    /// The repair action.
    pub kind: FixKind,
    /// The component acted on, when the fix is targeted.
    pub target: Option<FaultTarget>,
}

impl FixAction {
    /// An untargeted fix action.
    pub fn untargeted(kind: FixKind) -> Self {
        FixAction { kind, target: None }
    }

    /// A targeted fix action.
    pub fn targeted(kind: FixKind, target: FaultTarget) -> Self {
        FixAction {
            kind,
            target: Some(target),
        }
    }
}

impl fmt::Display for FixAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.target {
            Some(t) => write!(f, "{} on {}", self.kind, t.describe()),
            None => write!(f, "{}", self.kind),
        }
    }
}

/// The observed outcome of an attempted fix, as determined by the
/// check-fix step of the FixSym loop (Figure 3, line 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FixOutcome {
    /// The service recovered after the fix (SLOs compliant again).
    Recovered,
    /// The service did not recover; the failure persists.
    NotRecovered,
    /// The verdict is not yet known (the fix or the recovery check is still
    /// in progress).
    Pending,
}

impl FixOutcome {
    /// Returns `true` for [`FixOutcome::Recovered`].
    pub fn is_success(self) -> bool {
        matches!(self, FixOutcome::Recovered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip_and_labels_unique() {
        let mut labels: Vec<&str> = FixKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), FixKind::ALL.len());
        for (i, kind) in FixKind::ALL.iter().enumerate() {
            assert_eq!(kind.code(), i);
            assert_eq!(FixKind::from_code(i), Some(*kind));
        }
    }

    #[test]
    fn candidates_exclude_noop() {
        assert!(!FixKind::CANDIDATES.contains(&FixKind::NoOp));
        assert_eq!(FixKind::CANDIDATES.len(), FixKind::ALL.len() - 1);
    }

    #[test]
    fn cost_ordering_matches_paper_claims() {
        // Microreboots are orders of magnitude faster than full restarts.
        let micro = FixKind::MicrorebootEjb.default_cost();
        let restart = FixKind::FullServiceRestart.default_cost();
        let admin = FixKind::NotifyAdministrator.default_cost();
        assert!(restart.duration_ticks >= 100 * micro.duration_ticks);
        // Human-in-the-loop recovery is the slowest of all (Figure 2).
        assert!(admin.duration_ticks > restart.duration_ticks);
        // A full restart is a complete outage while it runs.
        assert_eq!(restart.disruption, 1.0);
        assert!(micro.penalty() < restart.penalty());
    }

    #[test]
    fn targeted_fixes_are_flagged() {
        assert!(FixKind::MicrorebootEjb.needs_target());
        assert!(FixKind::UpdateStatistics.needs_target());
        assert!(!FixKind::FullServiceRestart.needs_target());
        assert!(FixKind::FullServiceRestart.is_escalation());
        assert!(FixKind::NotifyAdministrator.is_escalation());
        assert!(!FixKind::MicrorebootEjb.is_escalation());
    }

    #[test]
    fn fix_cost_clamps_inputs() {
        let c = FixCost::new(10, 3.0, -1.0);
        assert_eq!(c.disruption, 1.0);
        assert_eq!(c.recurring_cost, 0.0);
    }

    #[test]
    fn fix_action_display_mentions_target() {
        let a = FixAction::targeted(FixKind::MicrorebootEjb, FaultTarget::Ejb { index: 2 });
        assert_eq!(a.to_string(), "microreboot_ejb on EJB 2");
        let u = FixAction::untargeted(FixKind::FullServiceRestart);
        assert_eq!(u.to_string(), "full_service_restart");
    }

    #[test]
    fn outcome_success_flag() {
        assert!(FixOutcome::Recovered.is_success());
        assert!(!FixOutcome::NotRecovered.is_success());
        assert!(!FixOutcome::Pending.is_success());
    }
}
