//! The route table: one HTTP surface, lowered onto the daemon's
//! [`Command`] protocol.
//!
//! The gateway adds *no* second command vocabulary — every route lowers to
//! a [`Command`] (tenant routes to a `@<tenant>`-scoped one), which is then
//! rendered by [`render_command`](selfheal_daemon::render_command) and sent
//! over the same Unix socket `selfheal-ctl` uses.  The only exception is
//! the streaming metrics route, which is a *loop* of `@<tenant> METRICS`
//! commands rather than a single one.
//!
//! | Method & path                              | Command             | Scope   |
//! |--------------------------------------------|---------------------|---------|
//! | `GET /v1/tenants`                          | `TENANT LIST`       | read    |
//! | `POST /v1/tenants`                         | `TENANT CREATE`     | admin   |
//! | `DELETE /v1/tenants/<t>`                   | `TENANT DROP`       | admin   |
//! | `GET /v1/tenants/<t>/status`               | `@t STATUS`         | read    |
//! | `GET /v1/tenants/<t>/replicas`             | `@t REPLICAS`       | read    |
//! | `POST /v1/tenants/<t>/replicas`            | `@t ADD`            | operate |
//! | `DELETE /v1/tenants/<t>/replicas/<id>`     | `@t REMOVE`         | operate |
//! | `POST /v1/tenants/<t>/replicas/<id>/config`| `@t RECONFIGURE`    | operate |
//! | `GET /v1/tenants/<t>/fixes[?signature=..]` | `@t QUERY FIXES`    | read    |
//! | `GET /v1/tenants/<t>/episodes`             | `@t EPISODES OPEN`  | read    |
//! | `POST /v1/tenants/<t>/snapshot`            | `@t SNAPSHOT`       | operate |
//! | `POST /v1/tenants/<t>/drain`               | `@t DRAIN`          | operate |
//! | `GET /v1/tenants/<t>/metrics`              | `@t METRICS`        | read    |
//! | `GET /v1/tenants/<t>/metrics/stream`       | (`@t METRICS` loop) | read    |
//! | `POST /v1/shutdown`                        | `SHUTDOWN`          | admin   |
//!
//! Daemon-wide routes (no `<t>`) additionally require a `*`-bound token
//! (see [`crate::auth`]).  Request bodies are flat JSON objects.

use crate::auth::Scope;
use selfheal_daemon::protocol::Command;
use selfheal_jsonl::Scanner;
use std::path::PathBuf;

/// What the server should do for one routed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Send one command, translate its reply.
    Command(Command),
    /// Poll `@<tenant> METRICS` and stream the JSON lines as chunks.
    MetricsStream {
        /// The tenant whose health is streamed.
        tenant: String,
    },
}

/// A routed request: the plan plus what authorizing it requires.
#[derive(Debug, Clone, PartialEq)]
pub struct Lowered {
    /// What to execute.
    pub plan: Plan,
    /// The tenant the route addresses (`None` = daemon-wide).
    pub tenant: Option<String>,
    /// Minimum token scope.
    pub scope: Scope,
    /// Whether the route changes daemon state (audit-logged).
    pub mutating: bool,
}

/// A request the router rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteError {
    /// HTTP status (400, 404, or 405).
    pub status: u16,
    /// Human-readable cause.
    pub message: String,
}

fn bad(message: impl Into<String>) -> RouteError {
    RouteError {
        status: 400,
        message: message.into(),
    }
}

fn not_found(path: &str) -> RouteError {
    RouteError {
        status: 404,
        message: format!("no route for {path}"),
    }
}

fn method_not_allowed(method: &str, path: &str) -> RouteError {
    RouteError {
        status: 405,
        message: format!("{method} is not supported on {path}"),
    }
}

/// Routes one request.  `query` is the raw query string (if any), `body`
/// the raw request body (routes that take none reject a non-empty one).
pub fn route(
    method: &str,
    path: &str,
    query: Option<&str>,
    body: &[u8],
) -> Result<Lowered, RouteError> {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["v1", "tenants"] => match method {
            "GET" => global(Command::TenantList, Scope::Read, false, body),
            "POST" => {
                let fields = parse_object(body)?;
                let name = require_word(&fields, "name")?;
                let shared_pool = get_bool(&fields, "shared_pool")?.unwrap_or(false);
                Ok(Lowered {
                    plan: Plan::Command(Command::TenantCreate { name, shared_pool }),
                    tenant: None,
                    scope: Scope::Admin,
                    mutating: true,
                })
            }
            _ => Err(method_not_allowed(method, path)),
        },
        ["v1", "tenants", tenant] => match method {
            "DELETE" => {
                let tenant = word(tenant, "tenant name")?;
                global(Command::TenantDrop(tenant), Scope::Admin, true, body)
            }
            _ => Err(method_not_allowed(method, path)),
        },
        ["v1", "tenants", tenant, rest @ ..] => {
            let tenant = word(tenant, "tenant name")?;
            tenant_route(method, path, &tenant, rest, query, body)
        }
        ["v1", "shutdown"] => match method {
            "POST" => global(Command::Shutdown, Scope::Admin, true, body),
            _ => Err(method_not_allowed(method, path)),
        },
        _ => Err(not_found(path)),
    }
}

fn global(
    command: Command,
    scope: Scope,
    mutating: bool,
    body: &[u8],
) -> Result<Lowered, RouteError> {
    reject_body(body)?;
    Ok(Lowered {
        plan: Plan::Command(command),
        tenant: None,
        scope,
        mutating,
    })
}

fn tenant_route(
    method: &str,
    path: &str,
    tenant: &str,
    rest: &[&str],
    query: Option<&str>,
    body: &[u8],
) -> Result<Lowered, RouteError> {
    let fleet = |inner: Command, scope: Scope, mutating: bool| Lowered {
        plan: Plan::Command(Command::Scoped {
            tenant: tenant.to_string(),
            inner: Box::new(inner),
        }),
        tenant: Some(tenant.to_string()),
        scope,
        mutating,
    };
    match (method, rest) {
        ("GET", ["status"]) => Ok(fleet(Command::Status, Scope::Read, false)),
        ("GET", ["replicas"]) => Ok(fleet(Command::Replicas, Scope::Read, false)),
        ("POST", ["replicas"]) => {
            let fields = parse_object(body)?;
            let profile = match get_str(&fields, "profile")? {
                Some(profile) => check_word(profile, "profile")?,
                None => "default".to_string(),
            };
            Ok(fleet(Command::Add(profile), Scope::Operate, true))
        }
        ("DELETE", ["replicas", id]) => {
            reject_body(body)?;
            Ok(fleet(Command::Remove(parse_id(id)?), Scope::Operate, true))
        }
        ("POST", ["replicas", id, "config"]) => {
            let fields = parse_object(body)?;
            let key = require_word(&fields, "key")?;
            let value = require_word(&fields, "value")?;
            Ok(fleet(
                Command::Reconfigure {
                    id: parse_id(id)?,
                    key,
                    value,
                },
                Scope::Operate,
                true,
            ))
        }
        ("GET", ["fixes"]) => {
            let signature = match query_value(query, "signature") {
                None => None,
                Some(text) => Some(parse_signature(text)?),
            };
            Ok(fleet(Command::QueryFixes(signature), Scope::Read, false))
        }
        ("GET", ["episodes"]) => Ok(fleet(Command::EpisodesOpen, Scope::Read, false)),
        ("POST", ["snapshot"]) => {
            let fields = parse_object(body)?;
            let target = require_word(&fields, "path")?;
            Ok(fleet(
                Command::Snapshot(PathBuf::from(target)),
                Scope::Operate,
                true,
            ))
        }
        ("POST", ["drain"]) => {
            reject_body(body)?;
            Ok(fleet(Command::Drain, Scope::Operate, true))
        }
        ("GET", ["metrics"]) => Ok(fleet(Command::Metrics, Scope::Read, false)),
        ("GET", ["metrics", "stream"]) => Ok(Lowered {
            plan: Plan::MetricsStream {
                tenant: tenant.to_string(),
            },
            tenant: Some(tenant.to_string()),
            scope: Scope::Read,
            mutating: false,
        }),
        (
            _,
            ["status" | "replicas" | "fixes" | "episodes" | "snapshot" | "drain" | "metrics", ..],
        ) => Err(method_not_allowed(method, path)),
        _ => Err(not_found(path)),
    }
}

/// The flat-JSON body values the routes accept.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Bool(bool),
    Num(f64),
}

/// Parses a request body as one flat JSON object (an empty body is an
/// empty object).  Nested objects/arrays are rejected — no route needs
/// them, and a flat map keeps the parser honest about what it accepts.
fn parse_object(body: &[u8]) -> Result<Vec<(String, Value)>, RouteError> {
    let text = std::str::from_utf8(body).map_err(|_| bad("body is not valid UTF-8"))?;
    if text.trim().is_empty() {
        return Ok(Vec::new());
    }
    let fail = |err: selfheal_jsonl::JsonError| bad(format!("bad JSON body: {err}"));
    let mut scanner = Scanner::new(text);
    scanner.skip_ws();
    scanner.expect(b'{').map_err(fail)?;
    let mut fields = Vec::new();
    scanner.skip_ws();
    if scanner.peek() == Some(b'}') {
        scanner.bump();
        scanner.finish().map_err(fail)?;
        return Ok(fields);
    }
    loop {
        scanner.skip_ws();
        let key = scanner.parse_string().map_err(fail)?.into_owned();
        scanner.skip_ws();
        scanner.expect(b':').map_err(fail)?;
        scanner.skip_ws();
        let value = match scanner.peek() {
            Some(b'"') => Value::Str(scanner.parse_string().map_err(fail)?.into_owned()),
            Some(b't') | Some(b'f') => Value::Bool(scanner.parse_bool().map_err(fail)?),
            Some(b'{') | Some(b'[') => {
                return Err(bad(format!(
                    "body key {key:?}: nested values are not supported"
                )))
            }
            _ => Value::Num(scanner.parse_f64().map_err(fail)?),
        };
        if fields.iter().any(|(existing, _)| *existing == key) {
            return Err(bad(format!("duplicate body key {key:?}")));
        }
        fields.push((key, value));
        scanner.skip_ws();
        match scanner.peek() {
            Some(b',') => scanner.bump(),
            _ => break,
        }
    }
    scanner.skip_ws();
    scanner.expect(b'}').map_err(fail)?;
    scanner.finish().map_err(fail)?;
    Ok(fields)
}

fn reject_body(body: &[u8]) -> Result<(), RouteError> {
    if body.iter().all(|b| b.is_ascii_whitespace()) {
        Ok(())
    } else {
        Err(bad("this route takes no request body"))
    }
}

fn get_str(fields: &[(String, Value)], key: &str) -> Result<Option<String>, RouteError> {
    match fields.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Value::Str(text))) => Ok(Some(text.clone())),
        Some(_) => Err(bad(format!("body key {key:?} must be a string"))),
    }
}

fn get_bool(fields: &[(String, Value)], key: &str) -> Result<Option<bool>, RouteError> {
    match fields.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Value::Bool(flag))) => Ok(Some(*flag)),
        Some(_) => Err(bad(format!("body key {key:?} must be a boolean"))),
    }
}

fn require_word(fields: &[(String, Value)], key: &str) -> Result<String, RouteError> {
    let text = get_str(fields, key)?.ok_or_else(|| bad(format!("body key {key:?} is required")))?;
    check_word(text, key)
}

/// The line protocol frames arguments by whitespace, so any value lowered
/// into a command line must be one word.
fn check_word(text: String, what: &str) -> Result<String, RouteError> {
    if text.is_empty() || text.chars().any(char::is_whitespace) {
        return Err(bad(format!(
            "{what} must be one non-empty word, got {text:?}"
        )));
    }
    Ok(text)
}

fn word(text: &str, what: &str) -> Result<String, RouteError> {
    check_word(text.to_string(), what)
}

fn parse_id(text: &str) -> Result<usize, RouteError> {
    text.parse::<usize>()
        .map_err(|_| bad(format!("expected a replica id, got {text:?}")))
}

fn parse_signature(text: &str) -> Result<Vec<f64>, RouteError> {
    let values: Result<Vec<f64>, _> = text.split(',').map(str::parse::<f64>).collect();
    values.map_err(|_| {
        bad(format!(
            "expected a comma-separated symptom vector, got {text:?}"
        ))
    })
}

fn query_value<'a>(query: Option<&'a str>, key: &str) -> Option<&'a str> {
    query?
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

/// One exemplar request per route, paired with the protocol line it lowers
/// to (empty for the streaming route).  This is the contract table the
/// round-trip tests — and new readers — consult.
pub struct RouteSample {
    /// HTTP method.
    pub method: &'static str,
    /// Path, without query.
    pub path: &'static str,
    /// Query string, when the route takes one.
    pub query: Option<&'static str>,
    /// Request body (empty = none).
    pub body: &'static str,
    /// The rendered command line (`""` for the metrics stream).
    pub line: &'static str,
}

/// See [`RouteSample`].
pub const SAMPLES: &[RouteSample] = &[
    RouteSample {
        method: "GET",
        path: "/v1/tenants",
        query: None,
        body: "",
        line: "TENANT LIST",
    },
    RouteSample {
        method: "POST",
        path: "/v1/tenants",
        query: None,
        body: "{\"name\":\"scout\",\"shared_pool\":true}",
        line: "TENANT CREATE scout pool",
    },
    RouteSample {
        method: "POST",
        path: "/v1/tenants",
        query: None,
        body: "{\"name\":\"loner\"}",
        line: "TENANT CREATE loner",
    },
    RouteSample {
        method: "DELETE",
        path: "/v1/tenants/scout",
        query: None,
        body: "",
        line: "TENANT DROP scout",
    },
    RouteSample {
        method: "GET",
        path: "/v1/tenants/default/status",
        query: None,
        body: "",
        line: "@default STATUS",
    },
    RouteSample {
        method: "GET",
        path: "/v1/tenants/scout/replicas",
        query: None,
        body: "",
        line: "@scout REPLICAS",
    },
    RouteSample {
        method: "POST",
        path: "/v1/tenants/scout/replicas",
        query: None,
        body: "{\"profile\":\"online:0.05\"}",
        line: "@scout ADD online:0.05",
    },
    RouteSample {
        method: "DELETE",
        path: "/v1/tenants/scout/replicas/3",
        query: None,
        body: "",
        line: "@scout REMOVE 3",
    },
    RouteSample {
        method: "POST",
        path: "/v1/tenants/scout/replicas/1/config",
        query: None,
        body: "{\"key\":\"fault_rate\",\"value\":\"0.1\"}",
        line: "@scout RECONFIGURE 1 fault_rate=0.1",
    },
    RouteSample {
        method: "GET",
        path: "/v1/tenants/scout/fixes",
        query: None,
        body: "",
        line: "@scout QUERY FIXES",
    },
    RouteSample {
        method: "GET",
        path: "/v1/tenants/scout/fixes",
        query: Some("signature=1.5,0,-2"),
        body: "",
        line: "@scout QUERY FIXES 1.5,0,-2",
    },
    RouteSample {
        method: "GET",
        path: "/v1/tenants/scout/episodes",
        query: None,
        body: "",
        line: "@scout EPISODES OPEN",
    },
    RouteSample {
        method: "POST",
        path: "/v1/tenants/scout/snapshot",
        query: None,
        body: "{\"path\":\"/tmp/x.jsonl\"}",
        line: "@scout SNAPSHOT /tmp/x.jsonl",
    },
    RouteSample {
        method: "POST",
        path: "/v1/tenants/scout/drain",
        query: None,
        body: "",
        line: "@scout DRAIN",
    },
    RouteSample {
        method: "GET",
        path: "/v1/tenants/scout/metrics",
        query: None,
        body: "",
        line: "@scout METRICS",
    },
    RouteSample {
        method: "GET",
        path: "/v1/tenants/scout/metrics/stream",
        query: None,
        body: "",
        line: "",
    },
    RouteSample {
        method: "POST",
        path: "/v1/shutdown",
        query: None,
        body: "",
        line: "SHUTDOWN",
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_daemon::protocol::{parse_command, render_command};

    #[test]
    fn every_route_lowers_to_its_sample_line() {
        for sample in SAMPLES {
            let lowered = route(
                sample.method,
                sample.path,
                sample.query,
                sample.body.as_bytes(),
            )
            .unwrap_or_else(|err| {
                panic!("{} {} failed to route: {err:?}", sample.method, sample.path)
            });
            match &lowered.plan {
                Plan::Command(command) => {
                    let line = render_command(command);
                    assert_eq!(line, sample.line, "{} {}", sample.method, sample.path);
                    assert_eq!(
                        parse_command(&line).as_ref(),
                        Ok(command),
                        "rendered line must parse back"
                    );
                }
                Plan::MetricsStream { tenant } => {
                    assert_eq!(sample.line, "", "stream routes have no single line");
                    assert_eq!(tenant, "scout");
                }
            }
        }
    }

    #[test]
    fn samples_reach_every_command_variant() {
        let mut status = false;
        let mut replicas = false;
        let mut add = false;
        let mut remove = false;
        let mut reconfigure = false;
        let mut query_none = false;
        let mut query_some = false;
        let mut episodes = false;
        let mut snapshot = false;
        let mut drain = false;
        let mut metrics = false;
        let mut create = false;
        let mut drop = false;
        let mut list = false;
        let mut scoped = false;
        let mut shutdown = false;
        for sample in SAMPLES.iter().filter(|s| !s.line.is_empty()) {
            let mut command = parse_command(sample.line).unwrap();
            if let Command::Scoped { inner, .. } = command {
                scoped = true;
                command = *inner;
            }
            match command {
                Command::Status => status = true,
                Command::Replicas => replicas = true,
                Command::Add(_) => add = true,
                Command::Remove(_) => remove = true,
                Command::Reconfigure { .. } => reconfigure = true,
                Command::QueryFixes(None) => query_none = true,
                Command::QueryFixes(Some(_)) => query_some = true,
                Command::EpisodesOpen => episodes = true,
                Command::Snapshot(_) => snapshot = true,
                Command::Drain => drain = true,
                Command::Metrics => metrics = true,
                Command::TenantCreate { .. } => create = true,
                Command::TenantDrop(_) => drop = true,
                Command::TenantList => list = true,
                Command::Scoped { .. } => unreachable!("unwrapped above"),
                Command::Shutdown => shutdown = true,
            }
        }
        assert!(
            status
                && replicas
                && add
                && remove
                && reconfigure
                && query_none
                && query_some
                && episodes
                && snapshot
                && drain
                && metrics
                && create
                && drop
                && list
                && scoped
                && shutdown,
            "every Command variant must be reachable from some HTTP route"
        );
    }

    #[test]
    fn scopes_and_mutability_follow_the_table() {
        let create = route("POST", "/v1/tenants", None, b"{\"name\":\"t\"}").unwrap();
        assert_eq!(
            (create.scope, create.mutating, create.tenant),
            (Scope::Admin, true, None)
        );
        let status = route("GET", "/v1/tenants/scout/status", None, b"").unwrap();
        assert_eq!(
            (status.scope, status.mutating, status.tenant.as_deref()),
            (Scope::Read, false, Some("scout"))
        );
        let drain = route("POST", "/v1/tenants/scout/drain", None, b"").unwrap();
        assert_eq!((drain.scope, drain.mutating), (Scope::Operate, true));
    }

    #[test]
    fn rejects_unroutable_requests() {
        assert_eq!(route("GET", "/nope", None, b"").unwrap_err().status, 404);
        assert_eq!(
            route("GET", "/v1/tenants/t/bogus", None, b"")
                .unwrap_err()
                .status,
            404
        );
        assert_eq!(
            route("PATCH", "/v1/tenants", None, b"").unwrap_err().status,
            405
        );
        assert_eq!(
            route("DELETE", "/v1/tenants/scout/status", None, b"")
                .unwrap_err()
                .status,
            405
        );
        assert_eq!(
            route("POST", "/v1/tenants", None, b"{}")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            route("POST", "/v1/tenants", None, b"{\"name\":\"two words\"}")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            route("GET", "/v1/tenants/has space/status", None, b"")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            route("GET", "/v1/tenants/scout/fixes", Some("signature=1,x"), b"")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            route("POST", "/v1/tenants/scout/drain", None, b"{\"x\":1}")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            route("POST", "/v1/tenants", None, b"{\"name\":{\"nested\":1}}")
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn body_parser_handles_the_flat_object_shapes() {
        assert!(parse_object(b"").unwrap().is_empty());
        assert!(parse_object(b"  {  }  ").unwrap().is_empty());
        let fields = parse_object(b"{\"a\":\"x\",\"b\":true,\"c\":1.5}").unwrap();
        assert_eq!(fields.len(), 3);
        assert_eq!(get_str(&fields, "a").unwrap().as_deref(), Some("x"));
        assert_eq!(get_bool(&fields, "b").unwrap(), Some(true));
        assert!(matches!(fields[2].1, Value::Num(v) if v == 1.5));
        assert!(parse_object(b"{\"a\":1,\"a\":2}").is_err(), "duplicate key");
        assert!(parse_object(b"{\"a\":1} trailing").is_err());
        assert!(parse_object(b"[1]").is_err());
    }
}
