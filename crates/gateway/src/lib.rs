//! # selfheal-gateway
//!
//! The HTTP/JSON serving layer over [`selfheal_daemon`]: the daemon's
//! Unix-socket line protocol, re-exposed to the network with
//! authentication, tenant scoping, and a streaming metrics feed —
//! std-only, like everything else in this reproduction.
//!
//! * [`http`] — a hand-rolled HTTP/1.1 subset: bounded request parsing,
//!   keep-alive, fixed-length JSON responses, chunked streams.
//! * [`auth`] — static bearer tokens from a TOML-ish file, each bound to
//!   one tenant (or `*`) and a scope rank (`read` < `operate` < `admin`),
//!   compared in constant time.
//! * [`router`] — the route table.  Every route lowers onto a daemon
//!   [`Command`](selfheal_daemon::Command) via
//!   [`render_command`](selfheal_daemon::render_command), so the HTTP
//!   surface and the line protocol can never drift apart: there is only
//!   one command vocabulary, and the router is a *translation*, not a
//!   second implementation.
//! * [`server`] — the [`Gateway`]: accept loop, per-connection threads,
//!   route-then-auth request handling, audit lines for mutating requests,
//!   and the chunked `GET /v1/tenants/<t>/metrics/stream` endpoint that
//!   polls `@<tenant> METRICS` and forwards each tenant-tagged
//!   `FleetHealth` JSON line (see `selfheal_telemetry::health`).
//! * [`client`] — the matching minimal client (`selfheal-http` binary),
//!   so smoke scripts need no curl.
//!
//! The gateway is I/O glue, not simulation: it holds no fleet state and
//! performs no learning, so (like the daemon loop) its wall-clock timing
//! is not part of the determinism surface the `selfheal-lint` rules guard.
//!
//! ## Example
//!
//! ```no_run
//! use selfheal_gateway::auth::{AuthConfig, Scope, Token};
//! use selfheal_gateway::server::{Gateway, GatewayOptions};
//!
//! let auth = AuthConfig::new(vec![Token::new("ops", "swordfish", "*", Scope::Admin)]);
//! let gateway = Gateway::launch(GatewayOptions::new(
//!     "127.0.0.1:0",
//!     "/tmp/selfheal.sock",
//!     auth,
//! ))
//! .unwrap();
//! println!("serving on http://{}", gateway.addr());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod auth;
pub mod client;
pub mod http;
pub mod router;
pub mod server;

pub use auth::{AuthConfig, AuthError, Scope, Token};
pub use client::{request, stream_lines, HttpReply};
pub use http::{Request, Response};
pub use router::{route, Lowered, Plan, RouteError};
pub use server::{Gateway, GatewayOptions};
