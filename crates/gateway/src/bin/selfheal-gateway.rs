//! `selfheal-gateway` — the HTTP serving binary.
//!
//! ```text
//! selfheal-gateway --listen 127.0.0.1:7171 --socket /tmp/selfheal.sock \
//!     --tokens tokens.toml [--audit audit.log] [--stream-millis 200] \
//!     [--timeout-secs 30]
//! ```
//!
//! Serves the route table in `selfheal_gateway::router` against the daemon
//! listening on `--socket`, authorizing every request against the bearer
//! tokens in `--tokens`.  Prints the bound address on stdout once
//! listening, then serves until killed.

use selfheal_gateway::auth::AuthConfig;
use selfheal_gateway::server::{Gateway, GatewayOptions};
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "usage: selfheal-gateway --listen ADDR --socket PATH --tokens FILE
                        [--audit FILE] [--stream-millis N] [--timeout-secs N]";

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let mut listen: Option<String> = None;
    let mut socket: Option<PathBuf> = None;
    let mut tokens: Option<PathBuf> = None;
    let mut audit: Option<PathBuf> = None;
    let mut stream_interval = Duration::from_millis(200);
    let mut command_timeout = Duration::from_secs(30);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--listen" => listen = Some(value("--listen")?),
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--tokens" => tokens = Some(PathBuf::from(value("--tokens")?)),
            "--audit" => audit = Some(PathBuf::from(value("--audit")?)),
            "--stream-millis" => {
                let text = value("--stream-millis")?;
                let millis: u64 = text
                    .parse()
                    .map_err(|_| format!("--stream-millis: cannot parse {text:?}"))?;
                stream_interval = Duration::from_millis(millis.max(1));
            }
            "--timeout-secs" => {
                let text = value("--timeout-secs")?;
                let secs: u64 = text
                    .parse()
                    .map_err(|_| format!("--timeout-secs: cannot parse {text:?}"))?;
                command_timeout = Duration::from_secs(secs.max(1));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    let listen = listen.ok_or_else(|| format!("--listen is required\n{USAGE}"))?;
    let socket = socket.ok_or_else(|| format!("--socket is required\n{USAGE}"))?;
    let tokens = tokens.ok_or_else(|| format!("--tokens is required\n{USAGE}"))?;
    let auth = AuthConfig::load(&tokens)?;
    if auth.is_empty() {
        return Err(format!(
            "{}: no tokens configured; every request would be denied",
            tokens.display()
        ));
    }
    let mut options = GatewayOptions::new(listen, socket, auth);
    options.audit = audit;
    options.stream_interval = stream_interval;
    options.command_timeout = command_timeout;
    let gateway = Gateway::launch(options)?;
    println!("listening on http://{}", gateway.addr());
    gateway.join();
    Ok(())
}

fn main() {
    if let Err(message) = run() {
        eprintln!("{message}");
        std::process::exit(2);
    }
}
