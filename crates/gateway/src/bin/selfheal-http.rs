//! `selfheal-http` — the scripting client for `selfheal-gateway` (the
//! smoke scripts' curl replacement).
//!
//! ```text
//! selfheal-http [--token SECRET] [--body JSON] [--stream N]
//!               [--timeout-secs N] METHOD URL
//! ```
//!
//! The response body is printed on stdout.  The exit code mirrors the
//! exchange so shell scripts can gate on it: 0 for a 2xx status, 1 for any
//! other HTTP status, 2 for transport/usage failures.  With `--stream N`
//! the URL must be a streaming route; N lines are printed as they arrive.
//!
//! ```text
//! selfheal-http --token swordfish GET http://127.0.0.1:7171/v1/tenants
//! selfheal-http --token swordfish --body '{"name":"scout","shared_pool":true}' \
//!     POST http://127.0.0.1:7171/v1/tenants
//! selfheal-http --token hunter2 --stream 3 \
//!     GET http://127.0.0.1:7171/v1/tenants/scout/metrics/stream
//! ```

use selfheal_gateway::client::{request, stream_lines};
use std::time::Duration;

const USAGE: &str =
    "usage: selfheal-http [--token SECRET] [--body JSON] [--stream N] [--timeout-secs N] METHOD URL";

fn run() -> Result<bool, String> {
    let mut args = std::env::args().skip(1);
    let mut token: Option<String> = None;
    let mut body: Option<String> = None;
    let mut stream: Option<usize> = None;
    let mut timeout = Duration::from_secs(30);
    let mut positional: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--token" => token = Some(value("--token")?),
            "--body" => body = Some(value("--body")?),
            "--stream" => {
                let text = value("--stream")?;
                let lines: usize = text
                    .parse()
                    .map_err(|_| format!("--stream: cannot parse {text:?}"))?;
                stream = Some(lines.max(1));
            }
            "--timeout-secs" => {
                let text = value("--timeout-secs")?;
                let secs: u64 = text
                    .parse()
                    .map_err(|_| format!("--timeout-secs: cannot parse {text:?}"))?;
                timeout = Duration::from_secs(secs.max(1));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            _ => positional.push(arg),
        }
    }
    let [method, url] = positional.as_slice() else {
        return Err(format!("expected METHOD URL\n{USAGE}"));
    };
    let method = method.to_ascii_uppercase();
    let (addr, target) = split_url(url)?;

    if let Some(max_lines) = stream {
        let lines = stream_lines(&addr, &target, token.as_deref(), max_lines, timeout)
            .map_err(|err| format!("selfheal-http: {url}: {err}"))?;
        for line in &lines {
            println!("{line}");
        }
        return Ok(!lines.is_empty());
    }
    let reply = request(&addr, &method, &target, token.as_deref(), body.as_deref())
        .map_err(|err| format!("selfheal-http: {url}: {err}"))?;
    println!("{}", reply.body);
    if !reply.is_success() {
        eprintln!("selfheal-http: {method} {url}: status {}", reply.status);
    }
    Ok(reply.is_success())
}

/// Splits `http://host:port/path?query` into (`host:port`, `/path?query`).
fn split_url(url: &str) -> Result<(String, String), String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("only http:// URLs are supported, got {url:?}"))?;
    let (addr, target) = match rest.split_once('/') {
        Some((addr, target)) => (addr, format!("/{target}")),
        None => (rest, "/".to_string()),
    };
    if addr.is_empty() {
        return Err(format!("no host in {url:?}"));
    }
    Ok((addr.to_string(), target))
}

fn main() {
    match run() {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
