//! Static bearer-token authentication and tenant-scoped authorization.
//!
//! Tokens live in a TOML-ish config file the operator writes by hand —
//! an array of `[[token]]` tables with exactly four quoted-string keys:
//!
//! ```toml
//! # Operators hold admin over every tenant; dashboards get read-only.
//! [[token]]
//! name = "ops"
//! secret = "swordfish"
//! tenant = "*"
//! scope = "admin"
//!
//! [[token]]
//! name = "scout-dashboard"
//! secret = "hunter2"
//! tenant = "scout"
//! scope = "read"
//! ```
//!
//! Only this subset of TOML is parsed (quoted strings, comments, blank
//! lines); anything else is a load-time error, so a typo fails fast
//! instead of silently dropping a token.  Secrets are compared in
//! constant time, and authorization is two independent checks: the
//! token's tenant binding (`*` = every tenant, and only `*`-bound tokens
//! may touch daemon-wide routes) and its [`Scope`] rank.

use std::fmt;
use std::fs;
use std::path::Path;

/// What a token is allowed to do, ranked: `Read < Operate < Admin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// Inspection only: status, replicas, fixes, episodes, metrics.
    Read,
    /// Fleet operations: add/remove/reconfigure replicas, drain, snapshot.
    Operate,
    /// Daemon administration: tenant create/drop, shutdown.
    Admin,
}

impl Scope {
    /// Stable lower-case label.
    pub fn label(&self) -> &'static str {
        match self {
            Scope::Read => "read",
            Scope::Operate => "operate",
            Scope::Admin => "admin",
        }
    }

    /// Parses a scope word from the token config.
    pub fn parse(text: &str) -> Result<Scope, String> {
        match text {
            "read" => Ok(Scope::Read),
            "operate" => Ok(Scope::Operate),
            "admin" => Ok(Scope::Admin),
            other => Err(format!(
                "unknown scope {other:?} (try read, operate, admin)"
            )),
        }
    }

    /// Whether a token holding `self` may perform an action requiring
    /// `required`.
    pub fn allows(self, required: Scope) -> bool {
        self >= required
    }
}

/// One configured bearer token.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's name — what audit log lines identify requests by (the
    /// secret itself never appears in logs or errors).
    pub name: String,
    /// The bearer secret presented in `Authorization: Bearer <secret>`.
    secret: String,
    /// The tenant this token is bound to, or `*` for every tenant.
    pub tenant: String,
    /// The token's scope rank.
    pub scope: Scope,
}

impl Token {
    /// Builds a token directly (tests and embedders; files go through
    /// [`AuthConfig::parse`]).
    pub fn new(name: &str, secret: &str, tenant: &str, scope: Scope) -> Token {
        Token {
            name: name.to_string(),
            secret: secret.to_string(),
            tenant: tenant.to_string(),
            scope,
        }
    }

    /// Whether this token is bound to every tenant.
    pub fn is_wildcard(&self) -> bool {
        self.tenant == "*"
    }
}

/// Why a request was denied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// No credentials, or credentials that match no token (HTTP 401).
    Unauthorized(String),
    /// A valid token without the required tenant binding or scope
    /// (HTTP 403).
    Forbidden(String),
}

impl AuthError {
    /// The HTTP status this denial maps to.
    pub fn status(&self) -> u16 {
        match self {
            AuthError::Unauthorized(_) => 401,
            AuthError::Forbidden(_) => 403,
        }
    }

    /// The human-readable cause.
    pub fn message(&self) -> &str {
        match self {
            AuthError::Unauthorized(message) | AuthError::Forbidden(message) => message,
        }
    }
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.status(), self.message())
    }
}

/// The gateway's token set.
#[derive(Debug, Clone, Default)]
pub struct AuthConfig {
    tokens: Vec<Token>,
}

impl AuthConfig {
    /// A config holding these tokens.
    pub fn new(tokens: Vec<Token>) -> AuthConfig {
        AuthConfig { tokens }
    }

    /// Number of configured tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether no tokens are configured (every request will be denied).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Loads and parses a token file.
    pub fn load(path: &Path) -> Result<AuthConfig, String> {
        let text = fs::read_to_string(path)
            .map_err(|err| format!("cannot read token file {path:?}: {err}"))?;
        AuthConfig::parse(&text)
    }

    /// Parses the TOML subset described in the [module docs](self).
    pub fn parse(text: &str) -> Result<AuthConfig, String> {
        let mut tokens: Vec<Token> = Vec::new();
        let mut current: Option<PartialToken> = None;
        for (index, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let describe = |message: String| format!("token file line {}: {message}", index + 1);
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[token]]" {
                if let Some(partial) = current.take() {
                    tokens.push(partial.finish().map_err(describe)?);
                }
                current = Some(PartialToken::default());
                continue;
            }
            let partial = current
                .as_mut()
                .ok_or_else(|| describe("keys must follow a [[token]] header".to_string()))?;
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| describe(format!("expected key = \"value\", got {line:?}")))?;
            let value = parse_quoted(value.trim()).map_err(&describe)?;
            partial.set(key.trim(), value).map_err(describe)?;
        }
        if let Some(partial) = current.take() {
            tokens.push(
                partial
                    .finish()
                    .map_err(|message| format!("token file: {message}"))?,
            );
        }
        for (i, token) in tokens.iter().enumerate() {
            if tokens[..i].iter().any(|other| other.name == token.name) {
                return Err(format!("duplicate token name {:?}", token.name));
            }
        }
        Ok(AuthConfig { tokens })
    }

    /// Resolves a presented bearer secret to its token.  Every configured
    /// secret is compared (in constant time per comparison) so the number
    /// of comparisons does not depend on which token matched.
    pub fn authenticate(&self, bearer: Option<&str>) -> Result<&Token, AuthError> {
        let bearer = bearer.ok_or_else(|| {
            AuthError::Unauthorized("missing Authorization: Bearer header".to_string())
        })?;
        let mut matched: Option<&Token> = None;
        for token in &self.tokens {
            if constant_time_eq(token.secret.as_bytes(), bearer.as_bytes()) {
                matched = matched.or(Some(token));
            }
        }
        matched.ok_or_else(|| AuthError::Unauthorized("unknown bearer token".to_string()))
    }

    /// Full check for one request: authenticate the bearer, then authorize
    /// it against the route's tenant (`None` = daemon-wide) and scope.
    pub fn authorize(
        &self,
        bearer: Option<&str>,
        tenant: Option<&str>,
        required: Scope,
    ) -> Result<&Token, AuthError> {
        let token = self.authenticate(bearer)?;
        match tenant {
            None if !token.is_wildcard() => {
                return Err(AuthError::Forbidden(format!(
                    "token {:?} is bound to tenant {:?}; daemon-wide routes need a *-bound token",
                    token.name, token.tenant
                )));
            }
            Some(tenant) if !token.is_wildcard() && token.tenant != tenant => {
                return Err(AuthError::Forbidden(format!(
                    "token {:?} is bound to tenant {:?}, not {tenant:?}",
                    token.name, token.tenant
                )));
            }
            _ => {}
        }
        if !token.scope.allows(required) {
            return Err(AuthError::Forbidden(format!(
                "token {:?} has scope {}, this route needs {}",
                token.name,
                token.scope.label(),
                required.label()
            )));
        }
        Ok(token)
    }
}

#[derive(Default)]
struct PartialToken {
    name: Option<String>,
    secret: Option<String>,
    tenant: Option<String>,
    scope: Option<Scope>,
}

impl PartialToken {
    fn set(&mut self, key: &str, value: String) -> Result<(), String> {
        let slot = match key {
            "name" => &mut self.name,
            "secret" => &mut self.secret,
            "tenant" => &mut self.tenant,
            "scope" => {
                if self.scope.is_some() {
                    return Err("duplicate key scope".to_string());
                }
                self.scope = Some(Scope::parse(&value)?);
                return Ok(());
            }
            other => return Err(format!("unknown key {other:?}")),
        };
        if slot.is_some() {
            return Err(format!("duplicate key {key:?}"));
        }
        *slot = Some(value);
        Ok(())
    }

    fn finish(self) -> Result<Token, String> {
        match (self.name, self.secret, self.tenant, self.scope) {
            (Some(name), Some(secret), Some(tenant), Some(scope)) => {
                if secret.is_empty() {
                    return Err(format!("token {name:?} has an empty secret"));
                }
                Ok(Token {
                    name,
                    secret,
                    tenant,
                    scope,
                })
            }
            _ => Err("a [[token]] needs name, secret, tenant, and scope".to_string()),
        }
    }
}

fn parse_quoted(text: &str) -> Result<String, String> {
    let inner = text
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got {text:?}"))?;
    if inner.contains('"') || inner.contains('\\') {
        return Err(format!("escapes are not supported in {text:?}"));
    }
    Ok(inner.to_string())
}

/// Compares two byte strings without an early exit: the loop always runs
/// over the longer input, so timing reveals (at most) the configured
/// secret's length class, never a matching prefix.
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= usize::from(x ^ y);
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    const FILE: &str = r#"
# operator token
[[token]]
name = "ops"
secret = "swordfish"
tenant = "*"
scope = "admin"

[[token]]
name = "scout-ro"
secret = "hunter2"
tenant = "scout"
scope = "read"
"#;

    #[test]
    fn parses_the_token_file_subset() {
        let config = AuthConfig::parse(FILE).unwrap();
        assert_eq!(config.len(), 2);
        let ops = config.authenticate(Some("swordfish")).unwrap();
        assert_eq!((ops.name.as_str(), ops.scope), ("ops", Scope::Admin));
        assert!(ops.is_wildcard());
    }

    #[test]
    fn rejects_malformed_token_files() {
        assert!(
            AuthConfig::parse("name = \"x\"").is_err(),
            "key before table"
        );
        assert!(
            AuthConfig::parse("[[token]]\nname = \"x\"").is_err(),
            "incomplete"
        );
        assert!(AuthConfig::parse("[[token]]\nname = unquoted").is_err());
        assert!(AuthConfig::parse(
            "[[token]]\nname=\"a\"\nsecret=\"s\"\ntenant=\"*\"\nscope=\"root\""
        )
        .is_err());
        let dup = format!(
            "{FILE}\n[[token]]\nname = \"ops\"\nsecret = \"x\"\ntenant = \"*\"\nscope = \"read\""
        );
        assert!(AuthConfig::parse(&dup).is_err(), "duplicate name");
    }

    #[test]
    fn authentication_distinguishes_missing_from_wrong() {
        let config = AuthConfig::parse(FILE).unwrap();
        assert_eq!(config.authenticate(None).unwrap_err().status(), 401);
        assert_eq!(
            config.authenticate(Some("sword")).unwrap_err().status(),
            401
        );
    }

    #[test]
    fn authorization_checks_tenant_binding_then_scope() {
        let config = AuthConfig::parse(FILE).unwrap();
        // Wildcard admin reaches everything.
        assert!(config
            .authorize(Some("swordfish"), None, Scope::Admin)
            .is_ok());
        assert!(config
            .authorize(Some("swordfish"), Some("victim"), Scope::Operate)
            .is_ok());
        // Tenant-bound read token: own tenant + read only.
        assert!(config
            .authorize(Some("hunter2"), Some("scout"), Scope::Read)
            .is_ok());
        let wrong_tenant = config
            .authorize(Some("hunter2"), Some("victim"), Scope::Read)
            .unwrap_err();
        assert_eq!(wrong_tenant.status(), 403);
        let wrong_scope = config
            .authorize(Some("hunter2"), Some("scout"), Scope::Operate)
            .unwrap_err();
        assert_eq!(wrong_scope.status(), 403);
        let global = config
            .authorize(Some("hunter2"), None, Scope::Read)
            .unwrap_err();
        assert_eq!(global.status(), 403);
    }

    #[test]
    fn scope_ranks_and_constant_time_eq_behave() {
        assert!(Scope::Admin.allows(Scope::Read));
        assert!(Scope::Operate.allows(Scope::Operate));
        assert!(!Scope::Read.allows(Scope::Operate));
        assert!(constant_time_eq(b"secret", b"secret"));
        assert!(!constant_time_eq(b"secret", b"secreT"));
        assert!(!constant_time_eq(b"secret", b"secret2"));
        assert!(!constant_time_eq(b"", b"x"));
        assert!(constant_time_eq(b"", b""));
    }
}
