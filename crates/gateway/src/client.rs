//! A minimal HTTP client for the gateway's own dialect — enough for the
//! `selfheal-http` binary, the smoke scripts, and the integration tests to
//! talk to the server without curl.
//!
//! Supports exactly what [`crate::server`] emits: fixed-length JSON
//! responses and chunked JSON-lines streams, over plain TCP.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One completed request/response exchange.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
}

impl HttpReply {
    /// Whether the status is a success (2xx).
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Performs one request against `addr` (`host:port`).  `target` is the
/// path plus optional query; `token` becomes a bearer header; `body` is
/// sent with a `Content-Length`.  The connection is not reused.
pub fn request(
    addr: &str,
    method: &str,
    target: &str,
    token: Option<&str>,
    body: Option<&str>,
) -> io::Result<HttpReply> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let mut writer = stream.try_clone()?;
    write_request(&mut writer, addr, method, target, token, body)?;
    let mut reader = BufReader::new(stream);
    let (status, headers) = read_head(&mut reader)?;
    let body = match header(&headers, "content-length") {
        Some(length) => {
            let length: usize = length
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length"))?;
            let mut body = vec![0u8; length];
            reader.read_exact(&mut body)?;
            String::from_utf8_lossy(&body).into_owned()
        }
        None => {
            let mut body = String::new();
            reader.read_to_string(&mut body)?;
            body
        }
    };
    Ok(HttpReply { status, body })
}

/// Opens a streaming route and collects up to `max_lines` newline-delimited
/// lines from the chunked body (fewer if the server finishes the stream
/// first).  `timeout` bounds each read.
pub fn stream_lines(
    addr: &str,
    target: &str,
    token: Option<&str>,
    max_lines: usize,
    timeout: Duration,
) -> io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    write_request(&mut writer, addr, "GET", target, token, None)?;
    let mut reader = BufReader::new(stream);
    let (status, headers) = read_head(&mut reader)?;
    if status != 200 {
        return Err(io::Error::other(format!(
            "stream request failed with status {status}"
        )));
    }
    if !header(&headers, "transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked")) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "stream response is not chunked",
        ));
    }
    let mut text = String::new();
    let mut lines = Vec::new();
    loop {
        let size_line = read_line(&mut reader)?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad chunk size"))?;
        if size == 0 {
            break;
        }
        let mut chunk = vec![0u8; size + 2];
        reader.read_exact(&mut chunk)?;
        chunk.truncate(size);
        text.push_str(&String::from_utf8_lossy(&chunk));
        while let Some(offset) = text.find('\n') {
            let line: String = text.drain(..=offset).collect();
            lines.push(line.trim_end().to_string());
            if lines.len() >= max_lines {
                return Ok(lines);
            }
        }
    }
    Ok(lines)
}

fn write_request(
    writer: &mut TcpStream,
    addr: &str,
    method: &str,
    target: &str,
    token: Option<&str>,
    body: Option<&str>,
) -> io::Result<()> {
    let mut head = format!("{method} {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    if let Some(token) = token {
        head.push_str(&format!("Authorization: Bearer {token}\r\n"));
    }
    if let Some(body) = body {
        head.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            body.len()
        ));
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    if let Some(body) = body {
        writer.write_all(body.as_bytes())?;
    }
    writer.flush()
}

fn read_head<R: BufRead>(reader: &mut R) -> io::Result<(u16, Vec<(String, String)>)> {
    let status_line = read_line(reader)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok((status, headers))
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, value)| value.as_str())
}

fn read_line<R: BufRead>(reader: &mut R) -> io::Result<String> {
    let mut line = String::new();
    let read = reader.read_line(&mut line)?;
    if read == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        ));
    }
    Ok(line.trim_end_matches(['\r', '\n']).to_string())
}
