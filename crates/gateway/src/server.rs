//! The gateway server: accepts HTTP connections, authorizes each request,
//! and proxies it onto the daemon's Unix-socket control plane.
//!
//! The order of checks is deliberate: **route first, then authenticate**.
//! An unroutable path is a 404 for everyone (no information beyond the
//! route table leaks), while a routable request without the right token is
//! a 401/403 *before* anything touches the daemon.  Mutating routes get an
//! audit line — token name, tenant, method, path, final status — whether
//! they succeeded or were denied; secrets never appear in the log.
//!
//! Replies translate mechanically: a daemon `OK` becomes
//! `200 {"ok":true,"lines":[...]}` (the payload lines, verbatim), a daemon
//! `ERR <msg>` becomes `400 {"error":"<msg>"}`, and a transport failure
//! reaching the daemon becomes `502`.  The streaming route holds its
//! connection open and forwards one `METRICS` JSON line per poll as a
//! chunked body.

use crate::auth::AuthConfig;
use crate::http::{read_request, ChunkWriter, HttpError, Request, Response};
use crate::router::{route, Lowered, Plan};
use selfheal_daemon::protocol::{is_ok_reply, is_terminator, render_command, send_command};
use selfheal_jsonl::push_json_string;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, SystemTime};

/// Launch options for a [`Gateway`].
#[derive(Debug, Clone)]
pub struct GatewayOptions {
    /// TCP address to listen on (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// The daemon's control socket.
    pub socket: PathBuf,
    /// The bearer-token set.
    pub auth: AuthConfig,
    /// Audit log file for mutating requests (append); `None` disables.
    pub audit: Option<PathBuf>,
    /// Pause between polls on the streaming metrics route.
    pub stream_interval: Duration,
    /// Per-command timeout toward the daemon.
    pub command_timeout: Duration,
}

impl GatewayOptions {
    /// Defaults: given listen address and daemon socket, no audit log,
    /// 200 ms stream interval, 30 s command timeout.
    pub fn new(listen: impl Into<String>, socket: impl Into<PathBuf>, auth: AuthConfig) -> Self {
        GatewayOptions {
            listen: listen.into(),
            socket: socket.into(),
            auth,
            audit: None,
            stream_interval: Duration::from_millis(200),
            command_timeout: Duration::from_secs(30),
        }
    }
}

struct ServerShared {
    options: GatewayOptions,
    stop: AtomicBool,
    audit: Option<Mutex<File>>,
}

/// A running gateway server: an accept thread plus one thread per live
/// connection.  Dropping it stops accepting and joins every thread.
pub struct Gateway {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl Gateway {
    /// Binds the listen address and starts serving.
    pub fn launch(options: GatewayOptions) -> Result<Gateway, String> {
        let audit = match &options.audit {
            Some(path) => Some(Mutex::new(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|err| format!("cannot open audit log {path:?}: {err}"))?,
            )),
            None => None,
        };
        let listener = TcpListener::bind(&options.listen)
            .map_err(|err| format!("cannot bind {:?}: {err}", options.listen))?;
        listener
            .set_nonblocking(true)
            .map_err(|err| format!("cannot configure listener: {err}"))?;
        let addr = listener
            .local_addr()
            .map_err(|err| format!("cannot read bound address: {err}"))?;
        let shared = Arc::new(ServerShared {
            options,
            stop: AtomicBool::new(false),
            audit,
        });
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_connections = Arc::clone(&connections);
        let accept = thread::Builder::new()
            .name("gateway-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared, accept_connections))
            .map_err(|err| format!("cannot spawn the accept thread: {err}"))?;
        Ok(Gateway {
            addr,
            shared,
            accept: Some(accept),
            connections,
        })
    }

    /// The address actually bound (resolves a `:0` port request).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks every server thread to wind down.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Blocks until the accept thread exits (it only does on [`stop`]
    /// — this is the serving binary's park position).
    ///
    /// [`stop`]: Gateway::stop
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.stop();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.connections.lock().expect("connection list poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<ServerShared>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(&shared);
                if let Ok(handle) = thread::Builder::new()
                    .name("gateway-conn".to_string())
                    .spawn(move || {
                        let _ = serve_connection(stream, &conn_shared);
                    })
                {
                    let mut handles = connections.lock().expect("connection list poisoned");
                    handles.retain(|h| !h.is_finished());
                    handles.push(handle);
                }
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &ServerShared) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut idle = 0u32;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return Ok(()),
            Err(HttpError::Io(err))
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut =>
            {
                idle += 1;
                if idle > 150 {
                    // Five idle minutes; cut the keep-alive connection loose.
                    return Ok(());
                }
                continue;
            }
            Err(HttpError::Io(err)) => return Err(err),
            Err(HttpError::Bad { status, message }) => {
                let response = Response::json(status, error_body(&message));
                let _ = response.write_to(&mut writer, false);
                return Ok(());
            }
        };
        idle = 0;
        let keep_alive = request.keep_alive();
        match handle_request(shared, &request, &mut writer)? {
            Handled::Response(response) => response.write_to(&mut writer, keep_alive)?,
            Handled::Streamed => return Ok(()),
        }
        if !keep_alive {
            return Ok(());
        }
    }
}

enum Handled {
    Response(Response),
    Streamed,
}

fn handle_request(
    shared: &ServerShared,
    request: &Request,
    writer: &mut TcpStream,
) -> io::Result<Handled> {
    // Route first: unroutable paths 404 without touching credentials.
    let lowered = match route(
        &request.method,
        &request.path,
        request.query.as_deref(),
        &request.body,
    ) {
        Ok(lowered) => lowered,
        Err(err) => {
            return Ok(Handled::Response(Response::json(
                err.status,
                error_body(&err.message),
            )))
        }
    };
    let token = match shared.options.auth.authorize(
        request.bearer_token(),
        lowered.tenant.as_deref(),
        lowered.scope,
    ) {
        Ok(token) => token,
        Err(denied) => {
            if lowered.mutating {
                // A 403 carries an authenticated token — name it in the
                // audit trail; only a 401 stays anonymous.
                let name = shared
                    .options
                    .auth
                    .authenticate(request.bearer_token())
                    .map(|token| token.name.as_str())
                    .unwrap_or("-");
                audit(shared, name, &lowered, request, denied.status());
            }
            return Ok(Handled::Response(Response::json(
                denied.status(),
                error_body(denied.message()),
            )));
        }
    };
    let token_name = token.name.clone();
    match &lowered.plan {
        Plan::Command(command) => {
            let response = execute_command(shared, command);
            if lowered.mutating {
                audit(shared, &token_name, &lowered, request, response.status);
            }
            Ok(Handled::Response(response))
        }
        Plan::MetricsStream { tenant } => {
            stream_metrics(shared, tenant, writer)?;
            Ok(Handled::Streamed)
        }
    }
}

/// Sends one rendered command to the daemon and translates the reply.
fn execute_command(shared: &ServerShared, command: &selfheal_daemon::Command) -> Response {
    let line = render_command(command);
    match send_command(
        &shared.options.socket,
        &line,
        shared.options.command_timeout,
    ) {
        Err(err) => Response::json(
            502,
            error_body(&format!(
                "daemon unreachable at {:?}: {err}",
                shared.options.socket
            )),
        ),
        Ok(reply) if is_ok_reply(&reply) => {
            let mut body = String::from("{\"ok\":true,\"lines\":[");
            let mut first = true;
            for payload in reply.lines().filter(|l| !is_terminator(l)) {
                if !first {
                    body.push(',');
                }
                first = false;
                push_json_string(&mut body, payload);
            }
            body.push_str("]}");
            Response::json(200, body)
        }
        Ok(reply) => {
            let message = reply
                .lines()
                .last()
                .and_then(|l| l.strip_prefix("ERR "))
                .unwrap_or("daemon replied with a malformed terminator");
            Response::json(400, error_body(message))
        }
    }
}

/// The streaming route: poll `@<tenant> METRICS` and forward each JSON
/// line as one chunk until the client hangs up, the daemon goes away, or
/// the server stops.
fn stream_metrics(shared: &ServerShared, tenant: &str, writer: &mut TcpStream) -> io::Result<()> {
    let mut chunks = ChunkWriter::start(writer, 200, "application/jsonl")?;
    let line = format!("@{tenant} METRICS");
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match send_command(
            &shared.options.socket,
            &line,
            shared.options.command_timeout,
        ) {
            Ok(reply) if is_ok_reply(&reply) => {
                let Some(payload) = reply.lines().find(|l| !is_terminator(l)) else {
                    break;
                };
                if chunks.chunk(&format!("{payload}\n")).is_err() {
                    // The client hung up; nothing left to finish.
                    return Ok(());
                }
            }
            Ok(reply) => {
                let message = reply.lines().last().unwrap_or("ERR").to_string();
                let _ = chunks.chunk(&format!("{}\n", error_body(&message)));
                break;
            }
            Err(err) => {
                let _ = chunks.chunk(&format!(
                    "{}\n",
                    error_body(&format!("daemon unreachable: {err}"))
                ));
                break;
            }
        }
        thread::sleep(shared.options.stream_interval);
    }
    chunks.finish()
}

fn error_body(message: &str) -> String {
    let mut body = String::from("{\"error\":");
    push_json_string(&mut body, message);
    body.push('}');
    body
}

/// One audit line per mutating request, successful or denied.  `token` is
/// the token *name* (never the secret), `-` when unauthenticated.
fn audit(shared: &ServerShared, token: &str, lowered: &Lowered, request: &Request, status: u16) {
    let Some(file) = &shared.audit else {
        return;
    };
    let ts = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let tenant = lowered.tenant.as_deref().unwrap_or("*");
    let line = format!(
        "ts={ts} token={token} tenant={tenant} method={} path={} status={status}",
        request.method, request.path
    );
    if let Ok(mut file) = file.lock() {
        let _ = writeln!(file, "{line}");
    }
}
