//! A hand-rolled HTTP/1.1 subset: exactly what the gateway needs and no
//! more (the build has no registry access, so no hyper).
//!
//! Supported: request-line + header parsing with hard size bounds,
//! `Content-Length` bodies, keep-alive, fixed-length JSON responses, and
//! chunked transfer encoding for the streaming metrics endpoint.  Not
//! supported (requests carrying them are rejected, not misread): request
//! trailers, `Transfer-Encoding` on requests, HTTP/2, TLS.

use std::io::{self, BufRead, Write};

/// Hard cap on the request line plus all header bytes.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;

/// Hard cap on a request body (`Content-Length`).
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, upper-cased (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Path component of the request target (before any `?`).
    pub path: String,
    /// Query string (after `?`), when present.
    pub query: Option<String>,
    /// Header name/value pairs, names lower-cased, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(key, _)| *key == name)
            .map(|(_, value)| value.as_str())
    }

    /// The bearer token carried in the `Authorization` header, if any.
    pub fn bearer_token(&self) -> Option<&str> {
        self.header("authorization")?
            .strip_prefix("Bearer ")
            .map(str::trim)
            .filter(|token| !token.is_empty())
    }

    /// Whether the client asked to keep the connection open after this
    /// exchange (HTTP/1.1 default; an explicit `Connection: close` wins).
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|value| value.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Connection-level failure; drop the connection without replying.
    Io(io::Error),
    /// Protocol violation; reply with this status, then close.
    Bad {
        /// HTTP status to send (400 or 413).
        status: u16,
        /// Human-readable cause, returned in the error body.
        message: String,
    },
}

impl From<io::Error> for HttpError {
    fn from(err: io::Error) -> Self {
        HttpError::Io(err)
    }
}

fn bad(message: impl Into<String>) -> HttpError {
    HttpError::Bad {
        status: 400,
        message: message.into(),
    }
}

fn too_large(message: impl Into<String>) -> HttpError {
    HttpError::Bad {
        status: 413,
        message: message.into(),
    }
}

/// Reads one request off the connection.  `Ok(None)` is a clean EOF
/// between requests (the keep-alive peer hung up).
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, HttpError> {
    let mut header_bytes = 0usize;
    let request_line = match read_header_line(reader, &mut header_bytes)? {
        Some(line) => line,
        None => return Ok(None),
    };
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| bad("request line has no target"))?;
    let version = parts
        .next()
        .ok_or_else(|| bad("request line has no HTTP version"))?;
    if parts.next().is_some() {
        return Err(bad("malformed request line"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(bad(format!("unsupported version {version:?}")));
    }
    if !target.starts_with('/') {
        return Err(bad(format!("unsupported request target {target:?}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_string(), Some(query.to_string())),
        None => (target.to_string(), None),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_header_line(reader, &mut header_bytes)?
            .ok_or_else(|| bad("connection closed mid-headers"))?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad(format!("malformed header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(bad("Transfer-Encoding request bodies are not supported"));
    }
    let body = match request.header("content-length") {
        None => Vec::new(),
        Some(text) => {
            let length: usize = text
                .parse()
                .map_err(|_| bad(format!("bad Content-Length {text:?}")))?;
            if length > MAX_BODY_BYTES {
                return Err(too_large(format!(
                    "body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte cap"
                )));
            }
            let mut body = vec![0u8; length];
            reader.read_exact(&mut body)?;
            body
        }
    };
    Ok(Some(Request { body, ..request }))
}

/// Reads one CRLF- (or bare-LF-) terminated line, charging its bytes
/// against the per-request header budget.  `None` = EOF before any byte.
fn read_header_line<R: BufRead>(
    reader: &mut R,
    header_bytes: &mut usize,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(bad("connection closed mid-line"));
            }
            Ok(_) => {
                *header_bytes += 1;
                if *header_bytes > MAX_HEADER_BYTES {
                    return Err(too_large(format!(
                        "headers exceed the {MAX_HEADER_BYTES}-byte cap"
                    )));
                }
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line)
                        .map_err(|_| bad("header line is not valid UTF-8"))?;
                    return Ok(Some(text));
                }
                line.push(byte[0]);
            }
            Err(err) => return Err(HttpError::Io(err)),
        }
    }
}

/// The reason phrase for the statuses the gateway emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        502 => "Bad Gateway",
        _ => "Response",
    }
}

/// A fixed-length JSON response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The (already-rendered) JSON body.
    pub body: String,
}

impl Response {
    /// A JSON response with this status and body.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
        }
    }

    /// Serializes status line, headers, and body onto the wire.
    pub fn write_to<W: Write>(&self, writer: &mut W, keep_alive: bool) -> io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{}",
            self.status,
            status_reason(self.status),
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
            self.body
        )?;
        writer.flush()
    }
}

/// Writes a chunked (`Transfer-Encoding: chunked`) response body piece by
/// piece — the streaming half of the gateway.  The connection always
/// closes after a stream.
pub struct ChunkWriter<W: Write> {
    inner: W,
}

impl<W: Write> ChunkWriter<W> {
    /// Writes the response head and returns the writer for the chunks.
    pub fn start(mut inner: W, status: u16, content_type: &str) -> io::Result<ChunkWriter<W>> {
        write!(
            inner,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status,
            status_reason(status),
            content_type
        )?;
        inner.flush()?;
        Ok(ChunkWriter { inner })
    }

    /// Writes one chunk (empty input is skipped: a zero-length chunk would
    /// terminate the stream).
    pub fn chunk(&mut self, data: &str) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.inner, "{:x}\r\n{}\r\n", data.len(), data)?;
        self.inner.flush()
    }

    /// Writes the terminating zero-length chunk.
    pub fn finish(mut self) -> io::Result<()> {
        self.inner.write_all(b"0\r\n\r\n")?;
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_full_request_with_body_and_query() {
        let raw = "POST /v1/tenants?x=1 HTTP/1.1\r\nHost: h\r\nAuthorization: Bearer s3cret\r\nContent-Length: 4\r\n\r\nbody";
        let request = parse(raw).unwrap().unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/tenants");
        assert_eq!(request.query.as_deref(), Some("x=1"));
        assert_eq!(request.bearer_token(), Some("s3cret"));
        assert_eq!(request.body, b"body");
        assert!(request.keep_alive());
    }

    #[test]
    fn eof_between_requests_is_clean() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn connection_close_and_bare_lf_are_honored() {
        let request = parse("GET / HTTP/1.1\nConnection: close\n\n")
            .unwrap()
            .unwrap();
        assert!(!request.keep_alive());
    }

    #[test]
    fn rejects_oversized_headers_and_bodies() {
        let raw = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "p".repeat(MAX_HEADER_BYTES)
        );
        assert!(matches!(
            parse(&raw),
            Err(HttpError::Bad { status: 413, .. })
        ));
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(&raw),
            Err(HttpError::Bad { status: 413, .. })
        ));
    }

    #[test]
    fn rejects_malformed_request_lines() {
        assert!(matches!(
            parse("GET\r\n\r\n"),
            Err(HttpError::Bad { status: 400, .. })
        ));
        assert!(matches!(
            parse("GET / HTTP/2\r\n\r\n"),
            Err(HttpError::Bad { status: 400, .. })
        ));
        assert!(matches!(
            parse("GET http://x/ HTTP/1.1 extra\r\n\r\n"),
            Err(HttpError::Bad { status: 400, .. })
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::Bad { status: 400, .. })
        ));
    }

    #[test]
    fn response_and_chunks_serialize_to_the_wire_format() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));

        let mut out = Vec::new();
        let mut chunks = ChunkWriter::start(&mut out, 200, "application/jsonl").unwrap();
        chunks.chunk("{\"epoch\":1}\n").unwrap();
        chunks.chunk("").unwrap();
        chunks.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("c\r\n{\"epoch\":1}\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }
}
