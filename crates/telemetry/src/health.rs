//! Health reporting for long-lived fleets: per-replica liveness records and
//! the fleet-wide roll-up a resident supervisor emits as a periodic
//! JSON-lines metrics stream.
//!
//! The structs here are deliberately plain data — the supervisor that owns
//! the replicas fills them in at its epoch barriers; this crate only defines
//! the schema and the (hand-rolled, dependency-free) JSON rendering, the
//! same way [`crate::export`] handles CSV.

use crate::Tick;
use selfheal_jsonl::{push_f64, push_json_string};

/// The lifecycle state of one supervised replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// The replica's runner is live and advancing ticks.
    Running,
    /// The runner panicked; the supervisor is holding the replica in
    /// backoff before building a replacement runner.
    Restarting,
    /// The replica exhausted its restart budget and was retired.
    Failed,
}

impl ReplicaState {
    /// Stable lower-case label (used in control-plane replies and metrics
    /// lines).
    pub fn label(&self) -> &'static str {
        match self {
            ReplicaState::Running => "running",
            ReplicaState::Restarting => "restarting",
            ReplicaState::Failed => "failed",
        }
    }
}

/// One replica's health record, as tracked by a supervisor at epoch
/// barriers.
#[derive(Debug, Clone)]
pub struct ReplicaHealth {
    /// The replica's fleet-unique id (never reused after removal).
    pub id: usize,
    /// Human-readable label of the replica's fault profile.
    pub profile: String,
    /// Current lifecycle state.
    pub state: ReplicaState,
    /// Simulated ticks advanced across every runner incarnation.
    pub ticks: Tick,
    /// Failure episodes closed so far (current incarnation).
    pub episodes: usize,
    /// Failure episodes currently open (0 or 1 per replica).
    pub open_episodes: usize,
    /// Fix attempts initiated so far (current incarnation).
    pub fixes_initiated: u64,
    /// Times the supervisor rebuilt this replica's runner after a panic.
    pub restarts: u32,
    /// Milliseconds (since the supervisor started) of the last epoch this
    /// replica reported in.
    pub last_heartbeat_ms: u64,
    /// Message of the most recent panic, when any.
    pub last_error: Option<String>,
}

impl ReplicaHealth {
    /// Renders the record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"id\":");
        out.push_str(&self.id.to_string());
        out.push_str(",\"profile\":");
        push_json_string(&mut out, &self.profile);
        out.push_str(",\"state\":");
        push_json_string(&mut out, self.state.label());
        out.push_str(",\"ticks\":");
        out.push_str(&self.ticks.to_string());
        out.push_str(",\"episodes\":");
        out.push_str(&self.episodes.to_string());
        out.push_str(",\"open_episodes\":");
        out.push_str(&self.open_episodes.to_string());
        out.push_str(",\"fixes_initiated\":");
        out.push_str(&self.fixes_initiated.to_string());
        out.push_str(",\"restarts\":");
        out.push_str(&self.restarts.to_string());
        out.push_str(",\"last_heartbeat_ms\":");
        out.push_str(&self.last_heartbeat_ms.to_string());
        if let Some(error) = &self.last_error {
            out.push_str(",\"last_error\":");
            push_json_string(&mut out, error);
        }
        out.push('}');
        out
    }
}

/// Fleet-wide health roll-up: what a resident supervisor knows at one epoch
/// barrier, rendered as one JSON line per emission for scraping.
#[derive(Debug, Clone)]
pub struct FleetHealth {
    /// Epochs the supervisor has completed.
    pub epoch: u64,
    /// Milliseconds since the supervisor started.
    pub uptime_ms: u64,
    /// Total simulated ticks across all replica incarnations.
    pub total_ticks: Tick,
    /// Replicas currently running.
    pub running: usize,
    /// Replicas waiting out a restart backoff.
    pub restarting: usize,
    /// Replicas retired after exhausting their restart budget.
    pub failed: usize,
    /// Failure episodes currently open across the fleet.
    pub open_episodes: usize,
    /// Runner restarts performed so far, summed over replicas.
    pub restarts: u64,
    /// Successful-fix examples the shared store has learned.
    pub fixes_known: usize,
    /// Store updates recorded but not yet folded into the model.
    pub pending_updates: usize,
    /// Simulated ticks per wall-clock second since the supervisor started.
    pub ticks_per_sec: f64,
    /// Replica the fleet-wide adversary struck at the last barrier, when
    /// the adversarial chaos engine is enabled and found a target.
    pub adversary_target: Option<usize>,
    /// The tenant this fleet serves, when the supervisor runs inside a
    /// multi-tenant daemon; standalone fleets leave it unset and the key
    /// is omitted from the JSON line.
    pub tenant: Option<String>,
}

impl FleetHealth {
    /// Aggregates the per-replica counters shared with
    /// [`ReplicaHealth`]; store- and clock-derived fields stay as the
    /// caller set them on `self`.
    pub fn absorb_replicas<'a>(&mut self, replicas: impl IntoIterator<Item = &'a ReplicaHealth>) {
        for replica in replicas {
            match replica.state {
                ReplicaState::Running => self.running += 1,
                ReplicaState::Restarting => self.restarting += 1,
                ReplicaState::Failed => self.failed += 1,
            }
            self.total_ticks += replica.ticks;
            self.open_episodes += replica.open_episodes;
            self.restarts += u64::from(replica.restarts);
        }
    }

    /// Renders the roll-up as one JSON line (no trailing newline) — the
    /// daemon's periodic metrics emission.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(220);
        out.push_str("{\"epoch\":");
        out.push_str(&self.epoch.to_string());
        out.push_str(",\"uptime_ms\":");
        out.push_str(&self.uptime_ms.to_string());
        out.push_str(",\"total_ticks\":");
        out.push_str(&self.total_ticks.to_string());
        out.push_str(",\"running\":");
        out.push_str(&self.running.to_string());
        out.push_str(",\"restarting\":");
        out.push_str(&self.restarting.to_string());
        out.push_str(",\"failed\":");
        out.push_str(&self.failed.to_string());
        out.push_str(",\"open_episodes\":");
        out.push_str(&self.open_episodes.to_string());
        out.push_str(",\"restarts\":");
        out.push_str(&self.restarts.to_string());
        out.push_str(",\"fixes_known\":");
        out.push_str(&self.fixes_known.to_string());
        out.push_str(",\"pending_updates\":");
        out.push_str(&self.pending_updates.to_string());
        out.push_str(",\"ticks_per_sec\":");
        push_f64(&mut out, self.ticks_per_sec);
        if let Some(target) = self.adversary_target {
            out.push_str(",\"adversary_target\":");
            out.push_str(&target.to_string());
        }
        if let Some(tenant) = &self.tenant {
            out.push_str(",\"tenant\":");
            push_json_string(&mut out, tenant);
        }
        out.push('}');
        out
    }
}

impl Default for FleetHealth {
    fn default() -> Self {
        FleetHealth {
            epoch: 0,
            uptime_ms: 0,
            total_ticks: 0,
            running: 0,
            restarting: 0,
            failed: 0,
            open_episodes: 0,
            restarts: 0,
            fixes_known: 0,
            pending_updates: 0,
            ticks_per_sec: 0.0,
            adversary_target: None,
            tenant: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replica(id: usize, state: ReplicaState) -> ReplicaHealth {
        ReplicaHealth {
            id,
            profile: "mix:online:0.02".to_string(),
            state,
            ticks: 100,
            episodes: 2,
            open_episodes: usize::from(state == ReplicaState::Running),
            fixes_initiated: 3,
            restarts: 1,
            last_heartbeat_ms: 42,
            last_error: (state != ReplicaState::Running).then(|| "boom \"quoted\"".to_string()),
        }
    }

    #[test]
    fn replica_health_renders_json_with_escaping() {
        let json = replica(7, ReplicaState::Failed).to_json();
        assert!(json.starts_with("{\"id\":7,"));
        assert!(json.contains("\"state\":\"failed\""));
        assert!(json.contains("\"last_error\":\"boom \\\"quoted\\\"\""));
    }

    #[test]
    fn fleet_health_aggregates_replica_counters() {
        let replicas = [
            replica(0, ReplicaState::Running),
            replica(1, ReplicaState::Running),
            replica(2, ReplicaState::Restarting),
            replica(3, ReplicaState::Failed),
        ];
        let mut health = FleetHealth {
            epoch: 9,
            fixes_known: 5,
            ..FleetHealth::default()
        };
        health.absorb_replicas(&replicas);
        assert_eq!(
            (health.running, health.restarting, health.failed),
            (2, 1, 1)
        );
        assert_eq!(health.total_ticks, 400);
        assert_eq!(health.open_episodes, 2);
        assert_eq!(health.restarts, 4);
        let line = health.to_json_line();
        assert!(line.contains("\"epoch\":9"));
        assert!(line.contains("\"fixes_known\":5"));
        assert!(!line.contains("adversary_target"));
        assert!(!line.contains("tenant"));
        assert!(!line.contains('\n'));
        health.adversary_target = Some(2);
        assert!(health.to_json_line().contains("\"adversary_target\":2"));
        health.tenant = Some("scout".to_string());
        assert!(health.to_json_line().contains("\"tenant\":\"scout\""));
    }
}
