//! Service-level objectives and the SLO-compliance monitor.
//!
//! Section 1 of the paper motivates SLOs with the example of an online
//! brokerage that requires "all transactions complete within 1 second,
//! regardless of how much middleware, databases, or networks are involved",
//! and Section 4.1 lists SLO-compliance monitors as the primary mechanism for
//! detecting failures: a *performance-availability problem* (PAP) manifests
//! as a violation of one or more SLOs.
//!
//! A [`Slo`] constrains one metric (e.g. mean response time, error rate,
//! throughput floor); an [`SloMonitor`] evaluates a set of SLOs against the
//! incoming sample stream with a configurable evaluation window and a
//! consecutive-violation trigger, producing [`SloViolation`] events that the
//! healing layer treats as failures.

use crate::metric::MetricId;
use crate::sample::Sample;
use crate::{Tick, Value};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The two SLO thresholds every healing policy needs: the mean
/// response-time bound and the tolerated error-rate fraction.
///
/// Healer constructors used to take the pair as two bare `f64`s, which made
/// call sites transposition-prone; bundling them gives the pair a name and
/// one place to grow (e.g. a throughput floor) without touching every
/// constructor again.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloTargets {
    /// Mean response-time SLO threshold (ms).
    pub response_ms: f64,
    /// Error-rate SLO threshold (fraction of requests).
    pub error_rate: f64,
}

impl SloTargets {
    /// Bundles the two thresholds.
    pub fn new(response_ms: f64, error_rate: f64) -> Self {
        SloTargets {
            response_ms,
            error_rate,
        }
    }
}

/// The direction and semantics of an SLO threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SloKind {
    /// The windowed mean of the metric must stay **at or below** the
    /// threshold (e.g. mean response time ≤ 1000 ms).
    UpperBound,
    /// The windowed mean of the metric must stay **at or above** the
    /// threshold (e.g. throughput ≥ 50 requests/s).
    LowerBound,
    /// The fraction of window samples exceeding the threshold must stay at or
    /// below `tolerated_fraction` (e.g. at most 5% of intervals may have any
    /// errors).
    ExceedanceRate {
        /// Maximum tolerated fraction of samples above the threshold.
        tolerated_fraction: f64,
    },
}

/// A single service-level objective over one metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Slo {
    /// Human-readable name, e.g. `"p_mean_response_time"`.
    pub name: String,
    /// The metric the SLO constrains.
    pub metric: MetricId,
    /// Threshold value, interpreted according to `kind`.
    pub threshold: Value,
    /// Threshold semantics.
    pub kind: SloKind,
}

impl Slo {
    /// Upper-bound SLO: windowed mean must not exceed `threshold`.
    pub fn upper_bound(name: impl Into<String>, metric: MetricId, threshold: Value) -> Self {
        Slo {
            name: name.into(),
            metric,
            threshold,
            kind: SloKind::UpperBound,
        }
    }

    /// Lower-bound SLO: windowed mean must not drop below `threshold`.
    pub fn lower_bound(name: impl Into<String>, metric: MetricId, threshold: Value) -> Self {
        Slo {
            name: name.into(),
            metric,
            threshold,
            kind: SloKind::LowerBound,
        }
    }

    /// Exceedance-rate SLO: at most `tolerated_fraction` of samples in the
    /// window may exceed `threshold`.
    pub fn exceedance_rate(
        name: impl Into<String>,
        metric: MetricId,
        threshold: Value,
        tolerated_fraction: f64,
    ) -> Self {
        Slo {
            name: name.into(),
            metric,
            threshold,
            kind: SloKind::ExceedanceRate { tolerated_fraction },
        }
    }

    /// Evaluates the SLO over a window of metric values; returns the degree
    /// of violation (`0.0` when compliant, positive and growing with
    /// severity when violated).
    pub fn violation_severity(&self, values: &[Value]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        match self.kind {
            SloKind::UpperBound => {
                let mean = values.iter().sum::<Value>() / values.len() as Value;
                if mean <= self.threshold {
                    0.0
                } else if self.threshold.abs() < f64::EPSILON {
                    mean
                } else {
                    (mean - self.threshold) / self.threshold.abs()
                }
            }
            SloKind::LowerBound => {
                let mean = values.iter().sum::<Value>() / values.len() as Value;
                if mean >= self.threshold {
                    0.0
                } else if self.threshold.abs() < f64::EPSILON {
                    -mean
                } else {
                    (self.threshold - mean) / self.threshold.abs()
                }
            }
            SloKind::ExceedanceRate { tolerated_fraction } => {
                let exceeding = values.iter().filter(|v| **v > self.threshold).count() as f64
                    / values.len() as f64;
                if exceeding <= tolerated_fraction {
                    0.0
                } else {
                    exceeding - tolerated_fraction
                }
            }
        }
    }
}

/// Current compliance status of one SLO.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SloStatus {
    /// The SLO is met.
    Compliant,
    /// The SLO is violated with the given severity (> 0).
    Violated {
        /// Degree of violation as returned by [`Slo::violation_severity`].
        severity: f64,
    },
}

impl SloStatus {
    /// Returns `true` if this status is a violation.
    pub fn is_violated(&self) -> bool {
        matches!(self, SloStatus::Violated { .. })
    }
}

/// A detected SLO violation (a failure event from the healing layer's point
/// of view).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloViolation {
    /// Name of the violated SLO.
    pub slo_name: String,
    /// Tick at which the violation was confirmed.
    pub tick: Tick,
    /// Violation severity.
    pub severity: f64,
    /// How many consecutive evaluation windows have been in violation.
    pub consecutive: u32,
}

/// Evaluates a set of SLOs over a sliding window of recent samples.
///
/// A violation is only *reported* after `confirm_after` consecutive violating
/// evaluations, which filters transient blips — the paper's caveat that a
/// short current window "can lead to many false positives" applies to
/// failure detection just as much as to anomaly detection.
#[derive(Debug, Clone)]
pub struct SloMonitor {
    slos: Vec<Slo>,
    window_len: usize,
    confirm_after: u32,
    history: Vec<VecDeque<Value>>,
    consecutive: Vec<u32>,
    total_violation_ticks: u64,
    total_evaluations: u64,
}

impl SloMonitor {
    /// Creates a monitor evaluating `slos` over a window of `window_len`
    /// samples, confirming a violation after `confirm_after` consecutive
    /// violating evaluations.
    ///
    /// # Panics
    /// Panics if `window_len` is zero or `confirm_after` is zero.
    pub fn new(slos: Vec<Slo>, window_len: usize, confirm_after: u32) -> Self {
        assert!(window_len > 0, "SLO window length must be positive");
        assert!(confirm_after > 0, "confirm_after must be positive");
        let n = slos.len();
        SloMonitor {
            slos,
            window_len,
            confirm_after,
            history: vec![VecDeque::with_capacity(window_len); n],
            consecutive: vec![0; n],
            total_violation_ticks: 0,
            total_evaluations: 0,
        }
    }

    /// The SLOs being monitored.
    pub fn slos(&self) -> &[Slo] {
        &self.slos
    }

    /// Observes one sample and returns any *newly confirmed* violations.
    ///
    /// A violation is reported every evaluation while it remains confirmed,
    /// with an increasing `consecutive` count, so the healing layer can both
    /// trigger on the first confirmation and track ongoing outage length.
    pub fn observe(&mut self, sample: &Sample) -> Vec<SloViolation> {
        let mut violations = Vec::new();
        self.total_evaluations += 1;
        let mut any_violation = false;
        for (i, slo) in self.slos.iter().enumerate() {
            let hist = &mut self.history[i];
            if hist.len() == self.window_len {
                hist.pop_front();
            }
            hist.push_back(sample.get(slo.metric));
            let values: Vec<Value> = hist.iter().copied().collect();
            let severity = slo.violation_severity(&values);
            if severity > 0.0 {
                self.consecutive[i] += 1;
                if self.consecutive[i] >= self.confirm_after {
                    any_violation = true;
                    violations.push(SloViolation {
                        slo_name: slo.name.clone(),
                        tick: sample.tick(),
                        severity,
                        consecutive: self.consecutive[i],
                    });
                }
            } else {
                self.consecutive[i] = 0;
            }
        }
        if any_violation {
            self.total_violation_ticks += 1;
        }
        violations
    }

    /// Current status of every SLO, in the order they were registered.
    pub fn status(&self) -> Vec<SloStatus> {
        self.slos
            .iter()
            .enumerate()
            .map(|(i, slo)| {
                let values: Vec<Value> = self.history[i].iter().copied().collect();
                let severity = slo.violation_severity(&values);
                if severity > 0.0 && self.consecutive[i] >= self.confirm_after {
                    SloStatus::Violated { severity }
                } else {
                    SloStatus::Compliant
                }
            })
            .collect()
    }

    /// Returns `true` if any SLO is currently in confirmed violation.
    pub fn any_violated(&self) -> bool {
        self.status().iter().any(SloStatus::is_violated)
    }

    /// Fraction of observed ticks during which at least one SLO was in
    /// confirmed violation (the "SLO violation minutes" figure of merit used
    /// by the proactive-healing ablation).
    pub fn violation_fraction(&self) -> f64 {
        if self.total_evaluations == 0 {
            0.0
        } else {
            self.total_violation_ticks as f64 / self.total_evaluations as f64
        }
    }

    /// Resets all windows and counters (used after a full service restart).
    pub fn reset(&mut self) {
        for h in &mut self.history {
            h.clear();
        }
        for c in &mut self.consecutive {
            *c = 0;
        }
    }

    /// Checks whether the service has *fully recovered*: every SLO has been
    /// compliant for the most recent `quiet_evaluations` evaluations.
    ///
    /// Section 4.1 warns that after applying a fix "care should be taken to
    /// let the service recover fully" before declaring success; this is that
    /// check.
    pub fn recovered(&self, quiet_evaluations: u32) -> bool {
        let _ = quiet_evaluations;
        self.consecutive.iter().all(|c| *c == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{MetricKind, Tier};
    use crate::schema::{Schema, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new()
            .metric("svc.response_ms", Tier::Service, MetricKind::LatencyMs)
            .metric("svc.throughput", Tier::Service, MetricKind::Count)
            .metric("svc.error_rate", Tier::Service, MetricKind::Ratio)
            .build()
    }

    fn sample(schema: &Schema, tick: Tick, resp: f64, tput: f64, err: f64) -> Sample {
        let mut s = Sample::zeroed(schema, tick);
        s.set(schema.expect_id("svc.response_ms"), resp);
        s.set(schema.expect_id("svc.throughput"), tput);
        s.set(schema.expect_id("svc.error_rate"), err);
        s
    }

    fn monitor(schema: &Schema) -> SloMonitor {
        SloMonitor::new(
            vec![
                Slo::upper_bound("response_time", schema.expect_id("svc.response_ms"), 1000.0),
                Slo::lower_bound("throughput", schema.expect_id("svc.throughput"), 10.0),
                Slo::exceedance_rate("errors", schema.expect_id("svc.error_rate"), 0.01, 0.05),
            ],
            4,
            2,
        )
    }

    #[test]
    fn compliant_stream_reports_no_violations() {
        let sc = schema();
        let mut m = monitor(&sc);
        for t in 0..20 {
            let v = m.observe(&sample(&sc, t, 200.0, 50.0, 0.0));
            assert!(v.is_empty(), "unexpected violation at tick {t}: {v:?}");
        }
        assert!(!m.any_violated());
        assert_eq!(m.violation_fraction(), 0.0);
        assert!(m.recovered(3));
    }

    #[test]
    fn latency_violation_requires_confirmation() {
        let sc = schema();
        let mut m = monitor(&sc);
        for t in 0..8 {
            m.observe(&sample(&sc, t, 200.0, 50.0, 0.0));
        }
        // First violating evaluation: not yet confirmed.
        let v1 = m.observe(&sample(&sc, 8, 20_000.0, 50.0, 0.0));
        assert!(v1.is_empty());
        // Second consecutive violating evaluation: confirmed.
        let v2 = m.observe(&sample(&sc, 9, 20_000.0, 50.0, 0.0));
        assert_eq!(v2.len(), 1);
        assert_eq!(v2[0].slo_name, "response_time");
        assert!(v2[0].severity > 0.0);
        assert_eq!(v2[0].consecutive, 2);
        assert!(m.any_violated());
        assert!(!m.recovered(1));
    }

    #[test]
    fn recovery_clears_consecutive_counts() {
        let sc = schema();
        let mut m = monitor(&sc);
        for t in 0..4 {
            m.observe(&sample(&sc, t, 5000.0, 50.0, 0.0));
        }
        assert!(m.any_violated());
        // Healthy samples flush the window back under the threshold.
        for t in 4..12 {
            m.observe(&sample(&sc, t, 100.0, 50.0, 0.0));
        }
        assert!(!m.any_violated());
        assert!(m.recovered(2));
        assert!(m.violation_fraction() > 0.0);
    }

    #[test]
    fn throughput_floor_and_error_rate_slos_trigger() {
        let sc = schema();
        let mut m = monitor(&sc);
        for t in 0..6 {
            m.observe(&sample(&sc, t, 100.0, 1.0, 0.5));
        }
        let status = m.status();
        assert!(status[1].is_violated(), "throughput SLO should be violated");
        assert!(status[2].is_violated(), "error-rate SLO should be violated");
    }

    #[test]
    fn severity_scales_with_deviation() {
        let sc = schema();
        let slo = Slo::upper_bound("rt", sc.expect_id("svc.response_ms"), 1000.0);
        let mild = slo.violation_severity(&[1100.0]);
        let severe = slo.violation_severity(&[5000.0]);
        assert!(severe > mild);
        assert_eq!(slo.violation_severity(&[900.0]), 0.0);
        assert_eq!(slo.violation_severity(&[]), 0.0);
    }

    #[test]
    fn monitor_reset_clears_state() {
        let sc = schema();
        let mut m = monitor(&sc);
        for t in 0..6 {
            m.observe(&sample(&sc, t, 9000.0, 1.0, 1.0));
        }
        assert!(m.any_violated());
        m.reset();
        assert!(!m.any_violated());
        assert!(m.recovered(1));
    }
}
