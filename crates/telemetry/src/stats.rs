//! Descriptive statistics shared by the diagnosis and learning layers.
//!
//! These are deliberately small, dependency-free routines: summary
//! statistics, percentiles, exponentially weighted moving averages, and
//! fixed-bucket histograms.  The chi-square and correlation machinery used by
//! the diagnosis engines lives in `selfheal-learn::stats`, which builds on
//! top of these.

use crate::Value;
use serde::{Deserialize, Serialize};

/// Descriptive summary of a set of values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of values.
    pub count: usize,
    /// Arithmetic mean (0.0 when `count == 0`).
    pub mean: Value,
    /// Population variance (0.0 when `count == 0`).
    pub variance: Value,
    /// Minimum value (0.0 when `count == 0`).
    pub min: Value,
    /// Maximum value (0.0 when `count == 0`).
    pub max: Value,
}

impl Summary {
    /// Computes the summary of `values`.
    pub fn of(values: &[Value]) -> Self {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                variance: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let count = values.len();
        let mean = values.iter().sum::<Value>() / count as Value;
        let variance = values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<Value>()
            / count as Value;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            count,
            mean,
            variance,
            min,
            max,
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> Value {
        self.variance.sqrt()
    }

    /// Coefficient of variation (`std_dev / mean`); 0.0 when the mean is 0.
    pub fn coefficient_of_variation(&self) -> Value {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev() / self.mean.abs()
        }
    }
}

/// Returns the `q`-quantile (0.0 ≤ q ≤ 1.0) of `values` using linear
/// interpolation between closest ranks.
///
/// Returns 0.0 for an empty slice.  `q` is clamped to `[0, 1]`.
pub fn percentile(values: &[Value], q: f64) -> Value {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<Value> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite value in percentile"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Exponentially weighted moving average.
///
/// Used for smoothed online estimates of metric levels (e.g. the SLO
/// monitor's smoothed violation rate and the proactive forecaster's level
/// tracking).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<Value>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`; larger
    /// values weight recent observations more heavily.
    ///
    /// # Panics
    /// Panics if `alpha` is not in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Feeds one observation and returns the updated average.
    pub fn update(&mut self, observation: Value) -> Value {
        let next = match self.value {
            None => observation,
            Some(current) => self.alpha * observation + (1.0 - self.alpha) * current,
        };
        self.value = Some(next);
        next
    }

    /// Current smoothed value (`None` until the first observation).
    pub fn value(&self) -> Option<Value> {
        self.value
    }

    /// Resets the average to the uninitialized state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Fixed-bucket histogram over `[lo, hi)` with uniform bucket widths plus
/// overflow/underflow buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` uniform buckets over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "histogram range must be nonempty");
        assert!(buckets > 0, "histogram must have at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: Value) {
        self.count += 1;
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((value - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total number of recorded observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bucket counts (excluding under/overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Count of observations below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile from the bucket midpoints; returns the lower
    /// bound for q=0 and treats overflow observations as sitting at `hi`.
    pub fn approx_percentile(&self, q: f64) -> Value {
        if self.count == 0 {
            return self.lo;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil() as u64;
        let mut cumulative = self.underflow;
        if cumulative >= target && target > 0 {
            return self.lo;
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, b) in self.buckets.iter().enumerate() {
            cumulative += b;
            if cumulative >= target {
                return self.lo + width * (i as f64 + 0.5);
            }
        }
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.variance - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.coefficient_of_variation() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_slice_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&values, 0.0), 1.0);
        assert_eq!(percentile(&values, 1.0), 5.0);
        assert_eq!(percentile(&values, 0.5), 3.0);
        assert!((percentile(&values, 0.25) - 2.0).abs() < 1e-12);
        assert!((percentile(&values, 0.9) - 4.6).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn ewma_converges_toward_constant_input() {
        let mut e = Ewma::new(0.3);
        assert!(e.value().is_none());
        for _ in 0..200 {
            e.update(10.0);
        }
        assert!((e.value().unwrap() - 10.0).abs() < 1e-9);
        e.reset();
        assert!(e.value().is_none());
    }

    #[test]
    fn ewma_first_observation_is_taken_verbatim() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.update(42.0), 42.0);
        let second = e.update(0.0);
        assert!((second - 37.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn ewma_rejects_zero_alpha() {
        Ewma::new(0.0);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for v in 0..100 {
            h.record(v as f64);
        }
        h.record(-5.0);
        h.record(250.0);
        assert_eq!(h.count(), 102);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.buckets().iter().sum::<u64>(), 100);
        let p50 = h.approx_percentile(0.5);
        assert!(p50 > 30.0 && p50 < 70.0, "p50 = {p50}");
        assert_eq!(h.approx_percentile(1.0), 100.0);
    }

    #[test]
    fn histogram_empty_percentile_is_lower_bound() {
        let h = Histogram::new(1.0, 2.0, 4);
        assert_eq!(h.approx_percentile(0.99), 1.0);
    }
}
