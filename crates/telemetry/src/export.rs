//! CSV import/export of time-series data and benchmark result tables.
//!
//! The benchmark harness writes every regenerated figure/table as a plain
//! CSV/TSV file so EXPERIMENTS.md can reference stable artifacts.  The format
//! is hand-rolled (header row of metric names preceded by `tick`, one row per
//! sample) to avoid pulling in a serialization format crate.

use crate::sample::Sample;
use crate::schema::Schema;
use crate::series::SeriesStore;
use std::fmt::Write as _;

/// Renders a series store as CSV with a header row (`tick,<metric>,...`).
pub fn series_to_csv(store: &SeriesStore) -> String {
    let schema = store.schema();
    let mut out = String::new();
    out.push_str("tick");
    for name in schema.names() {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    for sample in store.iter() {
        let _ = write!(out, "{}", sample.tick());
        for v in sample.values() {
            let _ = write!(out, ",{v}");
        }
        out.push('\n');
    }
    out
}

/// Errors that can occur while parsing CSV produced by [`series_to_csv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input was empty or had no header row.
    MissingHeader,
    /// The header did not match the expected schema columns.
    HeaderMismatch {
        /// The offending header field.
        field: String,
    },
    /// A data row had the wrong number of fields.
    WrongFieldCount {
        /// 1-based line number of the offending row.
        line: usize,
    },
    /// A field could not be parsed as a number.
    BadNumber {
        /// 1-based line number of the offending row.
        line: usize,
        /// The unparsable field.
        field: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "CSV input has no header row"),
            CsvError::HeaderMismatch { field } => {
                write!(f, "CSV header field `{field}` does not match the schema")
            }
            CsvError::WrongFieldCount { line } => {
                write!(f, "CSV line {line} has the wrong number of fields")
            }
            CsvError::BadNumber { line, field } => {
                write!(f, "CSV line {line} contains unparsable number `{field}`")
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses CSV produced by [`series_to_csv`] back into a [`SeriesStore`].
///
/// The store is created with capacity equal to the number of parsed rows
/// (minimum 1).
pub fn series_from_csv(schema: &Schema, csv: &str) -> Result<SeriesStore, CsvError> {
    let mut lines = csv.lines().enumerate();
    let (_, header) = lines.next().ok_or(CsvError::MissingHeader)?;
    let mut fields = header.split(',');
    match fields.next() {
        Some("tick") => {}
        Some(other) => {
            return Err(CsvError::HeaderMismatch {
                field: other.to_string(),
            });
        }
        None => return Err(CsvError::MissingHeader),
    }
    for (expected, actual) in schema.names().iter().zip(fields.by_ref()) {
        if *expected != actual {
            return Err(CsvError::HeaderMismatch {
                field: actual.to_string(),
            });
        }
    }

    let rows: Vec<(usize, &str)> = lines.filter(|(_, l)| !l.trim().is_empty()).collect();
    let mut store = SeriesStore::new(schema.clone(), rows.len().max(1));
    for (idx, line) in rows {
        let line_no = idx + 1;
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != schema.len() + 1 {
            return Err(CsvError::WrongFieldCount { line: line_no });
        }
        let tick: u64 = fields[0].trim().parse().map_err(|_| CsvError::BadNumber {
            line: line_no,
            field: fields[0].to_string(),
        })?;
        let mut values = Vec::with_capacity(schema.len());
        for field in &fields[1..] {
            let v: f64 = field.trim().parse().map_err(|_| CsvError::BadNumber {
                line: line_no,
                field: field.to_string(),
            })?;
            values.push(v);
        }
        store.push(Sample::from_values(schema, tick, values));
    }
    Ok(store)
}

/// A simple result table (named columns, numeric rows) used by the benchmark
/// harness to emit the paper's tables and figure series.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTable {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl ResultTable {
    /// Creates an empty table with the given title and column names.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        ResultTable {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Adds a labelled row.
    ///
    /// # Panics
    /// Panics if the number of values does not match the number of columns.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows.push((label.into(), values));
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Labelled rows.
    pub fn rows(&self) -> &[(String, Vec<f64>)] {
        &self.rows
    }

    /// Renders the table as CSV (`label,<col>,...`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("label");
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(label);
            for v in values {
                let _ = write!(out, ",{v}");
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as an aligned, human-readable text table (used for
    /// terminal output of the benchmark binaries).
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = Vec::with_capacity(self.columns.len() + 1);
        widths.push(
            self.rows
                .iter()
                .map(|(l, _)| l.len())
                .chain(std::iter::once("label".len()))
                .max()
                .unwrap_or(5),
        );
        for (i, c) in self.columns.iter().enumerate() {
            let data_width = self
                .rows
                .iter()
                .map(|(_, vals)| format!("{:.3}", vals[i]).len())
                .max()
                .unwrap_or(0);
            widths.push(c.len().max(data_width));
        }

        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = write!(out, "{:<w$}", "label", w = widths[0]);
        for (i, c) in self.columns.iter().enumerate() {
            let _ = write!(out, "  {:>w$}", c, w = widths[i + 1]);
        }
        out.push('\n');
        for (label, values) in &self.rows {
            let _ = write!(out, "{:<w$}", label, w = widths[0]);
            for (i, v) in values.iter().enumerate() {
                let _ = write!(out, "  {:>w$.3}", v, w = widths[i + 1]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{MetricKind, Tier};
    use crate::schema::SchemaBuilder;

    fn schema() -> Schema {
        SchemaBuilder::new()
            .metric("a", Tier::Web, MetricKind::Count)
            .metric("b", Tier::Database, MetricKind::Ratio)
            .build()
    }

    #[test]
    fn csv_roundtrip_preserves_samples() {
        let sc = schema();
        let mut store = SeriesStore::new(sc.clone(), 16);
        for t in 0..5u64 {
            let mut s = Sample::zeroed(&sc, t);
            s.set(sc.expect_id("a"), t as f64 * 2.0);
            s.set(sc.expect_id("b"), 0.25);
            store.push(s);
        }
        let csv = series_to_csv(&store);
        let parsed = series_from_csv(&sc, &csv).unwrap();
        assert_eq!(parsed.len(), 5);
        let roundtrip = series_to_csv(&parsed);
        assert_eq!(csv, roundtrip);
    }

    #[test]
    fn csv_header_is_validated() {
        let sc = schema();
        assert!(matches!(
            series_from_csv(&sc, ""),
            Err(CsvError::MissingHeader)
        ));
        let bad_header = "time,a,b\n0,1,2\n";
        assert!(matches!(
            series_from_csv(&sc, bad_header),
            Err(CsvError::HeaderMismatch { .. })
        ));
        let wrong_metric = "tick,a,zzz\n0,1,2\n";
        assert!(matches!(
            series_from_csv(&sc, wrong_metric),
            Err(CsvError::HeaderMismatch { .. })
        ));
    }

    #[test]
    fn csv_rows_are_validated() {
        let sc = schema();
        let short_row = "tick,a,b\n0,1\n";
        assert!(matches!(
            series_from_csv(&sc, short_row),
            Err(CsvError::WrongFieldCount { line: 2 })
        ));
        let bad_number = "tick,a,b\n0,1,zebra\n";
        assert!(matches!(
            series_from_csv(&sc, bad_number),
            Err(CsvError::BadNumber { line: 2, .. })
        ));
    }

    #[test]
    fn result_table_csv_and_text_render() {
        let mut t = ResultTable::new(
            "Table 3: synopsis comparison",
            vec!["time_units".to_string(), "accuracy".to_string()],
        );
        t.push_row("AdaBoost 60", vec![1740.0, 0.985]);
        t.push_row("Nearest neighbor", vec![90.0, 0.955]);
        t.push_row("K-means", vec![90.0, 0.87]);
        let csv = t.to_csv();
        assert!(csv.starts_with("label,time_units,accuracy\n"));
        assert!(csv.contains("AdaBoost 60,1740,0.985"));
        let text = t.to_text();
        assert!(text.contains("Table 3"));
        assert!(text.contains("Nearest neighbor"));
        assert_eq!(t.rows().len(), 3);
    }

    #[test]
    #[should_panic(expected = "row width must match")]
    fn result_table_rejects_ragged_rows() {
        let mut t = ResultTable::new("t", vec!["a".to_string()]);
        t.push_row("x", vec![1.0, 2.0]);
    }
}
