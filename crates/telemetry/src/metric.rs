//! Metric identifiers and metadata.
//!
//! Every column `Xi` of the collected time series is described by a
//! [`MetricDef`]: its name, the tier it is measured in, what kind of
//! quantity it is, and how invasive the instrumentation that produces it is.
//! The paper (Section 4.2) distinguishes *noninvasive* data that common
//! profiling tools can collect without modifying the application from
//! *invasive* data such as per-EJB call counts or request path traces; some
//! diagnosis techniques only work when invasive data is available, which is
//! one of the axes of Table 2.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a metric (a column) inside a [`crate::Schema`].
///
/// `MetricId` is a small copyable handle; it is only meaningful relative to
/// the schema that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MetricId(pub(crate) u32);

impl MetricId {
    /// Returns the zero-based column index of this metric.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `MetricId` from a raw column index.
    ///
    /// Intended for tests and for code that enumerates columns positionally;
    /// prefer [`crate::Schema::id`] when a schema is available.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        MetricId(index as u32)
    }
}

impl fmt::Display for MetricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0 + 1)
    }
}

/// The tier of the multitier service a metric is measured in.
///
/// The paper's running example (RUBiS on JBoss + MySQL) has a web tier, an
/// application-server tier hosting EJBs, and a database tier; `Service`
/// covers end-to-end metrics such as SLO violations that are not attributable
/// to a single tier, and `Client` covers the user-activity monitors mentioned
/// in Section 4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Tier {
    /// Load generator / end users.
    Client,
    /// Web server tier (servlets, JSPs).
    Web,
    /// Application-server tier (EJB container).
    App,
    /// Database tier.
    Database,
    /// Whole-service (cross-tier) metrics, e.g. SLO compliance.
    Service,
}

impl Tier {
    /// All tiers, in request-flow order.
    pub const ALL: [Tier; 5] = [
        Tier::Client,
        Tier::Web,
        Tier::App,
        Tier::Database,
        Tier::Service,
    ];

    /// Short lowercase label used as a metric-name prefix (`web.cpu_util`).
    pub fn label(self) -> &'static str {
        match self {
            Tier::Client => "client",
            Tier::Web => "web",
            Tier::App => "app",
            Tier::Database => "db",
            Tier::Service => "svc",
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What kind of quantity a metric represents.
///
/// The kind determines sensible default aggregations (a utilization is
/// averaged, a count is summed) and is used by the anomaly detector to decide
/// which deviation test applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// Fraction of capacity in use, in `[0, 1]`.
    Utilization,
    /// A dimensionless ratio (e.g. cache miss rate), usually in `[0, 1]`.
    Ratio,
    /// An event count per collection interval (e.g. number of EJB calls).
    Count,
    /// A latency or duration, in milliseconds.
    LatencyMs,
    /// A queue length or other instantaneous level.
    Gauge,
    /// A configuration parameter (e.g. buffer pool size); changes rarely.
    Config,
    /// A boolean status flag encoded as 0.0 / 1.0.
    Flag,
}

impl MetricKind {
    /// Returns `true` if values of this kind are naturally bounded to `[0,1]`.
    pub fn is_bounded_unit(self) -> bool {
        matches!(
            self,
            MetricKind::Utilization | MetricKind::Ratio | MetricKind::Flag
        )
    }

    /// Returns `true` if the natural aggregation over a window is a sum
    /// rather than a mean.
    pub fn aggregates_by_sum(self) -> bool {
        matches!(self, MetricKind::Count)
    }
}

/// How intrusive the instrumentation producing a metric is.
///
/// Section 4.2 ("Invasive Vs. noninvasive data collection") notes that large
/// multitier services mix software from many vendors and are unlikely to
/// support a uniform invasive instrumentation framework; techniques therefore
/// differ in their data requirements (Table 2, "Run-time data requirements").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InstrumentationCost {
    /// Available from standard OS / middleware counters with no changes to
    /// application or system software (CPU utilization, request rate).
    NonInvasive,
    /// Requires application-server or database introspection hooks
    /// (per-EJB call counts, per-query plan statistics).
    Invasive,
    /// Requires end-to-end request path tracing across tiers.
    PathTracing,
}

/// Full definition of one metric (one column of the time-series schema).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricDef {
    /// Unique dotted name, conventionally prefixed by the tier label,
    /// e.g. `"db.buffer_miss_rate"`.
    pub name: String,
    /// Tier the metric is measured in.
    pub tier: Tier,
    /// Kind of quantity.
    pub kind: MetricKind,
    /// Instrumentation cost of collecting the metric.
    pub cost: InstrumentationCost,
    /// Human-readable description.
    pub description: String,
}

impl MetricDef {
    /// Creates a metric definition with [`InstrumentationCost::NonInvasive`]
    /// cost and an empty description.
    pub fn new(name: impl Into<String>, tier: Tier, kind: MetricKind) -> Self {
        MetricDef {
            name: name.into(),
            tier,
            kind,
            cost: InstrumentationCost::NonInvasive,
            description: String::new(),
        }
    }

    /// Sets the instrumentation cost.
    pub fn with_cost(mut self, cost: InstrumentationCost) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the human-readable description.
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_id_roundtrips_through_index() {
        let id = MetricId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "X8");
    }

    #[test]
    fn tier_labels_are_unique() {
        let mut labels: Vec<&str> = Tier::ALL.iter().map(|t| t.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Tier::ALL.len());
    }

    #[test]
    fn metric_kind_classification() {
        assert!(MetricKind::Utilization.is_bounded_unit());
        assert!(MetricKind::Ratio.is_bounded_unit());
        assert!(MetricKind::Flag.is_bounded_unit());
        assert!(!MetricKind::Count.is_bounded_unit());
        assert!(MetricKind::Count.aggregates_by_sum());
        assert!(!MetricKind::LatencyMs.aggregates_by_sum());
    }

    #[test]
    fn metric_def_builder_sets_fields() {
        let def = MetricDef::new("app.ejb_calls", Tier::App, MetricKind::Count)
            .with_cost(InstrumentationCost::Invasive)
            .with_description("number of EJB method invocations");
        assert_eq!(def.name, "app.ejb_calls");
        assert_eq!(def.tier, Tier::App);
        assert_eq!(def.cost, InstrumentationCost::Invasive);
        assert!(def.description.contains("EJB"));
    }

    #[test]
    fn instrumentation_cost_is_ordered_by_invasiveness() {
        assert!(InstrumentationCost::NonInvasive < InstrumentationCost::Invasive);
        assert!(InstrumentationCost::Invasive < InstrumentationCost::PathTracing);
    }
}
