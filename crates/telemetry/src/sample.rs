//! One timestamped row of the multidimensional time series.

use crate::metric::MetricId;
use crate::schema::Schema;
use crate::{Tick, Value};
use serde::{Deserialize, Serialize};

/// A single observation of all metrics at one tick.
///
/// A sample is a dense row: it always carries a value for every column of the
/// schema it was created from (missing measurements are represented as 0.0 by
/// the simulator, matching how counters read when nothing happened in the
/// interval).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    tick: Tick,
    values: Vec<Value>,
}

impl Sample {
    /// Creates a sample with every metric set to zero.
    pub fn zeroed(schema: &Schema, tick: Tick) -> Self {
        Sample {
            tick,
            values: vec![0.0; schema.len()],
        }
    }

    /// Creates a sample from a raw row of values.
    ///
    /// # Panics
    /// Panics if the number of values does not match the schema width.
    pub fn from_values(schema: &Schema, tick: Tick, values: Vec<Value>) -> Self {
        assert_eq!(
            values.len(),
            schema.len(),
            "sample width {} does not match schema width {}",
            values.len(),
            schema.len()
        );
        Sample { tick, values }
    }

    /// The tick at which this sample was collected.
    #[inline]
    pub fn tick(&self) -> Tick {
        self.tick
    }

    /// Number of columns in the sample.
    #[inline]
    pub fn width(&self) -> usize {
        self.values.len()
    }

    /// Reads the value of one metric.
    #[inline]
    pub fn get(&self, id: MetricId) -> Value {
        self.values[id.index()]
    }

    /// Sets the value of one metric.
    #[inline]
    pub fn set(&mut self, id: MetricId, value: Value) {
        self.values[id.index()] = value;
    }

    /// Adds `delta` to the value of one metric (useful for counters that are
    /// incremented as events occur during a tick).
    #[inline]
    pub fn add(&mut self, id: MetricId, delta: Value) {
        self.values[id.index()] += delta;
    }

    /// Takes the element-wise maximum of the current value and `value`
    /// (useful for peak gauges within a tick).
    #[inline]
    pub fn max_in_place(&mut self, id: MetricId, value: Value) {
        let slot = &mut self.values[id.index()];
        if value > *slot {
            *slot = value;
        }
    }

    /// Borrow the full row of values in column order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consumes the sample and returns the raw row.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Returns the subset of values selected by `ids`, in the order of `ids`.
    ///
    /// This is the operation that turns a raw sample into a *symptom vector*
    /// over a chosen feature set `Ω` (Section 4.3.4 of the paper).
    pub fn project(&self, ids: &[MetricId]) -> Vec<Value> {
        ids.iter().map(|id| self.get(*id)).collect()
    }

    /// Returns `true` if every value is finite (no NaN / infinity).
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{MetricKind, Tier};
    use crate::schema::SchemaBuilder;

    fn schema() -> Schema {
        SchemaBuilder::new()
            .metric("a", Tier::Web, MetricKind::Count)
            .metric("b", Tier::App, MetricKind::Gauge)
            .metric("c", Tier::Database, MetricKind::Ratio)
            .build()
    }

    #[test]
    fn zeroed_sample_has_schema_width() {
        let s = schema();
        let sample = Sample::zeroed(&s, 42);
        assert_eq!(sample.width(), 3);
        assert_eq!(sample.tick(), 42);
        assert!(sample.values().iter().all(|v| *v == 0.0));
    }

    #[test]
    fn set_get_add_and_max() {
        let s = schema();
        let a = s.expect_id("a");
        let b = s.expect_id("b");
        let mut sample = Sample::zeroed(&s, 0);
        sample.set(a, 3.0);
        sample.add(a, 2.0);
        sample.max_in_place(b, 7.0);
        sample.max_in_place(b, 4.0);
        assert_eq!(sample.get(a), 5.0);
        assert_eq!(sample.get(b), 7.0);
    }

    #[test]
    fn projection_follows_requested_order() {
        let s = schema();
        let mut sample = Sample::zeroed(&s, 0);
        sample.set(s.expect_id("a"), 1.0);
        sample.set(s.expect_id("b"), 2.0);
        sample.set(s.expect_id("c"), 3.0);
        let projected = sample.project(&[s.expect_id("c"), s.expect_id("a")]);
        assert_eq!(projected, vec![3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "does not match schema width")]
    fn from_values_rejects_wrong_width() {
        let s = schema();
        Sample::from_values(&s, 0, vec![1.0, 2.0]);
    }

    #[test]
    fn finiteness_check_detects_nan() {
        let s = schema();
        let mut sample = Sample::zeroed(&s, 0);
        assert!(sample.is_finite());
        sample.set(s.expect_id("b"), f64::NAN);
        assert!(!sample.is_finite());
    }
}
