//! Sliding windows over the time series.
//!
//! The anomaly detector of Section 4.3.1 contrasts a long *baseline* window
//! of `Nb` samples with a short *current* window of `Nc` samples
//! (`Nc ≪ Nb`).  A [`Window`] is a materialized, columnar copy of a
//! contiguous stretch of samples with the aggregation helpers those analyses
//! need.

use crate::metric::MetricId;
use crate::sample::Sample;
use crate::schema::Schema;
use crate::series::SeriesStore;
use crate::stats::Summary;
use crate::{Tick, Value};

/// Specification of a window anchored at the newest retained sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Number of samples in the window.
    pub len: usize,
    /// Number of samples to skip back from the newest sample before the
    /// window ends.  `offset = 0` means the window ends at the newest sample.
    pub offset: usize,
}

impl WindowSpec {
    /// Window of the latest `len` samples.
    pub fn latest(len: usize) -> Self {
        WindowSpec { len, offset: 0 }
    }

    /// Window of `len` samples ending `offset` samples before the newest one.
    pub fn offset(len: usize, offset: usize) -> Self {
        WindowSpec { len, offset }
    }
}

/// A materialized, columnar window of consecutive samples.
#[derive(Debug, Clone)]
pub struct Window {
    schema: Schema,
    ticks: Vec<Tick>,
    /// Column-major storage: `columns[c][r]` is the value of metric `c` in
    /// row `r` of the window.
    columns: Vec<Vec<Value>>,
}

impl Window {
    /// Builds a window from borrowed samples (oldest first).
    pub fn from_samples(schema: Schema, samples: &[&Sample]) -> Self {
        Window::from_iter(schema, samples.iter().copied())
    }

    /// Builds a window by draining an iterator of borrowed samples (oldest
    /// first) — the allocation-minimal construction path used by
    /// [`SeriesStore::baseline_current`] and [`Window::from_store`], which
    /// borrow straight from the store's ring buffer.
    pub fn from_iter<'a>(schema: Schema, samples: impl IntoIterator<Item = &'a Sample>) -> Self {
        let samples = samples.into_iter();
        let width = schema.len();
        let hint = samples.size_hint().0;
        let mut columns = vec![Vec::with_capacity(hint); width];
        let mut ticks = Vec::with_capacity(hint);
        for sample in samples {
            debug_assert_eq!(sample.width(), width);
            ticks.push(sample.tick());
            for (c, column) in columns.iter_mut().enumerate() {
                column.push(sample.values()[c]);
            }
        }
        Window {
            schema,
            ticks,
            columns,
        }
    }

    /// Builds a window from a store according to `spec`.
    ///
    /// Returns `None` if the store does not retain enough samples.
    pub fn from_store(store: &SeriesStore, spec: WindowSpec) -> Option<Self> {
        if spec.len == 0 || store.len() < spec.len + spec.offset {
            return None;
        }
        let total = store.len();
        let start = total - spec.offset - spec.len;
        Some(Window::from_iter(
            store.schema().clone(),
            store.iter().skip(start).take(spec.len),
        ))
    }

    /// Number of rows (samples) in the window.
    #[inline]
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// Returns `true` if the window holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// The schema underlying the window.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Ticks of the rows, oldest first.
    #[inline]
    pub fn ticks(&self) -> &[Tick] {
        &self.ticks
    }

    /// All values of one metric, oldest first.
    pub fn column(&self, id: MetricId) -> Vec<Value> {
        self.columns[id.index()].clone()
    }

    /// Borrows the values of one metric, oldest first.
    pub fn column_slice(&self, id: MetricId) -> &[Value] {
        &self.columns[id.index()]
    }

    /// Mean of one metric over the window (0.0 for an empty window).
    pub fn mean(&self, id: MetricId) -> Value {
        let col = &self.columns[id.index()];
        if col.is_empty() {
            0.0
        } else {
            col.iter().sum::<Value>() / col.len() as Value
        }
    }

    /// Sum of one metric over the window.
    pub fn sum(&self, id: MetricId) -> Value {
        self.columns[id.index()].iter().sum()
    }

    /// Maximum of one metric over the window (0.0 for an empty window).
    pub fn max(&self, id: MetricId) -> Value {
        let col = &self.columns[id.index()];
        if col.is_empty() {
            0.0
        } else {
            col.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Full descriptive summary of one metric over the window.
    pub fn summary(&self, id: MetricId) -> Summary {
        Summary::of(&self.columns[id.index()])
    }

    /// Mean vector over a subset of metrics, in the order of `ids`.
    pub fn mean_vector(&self, ids: &[MetricId]) -> Vec<Value> {
        ids.iter().map(|id| self.mean(*id)).collect()
    }

    /// Per-row projection over `ids`: returns one feature vector per row.
    pub fn rows(&self, ids: &[MetricId]) -> Vec<Vec<Value>> {
        (0..self.len())
            .map(|r| ids.iter().map(|id| self.columns[id.index()][r]).collect())
            .collect()
    }

    /// Normalizes a column into a discrete distribution (values scaled to sum
    /// to 1.0).  Returns `None` if the column sums to zero or contains a
    /// negative value — distributions are only meaningful for nonnegative
    /// count-like metrics.
    ///
    /// The anomaly detector uses this to compare how calls from one EJB type
    /// are split across other EJB types (Example 2 of the paper).
    pub fn distribution(&self, ids: &[MetricId]) -> Option<Vec<Value>> {
        let sums: Vec<Value> = ids.iter().map(|id| self.sum(*id)).collect();
        if sums.iter().any(|v| *v < 0.0) {
            return None;
        }
        let total: Value = sums.iter().sum();
        if total <= 0.0 {
            return None;
        }
        Some(sums.into_iter().map(|v| v / total).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{MetricKind, Tier};
    use crate::schema::SchemaBuilder;

    fn setup() -> (Schema, SeriesStore) {
        let schema = SchemaBuilder::new()
            .metric("a", Tier::Web, MetricKind::Count)
            .metric("b", Tier::App, MetricKind::Count)
            .metric("lat", Tier::Service, MetricKind::LatencyMs)
            .build();
        let mut store = SeriesStore::new(schema.clone(), 128);
        for t in 0..10u64 {
            let mut s = Sample::zeroed(&schema, t);
            s.set(schema.expect_id("a"), t as f64);
            s.set(schema.expect_id("b"), 2.0 * t as f64);
            s.set(schema.expect_id("lat"), 100.0 + t as f64);
            store.push(s);
        }
        (schema, store)
    }

    #[test]
    fn latest_window_contains_newest_samples() {
        let (schema, store) = setup();
        let w = store.window(WindowSpec::latest(3)).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w.ticks(), &[7, 8, 9]);
        assert_eq!(w.column(schema.expect_id("a")), vec![7.0, 8.0, 9.0]);
        assert_eq!(w.mean(schema.expect_id("a")), 8.0);
        assert_eq!(w.sum(schema.expect_id("b")), 48.0);
    }

    #[test]
    fn offset_window_skips_newest_samples() {
        let (schema, store) = setup();
        let w = store.window(WindowSpec::offset(4, 3)).unwrap();
        assert_eq!(w.ticks(), &[3, 4, 5, 6]);
        assert_eq!(w.column(schema.expect_id("a")), vec![3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn window_requires_enough_history() {
        let (_, store) = setup();
        assert!(store.window(WindowSpec::latest(11)).is_none());
        assert!(store.window(WindowSpec::offset(8, 5)).is_none());
        assert!(store.window(WindowSpec::latest(0)).is_none());
    }

    #[test]
    fn distribution_normalizes_counts() {
        let (schema, store) = setup();
        let w = store.window(WindowSpec::latest(5)).unwrap();
        let ids = [schema.expect_id("a"), schema.expect_id("b")];
        let dist = w.distribution(&ids).unwrap();
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // b is always twice a, so it should carry 2/3 of the mass.
        assert!((dist[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distribution_rejects_zero_mass() {
        let schema = SchemaBuilder::new()
            .metric("a", Tier::Web, MetricKind::Count)
            .build();
        let mut store = SeriesStore::new(schema.clone(), 8);
        store.push(Sample::zeroed(&schema, 0));
        let w = store.window(WindowSpec::latest(1)).unwrap();
        assert!(w.distribution(&[schema.expect_id("a")]).is_none());
    }

    #[test]
    fn rows_and_mean_vector_project_in_order() {
        let (schema, store) = setup();
        let w = store.window(WindowSpec::latest(2)).unwrap();
        let ids = [schema.expect_id("lat"), schema.expect_id("a")];
        let rows = w.rows(&ids);
        assert_eq!(rows, vec![vec![108.0, 8.0], vec![109.0, 9.0]]);
        assert_eq!(w.mean_vector(&ids), vec![108.5, 8.5]);
    }

    #[test]
    fn summary_and_max_agree_with_column() {
        let (schema, store) = setup();
        let w = store.window(WindowSpec::latest(5)).unwrap();
        let lat = schema.expect_id("lat");
        let summary = w.summary(lat);
        assert_eq!(summary.max, 109.0);
        assert_eq!(w.max(lat), 109.0);
        assert_eq!(summary.count, 5);
    }
}
