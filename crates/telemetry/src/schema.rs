//! Time-series schema: the ordered set of attributes `X1..Xn`.
//!
//! A [`Schema`] fixes the column layout of every [`crate::Sample`] produced
//! by the monitored service.  It is cheap to clone (internally `Arc`-shared)
//! because every sample, window, and dataset refers to it.

use crate::metric::{InstrumentationCost, MetricDef, MetricId, MetricKind, Tier};
use std::collections::HashMap;
use std::sync::Arc;

/// Immutable, ordered collection of metric definitions.
///
/// Column order is the order in which metrics were added to the
/// [`SchemaBuilder`]; the schema never changes after construction, so
/// [`MetricId`]s remain valid for its whole lifetime.  The schema is shared
/// (`Arc`) so cloning is cheap.
#[derive(Debug, Clone)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

#[derive(Debug)]
struct SchemaInner {
    defs: Vec<MetricDef>,
    by_name: HashMap<String, MetricId>,
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner.defs == other.inner.defs
    }
}

impl Schema {
    /// Number of metrics (columns) in the schema.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.defs.len()
    }

    /// Returns `true` if the schema has no metrics.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.defs.is_empty()
    }

    /// Looks up a metric by name.
    pub fn id(&self, name: &str) -> Option<MetricId> {
        self.inner.by_name.get(name).copied()
    }

    /// Looks up a metric by name, panicking with a descriptive message when
    /// the metric does not exist.
    ///
    /// Benchmarks and the simulator use this for metrics they themselves
    /// registered; a miss is a programming error, not a runtime condition.
    pub fn expect_id(&self, name: &str) -> MetricId {
        self.id(name)
            .unwrap_or_else(|| panic!("metric `{name}` is not part of the schema"))
    }

    /// Returns the definition of a metric.
    #[inline]
    pub fn def(&self, id: MetricId) -> &MetricDef {
        &self.inner.defs[id.index()]
    }

    /// Returns the name of a metric.
    #[inline]
    pub fn name(&self, id: MetricId) -> &str {
        &self.inner.defs[id.index()].name
    }

    /// Iterates over `(id, definition)` pairs in column order.
    pub fn iter(&self) -> impl Iterator<Item = (MetricId, &MetricDef)> {
        self.inner
            .defs
            .iter()
            .enumerate()
            .map(|(i, d)| (MetricId(i as u32), d))
    }

    /// Returns all metric ids in column order.
    pub fn ids(&self) -> Vec<MetricId> {
        (0..self.len()).map(|i| MetricId(i as u32)).collect()
    }

    /// Returns the ids of all metrics measured in `tier`.
    pub fn ids_in_tier(&self, tier: Tier) -> Vec<MetricId> {
        self.iter()
            .filter(|(_, d)| d.tier == tier)
            .map(|(id, _)| id)
            .collect()
    }

    /// Returns the ids of all metrics of a given kind.
    pub fn ids_of_kind(&self, kind: MetricKind) -> Vec<MetricId> {
        self.iter()
            .filter(|(_, d)| d.kind == kind)
            .map(|(id, _)| id)
            .collect()
    }

    /// Returns the ids of all metrics whose instrumentation cost is at most
    /// `max_cost`.
    ///
    /// This is how the diagnosis engines restrict themselves to noninvasive
    /// data when modelling a service that cannot be instrumented invasively
    /// (Section 4.2 of the paper).
    pub fn ids_with_cost_at_most(&self, max_cost: InstrumentationCost) -> Vec<MetricId> {
        self.iter()
            .filter(|(_, d)| d.cost <= max_cost)
            .map(|(id, _)| id)
            .collect()
    }

    /// Returns the column names in order, useful for CSV headers.
    pub fn names(&self) -> Vec<&str> {
        self.inner.defs.iter().map(|d| d.name.as_str()).collect()
    }
}

/// Builder for [`Schema`].
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    defs: Vec<MetricDef>,
    by_name: HashMap<String, MetricId>,
}

impl SchemaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a metric with default (noninvasive) instrumentation cost.
    ///
    /// # Panics
    /// Panics if a metric with the same name has already been added; metric
    /// names must be unique within a schema.
    pub fn metric(self, name: impl Into<String>, tier: Tier, kind: MetricKind) -> Self {
        self.metric_def(MetricDef::new(name, tier, kind))
    }

    /// Adds a fully specified metric definition.
    ///
    /// # Panics
    /// Panics if a metric with the same name has already been added.
    pub fn metric_def(mut self, def: MetricDef) -> Self {
        let id = MetricId(self.defs.len() as u32);
        let previous = self.by_name.insert(def.name.clone(), id);
        assert!(
            previous.is_none(),
            "duplicate metric name `{}` in schema",
            def.name
        );
        self.defs.push(def);
        self
    }

    /// Adds a metric and returns its id together with the builder.
    pub fn metric_with_id(mut self, def: MetricDef) -> (Self, MetricId) {
        let id = MetricId(self.defs.len() as u32);
        self = self.metric_def(def);
        (self, id)
    }

    /// Number of metrics added so far.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Returns `true` if no metrics have been added yet.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Finalizes the schema.
    pub fn build(self) -> Schema {
        Schema {
            inner: Arc::new(SchemaInner {
                defs: self.defs,
                by_name: self.by_name,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        SchemaBuilder::new()
            .metric("web.cpu_util", Tier::Web, MetricKind::Utilization)
            .metric_def(
                MetricDef::new("app.ejb_calls", Tier::App, MetricKind::Count)
                    .with_cost(InstrumentationCost::Invasive),
            )
            .metric("db.buffer_miss_rate", Tier::Database, MetricKind::Ratio)
            .metric("svc.slo_violations", Tier::Service, MetricKind::Count)
            .build()
    }

    #[test]
    fn lookup_by_name_and_index_agree() {
        let s = schema();
        assert_eq!(s.len(), 4);
        let id = s.id("db.buffer_miss_rate").unwrap();
        assert_eq!(id.index(), 2);
        assert_eq!(s.name(id), "db.buffer_miss_rate");
        assert_eq!(s.def(id).tier, Tier::Database);
        assert!(s.id("does.not.exist").is_none());
    }

    #[test]
    fn expect_id_returns_existing_metric() {
        let s = schema();
        assert_eq!(s.expect_id("web.cpu_util").index(), 0);
    }

    #[test]
    #[should_panic(expected = "not part of the schema")]
    fn expect_id_panics_on_missing_metric() {
        schema().expect_id("nope");
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn duplicate_names_are_rejected() {
        SchemaBuilder::new()
            .metric("x", Tier::Web, MetricKind::Count)
            .metric("x", Tier::App, MetricKind::Count);
    }

    #[test]
    fn tier_and_kind_filters() {
        let s = schema();
        assert_eq!(s.ids_in_tier(Tier::App).len(), 1);
        assert_eq!(s.ids_in_tier(Tier::Client).len(), 0);
        assert_eq!(s.ids_of_kind(MetricKind::Count).len(), 2);
    }

    #[test]
    fn cost_filter_excludes_invasive_metrics() {
        let s = schema();
        let noninvasive = s.ids_with_cost_at_most(InstrumentationCost::NonInvasive);
        assert_eq!(noninvasive.len(), 3);
        assert!(!noninvasive.contains(&s.expect_id("app.ejb_calls")));
        let all = s.ids_with_cost_at_most(InstrumentationCost::PathTracing);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn ids_are_in_column_order() {
        let s = schema();
        let ids = s.ids();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
        assert_eq!(s.names()[0], "web.cpu_util");
    }

    #[test]
    fn schemas_with_same_defs_compare_equal() {
        assert_eq!(schema(), schema());
    }
}
